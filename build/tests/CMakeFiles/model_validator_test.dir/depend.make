# Empty dependencies file for model_validator_test.
# This may be replaced when dependencies are built.
