file(REMOVE_RECURSE
  "CMakeFiles/model_validator_test.dir/model_validator_test.cpp.o"
  "CMakeFiles/model_validator_test.dir/model_validator_test.cpp.o.d"
  "model_validator_test"
  "model_validator_test.pdb"
  "model_validator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_validator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
