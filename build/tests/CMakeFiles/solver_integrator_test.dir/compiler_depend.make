# Empty compiler generated dependencies file for solver_integrator_test.
# This may be replaced when dependencies are built.
