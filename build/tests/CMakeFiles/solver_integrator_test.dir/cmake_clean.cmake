file(REMOVE_RECURSE
  "CMakeFiles/solver_integrator_test.dir/solver_integrator_test.cpp.o"
  "CMakeFiles/solver_integrator_test.dir/solver_integrator_test.cpp.o.d"
  "solver_integrator_test"
  "solver_integrator_test.pdb"
  "solver_integrator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_integrator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
