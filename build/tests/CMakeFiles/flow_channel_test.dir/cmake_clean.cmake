file(REMOVE_RECURSE
  "CMakeFiles/flow_channel_test.dir/flow_channel_test.cpp.o"
  "CMakeFiles/flow_channel_test.dir/flow_channel_test.cpp.o.d"
  "flow_channel_test"
  "flow_channel_test.pdb"
  "flow_channel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
