# Empty dependencies file for control_blocks_test.
# This may be replaced when dependencies are built.
