file(REMOVE_RECURSE
  "CMakeFiles/control_blocks_test.dir/control_blocks_test.cpp.o"
  "CMakeFiles/control_blocks_test.dir/control_blocks_test.cpp.o.d"
  "control_blocks_test"
  "control_blocks_test.pdb"
  "control_blocks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_blocks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
