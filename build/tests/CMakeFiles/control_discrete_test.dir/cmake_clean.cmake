file(REMOVE_RECURSE
  "CMakeFiles/control_discrete_test.dir/control_discrete_test.cpp.o"
  "CMakeFiles/control_discrete_test.dir/control_discrete_test.cpp.o.d"
  "control_discrete_test"
  "control_discrete_test.pdb"
  "control_discrete_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_discrete_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
