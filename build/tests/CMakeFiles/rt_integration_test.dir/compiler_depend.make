# Empty compiler generated dependencies file for rt_integration_test.
# This may be replaced when dependencies are built.
