file(REMOVE_RECURSE
  "CMakeFiles/rt_integration_test.dir/rt_integration_test.cpp.o"
  "CMakeFiles/rt_integration_test.dir/rt_integration_test.cpp.o.d"
  "rt_integration_test"
  "rt_integration_test.pdb"
  "rt_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
