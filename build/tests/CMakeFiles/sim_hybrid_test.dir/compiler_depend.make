# Empty compiler generated dependencies file for sim_hybrid_test.
# This may be replaced when dependencies are built.
