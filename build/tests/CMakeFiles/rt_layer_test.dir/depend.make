# Empty dependencies file for rt_layer_test.
# This may be replaced when dependencies are built.
