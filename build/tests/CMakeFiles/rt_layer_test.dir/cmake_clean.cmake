file(REMOVE_RECURSE
  "CMakeFiles/rt_layer_test.dir/rt_layer_test.cpp.o"
  "CMakeFiles/rt_layer_test.dir/rt_layer_test.cpp.o.d"
  "rt_layer_test"
  "rt_layer_test.pdb"
  "rt_layer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_layer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
