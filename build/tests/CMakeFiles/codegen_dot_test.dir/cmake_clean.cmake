file(REMOVE_RECURSE
  "CMakeFiles/codegen_dot_test.dir/codegen_dot_test.cpp.o"
  "CMakeFiles/codegen_dot_test.dir/codegen_dot_test.cpp.o.d"
  "codegen_dot_test"
  "codegen_dot_test.pdb"
  "codegen_dot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_dot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
