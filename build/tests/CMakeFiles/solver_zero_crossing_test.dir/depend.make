# Empty dependencies file for solver_zero_crossing_test.
# This may be replaced when dependencies are built.
