file(REMOVE_RECURSE
  "CMakeFiles/solver_zero_crossing_test.dir/solver_zero_crossing_test.cpp.o"
  "CMakeFiles/solver_zero_crossing_test.dir/solver_zero_crossing_test.cpp.o.d"
  "solver_zero_crossing_test"
  "solver_zero_crossing_test.pdb"
  "solver_zero_crossing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_zero_crossing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
