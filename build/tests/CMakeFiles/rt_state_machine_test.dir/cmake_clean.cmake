file(REMOVE_RECURSE
  "CMakeFiles/rt_state_machine_test.dir/rt_state_machine_test.cpp.o"
  "CMakeFiles/rt_state_machine_test.dir/rt_state_machine_test.cpp.o.d"
  "rt_state_machine_test"
  "rt_state_machine_test.pdb"
  "rt_state_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_state_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
