file(REMOVE_RECURSE
  "CMakeFiles/rt_protocol_test.dir/rt_protocol_test.cpp.o"
  "CMakeFiles/rt_protocol_test.dir/rt_protocol_test.cpp.o.d"
  "rt_protocol_test"
  "rt_protocol_test.pdb"
  "rt_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
