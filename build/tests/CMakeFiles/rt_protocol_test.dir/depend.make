# Empty dependencies file for rt_protocol_test.
# This may be replaced when dependencies are built.
