# Empty dependencies file for rt_signal_test.
# This may be replaced when dependencies are built.
