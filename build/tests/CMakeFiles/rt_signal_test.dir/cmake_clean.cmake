file(REMOVE_RECURSE
  "CMakeFiles/rt_signal_test.dir/rt_signal_test.cpp.o"
  "CMakeFiles/rt_signal_test.dir/rt_signal_test.cpp.o.d"
  "rt_signal_test"
  "rt_signal_test.pdb"
  "rt_signal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_signal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
