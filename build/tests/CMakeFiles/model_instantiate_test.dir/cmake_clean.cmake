file(REMOVE_RECURSE
  "CMakeFiles/model_instantiate_test.dir/model_instantiate_test.cpp.o"
  "CMakeFiles/model_instantiate_test.dir/model_instantiate_test.cpp.o.d"
  "model_instantiate_test"
  "model_instantiate_test.pdb"
  "model_instantiate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_instantiate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
