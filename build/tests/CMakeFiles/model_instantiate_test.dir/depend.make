# Empty dependencies file for model_instantiate_test.
# This may be replaced when dependencies are built.
