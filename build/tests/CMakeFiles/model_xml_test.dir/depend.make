# Empty dependencies file for model_xml_test.
# This may be replaced when dependencies are built.
