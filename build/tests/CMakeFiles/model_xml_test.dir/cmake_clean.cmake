file(REMOVE_RECURSE
  "CMakeFiles/model_xml_test.dir/model_xml_test.cpp.o"
  "CMakeFiles/model_xml_test.dir/model_xml_test.cpp.o.d"
  "model_xml_test"
  "model_xml_test.pdb"
  "model_xml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_xml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
