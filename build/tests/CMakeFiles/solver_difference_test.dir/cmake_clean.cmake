file(REMOVE_RECURSE
  "CMakeFiles/solver_difference_test.dir/solver_difference_test.cpp.o"
  "CMakeFiles/solver_difference_test.dir/solver_difference_test.cpp.o.d"
  "solver_difference_test"
  "solver_difference_test.pdb"
  "solver_difference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_difference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
