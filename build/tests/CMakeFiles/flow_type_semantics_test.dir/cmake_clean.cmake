file(REMOVE_RECURSE
  "CMakeFiles/flow_type_semantics_test.dir/flow_type_semantics_test.cpp.o"
  "CMakeFiles/flow_type_semantics_test.dir/flow_type_semantics_test.cpp.o.d"
  "flow_type_semantics_test"
  "flow_type_semantics_test.pdb"
  "flow_type_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_type_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
