# Empty dependencies file for flow_type_semantics_test.
# This may be replaced when dependencies are built.
