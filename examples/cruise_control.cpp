/// \file cruise_control.cpp
/// Automotive cruise control — a richer capsule state machine (the kind of
/// event-driven logic UML-RT was built for) supervising a continuous
/// vehicle model with a PI speed controller.
///
/// States: Off -> Standby -> Active, with Override while the driver brakes
/// (shallow history restores Active afterwards). The streamer side holds
/// the longitudinal dynamics m v' = F - b v - c v² and a gated PI law.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <span>

#include "flow/flow.hpp"
#include "rt/rt.hpp"
#include "sim/sim.hpp"

namespace f = urtx::flow;
namespace rt = urtx::rt;
namespace sim = urtx::sim;

namespace {

rt::Protocol& cruiseProtocol() {
    static rt::Protocol p = [] {
        rt::Protocol q{"Cruise"};
        q.in("power").in("set").in("cancel").in("brake").in("resume"); // driver -> capsule
        q.out("enable").out("disable").out("setpoint");                // capsule -> plant group
        return q;
    }();
    return p;
}

/// Vehicle longitudinal dynamics.
class Vehicle final : public f::Streamer {
public:
    Vehicle(std::string name, f::Streamer* parent)
        : f::Streamer(std::move(name), parent),
          force(*this, "force", f::DPortDir::In, f::FlowType::real()),
          speed(*this, "speed", f::DPortDir::Out, f::FlowType::real()) {
        setParam("m", 1200.0);
        setParam("b", 30.0);
        setParam("c", 0.9);
        setParam("v0", 20.0);
    }

    f::DPort force;
    f::DPort speed;

    std::size_t stateSize() const override { return 1; }
    void initState(double, std::span<double> x) override { x[0] = param("v0"); }
    void derivatives(double, std::span<const double> x, std::span<double> dx) override {
        const double v = x[0];
        dx[0] = (force.get() - param("b") * v - param("c") * v * std::abs(v)) / param("m");
    }
    void outputs(double, std::span<const double> x) override { speed.set(x[0]); }
    bool directFeedthrough() const override { return false; }
};

/// Gated PI speed controller (the streamer solver tunes its parameters on
/// signals from the cruise capsule).
class SpeedController final : public f::Streamer {
public:
    SpeedController(std::string name, f::Streamer* parent)
        : f::Streamer(std::move(name), parent),
          meas(*this, "meas", f::DPortDir::In, f::FlowType::real()),
          force(*this, "force", f::DPortDir::Out, f::FlowType::real()),
          ctl(*this, "ctl", cruiseProtocol(), true) {
        setParam("enabled", 0.0);
        setParam("vset", 0.0);
        setParam("kp", 900.0);
        setParam("ki", 120.0);
    }

    f::DPort meas;
    f::DPort force;
    f::SPort ctl;

    std::size_t stateSize() const override { return 1; } // integral of error
    void derivatives(double, std::span<const double>, std::span<double> dx) override {
        dx[0] = param("enabled") > 0.5 ? (param("vset") - meas.get()) : 0.0;
    }
    void outputs(double, std::span<const double> x) override {
        if (param("enabled") < 0.5) {
            force.set(0.0);
            return;
        }
        const double e = param("vset") - meas.get();
        const double u = param("kp") * e + param("ki") * x[0];
        force.set(std::clamp(u, -4000.0, 4000.0));
    }
    void update(double, std::span<double> x) override {
        if (param("enabled") < 0.5) x[0] = 0.0; // reset integral when disabled
    }
    void onSignal(f::SPort&, const rt::Message& m) override {
        if (m.signal == rt::signal("enable")) setParam("enabled", 1.0);
        if (m.signal == rt::signal("disable")) setParam("enabled", 0.0);
        if (m.signal == rt::signal("setpoint")) setParam("vset", m.dataOr<double>(0.0));
    }
};

/// The cruise capsule: Off / Standby / Active(+Override via history).
class CruiseCapsule final : public rt::Capsule {
public:
    explicit CruiseCapsule(std::string name)
        : rt::Capsule(std::move(name)),
          driver(*this, "driver", cruiseProtocol(), false),
          plant(*this, "plant", cruiseProtocol(), false) {
        auto& off = machine().state("Off");
        auto& standby = machine().state("Standby");
        auto& active = machine().state("Active");
        auto& overrideSt = machine().state("Override");
        machine().initial(off);

        machine().transition(off, standby).on(driver, "power");
        machine().transition(standby, off).on(driver, "power");
        machine().transition(standby, active).on(driver, "set").act([this](const rt::Message& m) {
            const double v = m.dataOr<double>(25.0);
            std::printf("  [%6.2f s] cruise: Standby -> Active (set %.1f m/s)\n", now(), v);
            plant.send("setpoint", v);
            plant.send("enable");
        });
        machine().internal(active).on(driver, "set").act([this](const rt::Message& m) {
            const double v = m.dataOr<double>(25.0);
            std::printf("  [%6.2f s] cruise: new setpoint %.1f m/s\n", now(), v);
            plant.send("setpoint", v);
        });
        machine().transition(active, overrideSt).on(driver, "brake").act(
            [this](const rt::Message&) {
                std::printf("  [%6.2f s] cruise: Active -> Override (brake)\n", now());
                plant.send("disable");
            });
        machine().transition(overrideSt, active).on(driver, "resume").act(
            [this](const rt::Message&) {
                std::printf("  [%6.2f s] cruise: Override -> Active (resume)\n", now());
                plant.send("enable");
            });
        machine().transition(active, standby).on(driver, "cancel").act(
            [this](const rt::Message&) {
                std::printf("  [%6.2f s] cruise: Active -> Standby (cancel)\n", now());
                plant.send("disable");
            });
    }

    rt::Port driver;
    rt::Port plant;
};

/// Driver inputs delivered through timers (scripted scenario).
class Driver final : public rt::Capsule {
public:
    explicit Driver(std::string name)
        : rt::Capsule(std::move(name)), out(*this, "out", cruiseProtocol(), true) {}
    rt::Port out;

protected:
    void onInit() override {
        informIn(1.0, "t_power");
        informIn(2.0, "t_set");
        informIn(20.0, "t_brake");
        informIn(25.0, "t_resume");
        informIn(40.0, "t_faster");
    }
    void onMessage(const rt::Message& m) override {
        const auto sig = m.signalName();
        if (sig == "t_power") out.send("power");
        if (sig == "t_set") out.send("set", 30.0);
        if (sig == "t_brake") out.send("brake");
        if (sig == "t_resume") out.send("resume");
        if (sig == "t_faster") out.send("set", 35.0);
    }
};

} // namespace

int main() {
    std::puts("cruise control: Off/Standby/Active/Override over vehicle dynamics");
    std::puts("------------------------------------------------------------------");

    sim::HybridSystem sys;

    f::Streamer group{"drivetrain"};
    Vehicle car("car", &group);
    SpeedController pi("pi", &group);
    f::flow(car.speed, pi.meas);
    f::flow(pi.force, car.force);

    CruiseCapsule cruise("cruise");
    Driver driver("driver");
    rt::connect(driver.out, cruise.driver);
    rt::connect(cruise.plant, pi.ctl.rtPort());

    sys.addCapsule(cruise);
    sys.addCapsule(driver);
    sys.addStreamerGroup(group, urtx::solver::makeIntegrator("RK4"), 0.02);
    sys.trace().channel("v", [&] { return car.speed.get(); });
    sys.trace().channel("F", [&] { return pi.force.get(); });

    sys.run(60.0);

    std::puts("\n  t [s]    v [m/s]    F [N]");
    const auto& tr = sys.trace();
    for (std::size_t r = 249; r < tr.rows(); r += 250) {
        std::printf("  %6.2f   %7.2f   %7.1f\n", tr.timeAt(r), tr.valueAt(r, 0),
                    tr.valueAt(r, 1));
    }
    std::printf("\nfinal speed %.2f m/s (setpoint 35) — capsule state: %s\n", car.speed.get(),
                cruise.machine().currentPath().c_str());
    return 0;
}
