/// \file cruise_control.cpp
/// Automotive cruise control — a richer capsule state machine (the kind of
/// event-driven logic UML-RT was built for) supervising a continuous
/// vehicle model with a PI speed controller.
///
/// States: Off -> Standby -> Active, with Override while the driver brakes
/// (shallow history restores Active afterwards). The streamer side holds
/// the longitudinal dynamics m v' = F - b v - c v² and a gated PI law.
/// The components live in the shared scenario library (src/srv/scenarios)
/// — this example constructs the same CruiseScenario the batch server
/// builds by name, with the narrative turned on.

#include <cstdio>

#include "sim/sim.hpp"
#include "srv/scenarios/scenarios.hpp"

namespace sim = urtx::sim;
namespace scen = urtx::srv::scenarios;

int main() {
    std::puts("cruise control: Off/Standby/Active/Override over vehicle dynamics");
    std::puts("------------------------------------------------------------------");

    urtx::srv::ScenarioParams params;
    params.set("verbose", 1.0);
    scen::CruiseScenario scenario(params);
    sim::HybridSystem& sys = scenario.system();

    sys.run(60.0);

    std::puts("\n  t [s]    v [m/s]    F [N]");
    const auto& tr = sys.trace();
    for (std::size_t r = 249; r < tr.rows(); r += 250) {
        std::printf("  %6.2f   %7.2f   %7.1f\n", tr.timeAt(r), tr.valueAt(r, 0),
                    tr.valueAt(r, 1));
    }
    std::printf("\nfinal speed %.2f m/s (setpoint 35) — capsule state: %s\n",
                scenario.car().speed.get(),
                scenario.cruise().machine().currentPath().c_str());
    return 0;
}
