/// \file quickstart.cpp
/// Minimal end-to-end tour of the library — the paper's unified modeling in
/// ~100 lines:
///
///  * a *streamer* (Room) integrates the continuous thermal equation
///      dT/dt = -k (T - Tamb) + P·heat
///    and raises "tooCold"/"tooHot" signals when the temperature crosses
///    thresholds (zero-crossing events);
///  * a *capsule* (Thermostat) runs a two-state machine (Idle/Heating) and
///    switches the heater by sending "setHeat" back through the SPort;
///  * a HybridSystem binds both worlds on one simulation clock.
///
/// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <span>

#include "urtx.hpp"

namespace f = urtx::flow;
namespace rt = urtx::rt;
namespace sim = urtx::sim;

namespace {

rt::Protocol& thermoProtocol() {
    static rt::Protocol p = [] {
        rt::Protocol q{"Thermo"};
        q.out("tooCold").out("tooHot"); // streamer -> capsule
        q.in("setHeat");                // capsule -> streamer
        return q;
    }();
    return p;
}

/// Continuous world: first-order room thermal model with hysteresis events.
class Room final : public f::Streamer {
public:
    Room(std::string name, f::Streamer* parent)
        : f::Streamer(std::move(name), parent),
          temp(*this, "temp", f::DPortDir::Out, f::FlowType::real()),
          ctl(*this, "ctl", thermoProtocol(), /*conjugated=*/false) {
        setParam("k", 0.4);     // heat loss coefficient
        setParam("Tamb", 8.0);  // ambient temperature
        setParam("heat", 0.0);  // heater power (set by capsule)
        setParam("low", 19.0);  // thresholds
        setParam("high", 21.0);
    }

    f::DPort temp;
    f::SPort ctl;

    std::size_t stateSize() const override { return 1; }
    void initState(double, std::span<double> x) override { x[0] = 15.0; }
    void derivatives(double, std::span<const double> x, std::span<double> dx) override {
        dx[0] = -param("k") * (x[0] - param("Tamb")) + param("heat");
    }
    void outputs(double, std::span<const double> x) override { temp.set(x[0]); }
    bool directFeedthrough() const override { return false; }

    // One event surface encoding both thresholds: distance to the nearest
    // boundary of [low, high], negative outside.
    bool hasEvent() const override { return true; }
    double eventFunction(double, std::span<const double> x) const override {
        const double T = x[0];
        return std::min(T - param("low"), param("high") - T);
    }
    void onEvent(double t, bool rising) override {
        if (rising) return; // entering the comfort band: nothing to do
        const double T = temp.get();
        if (T <= param("low") + 1e-6) {
            std::printf("  [%6.2f s] room:   T=%.2f °C -> tooCold\n", t, T);
            ctl.send("tooCold");
        } else {
            std::printf("  [%6.2f s] room:   T=%.2f °C -> tooHot\n", t, T);
            ctl.send("tooHot");
        }
    }
    void onSignal(f::SPort&, const rt::Message& m) override {
        if (m.signal == rt::signal("setHeat")) setParam("heat", m.dataOr<double>(0.0));
    }
};

/// Event-driven world: a bang-bang thermostat capsule.
class Thermostat final : public rt::Capsule {
public:
    explicit Thermostat(std::string name)
        : rt::Capsule(std::move(name)), port(*this, "port", thermoProtocol(), true) {
        auto& idle = machine().state("Idle");
        auto& heating = machine().state("Heating");
        machine().initial(idle);
        machine().transition(idle, heating).on("tooCold").act([this](const rt::Message&) {
            std::printf("  [%6.2f s] thermo: Idle -> Heating (heater 6 kW)\n", now());
            port.send("setHeat", 6.0);
        });
        machine().transition(heating, idle).on("tooHot").act([this](const rt::Message&) {
            std::printf("  [%6.2f s] thermo: Heating -> Idle (heater off)\n", now());
            port.send("setHeat", 0.0);
        });
    }
    rt::Port port;
};

} // namespace

int main() {
    std::puts("urtx quickstart: bang-bang thermostat over a continuous room model");
    std::puts("-------------------------------------------------------------------");

    f::Streamer plantGroup{"plant"};
    Room room("room", &plantGroup);
    Thermostat thermo("thermostat");

    // One fluent expression assembles the whole system: the capsule world,
    // the solver group and the cross-world connection.
    urtx::SystemBuilder b;
    b.capsule(thermo)
        .streamer(plantGroup, "RK4", 0.05)
        .flow(thermo.port, room.ctl) // capsule <-> SPort
        .trace("T", [&] { return room.temp.get(); })
        .trace("heat", [&] { return room.param("heat"); });
    auto& runner = b.lastRunner();
    auto sysPtr = b.build();
    sim::HybridSystem& sys = *sysPtr;

    // Cold start: the room is below `low`, so kick the loop off by letting
    // the first crossing happen naturally (T starts at 15 < 19 => the event
    // function starts negative; prod the thermostat once).
    sys.initialize();
    room.ctl.send("tooCold");

    sys.run(60.0, sim::ExecutionMode::SingleThread);

    std::puts("\n  t [s]    T [°C]   heater");
    const auto& tr = sys.trace();
    for (std::size_t r = 0; r < tr.rows(); r += 100) {
        std::printf("  %6.2f   %6.2f   %s\n", tr.timeAt(r), tr.valueAt(r, 0),
                    tr.valueAt(r, 1) > 0 ? "ON" : "off");
    }
    std::printf("\nfinal temperature: %.2f °C after %llu steps (%s mode)\n", room.temp.get(),
                static_cast<unsigned long long>(sys.steps()),
                sim::to_string(sim::ExecutionMode::SingleThread));
    std::printf("events fired: %llu, signals processed: %llu\n",
                static_cast<unsigned long long>(runner.eventsFired()),
                static_cast<unsigned long long>(runner.signalsProcessed()));
    return 0;
}
