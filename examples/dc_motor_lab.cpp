/// \file dc_motor_lab.cpp
/// A small "lab bench": three DC motors under digital (sampled) PID speed
/// control, supervised by one capsule through a *replicated port*, with a
/// shared logging *layer service* — the UML-RT facilities working together
/// with the continuous extension:
///
///  * control::DcMotor      — continuous plant (differential equations)
///  * control::DiscretePid  — sampled controller (difference equations)
///  * rt::PortArray         — supervisor fans out to N motor stations
///  * rt::LayerService      — stations log through a by-name service
///  * trace CSV + GraphViz  — artifacts written next to the binary

#include <cstdio>

#include "control/control.hpp"
#include "urtx.hpp"

namespace f = urtx::flow;
namespace c = urtx::control;
namespace s = urtx::solver;
namespace rt = urtx::rt;
namespace sim = urtx::sim;

namespace {

rt::Protocol& stationProtocol() {
    static rt::Protocol p = [] {
        rt::Protocol q{"Station"};
        q.out("setSpeed").in("reached");
        return q;
    }();
    return p;
}

rt::Protocol& logProtocol() {
    static rt::Protocol p = [] {
        rt::Protocol q{"Log"};
        q.out("line");
        return q;
    }();
    return p;
}

/// Leaf monitor: watches the measured speed, raises "reached" toward the
/// capsule world when within 2% of the setpoint, and applies incoming
/// "setSpeed" commands to the reference block. Events live on a *leaf*
/// streamer — composites only provide structure.
class ReachedMonitor final : public f::Streamer {
public:
    ReachedMonitor(std::string name, f::Streamer* parent, c::Constant& ref)
        : f::Streamer(std::move(name), parent),
          speedIn(*this, "speed", f::DPortDir::In, f::FlowType::real()),
          ctl(*this, "ctl", stationProtocol(), true),
          ref_(ref) {}

    f::DPort speedIn;
    f::SPort ctl;

    bool directFeedthrough() const override { return false; }
    void onSignal(f::SPort&, const rt::Message& m) override {
        if (m.signal == rt::signal("setSpeed")) {
            ref_.setParam("value", m.dataOr<double>(0.0));
            reported_ = false;
        }
    }
    bool hasEvent() const override { return true; }
    double eventFunction(double, std::span<const double>) const override {
        const double target = ref_.param("value");
        if (target <= 0) return -1.0;
        return 0.02 * target - std::abs(target - speedIn.get());
    }
    void onEvent(double t, bool rising) override {
        if (rising && !reported_) {
            reported_ = true;
            ctl.send("reached", t);
        }
    }

private:
    c::Constant& ref_;
    bool reported_ = false;
};

/// One motor station: DC motor + sampled PID + monitor leaf.
class Station final : public f::Streamer {
public:
    Station(std::string name, f::Streamer* parent)
        : f::Streamer(std::move(name), parent),
          motor("motor", this),
          pid("pid", this, /*kp=*/30.0, /*ki=*/50.0, /*kd=*/0.0, /*period=*/0.02),
          err("err", this, "+-"),
          ref("ref", this, 0.0),
          meas("meas", this, f::FlowType::real(), 3),
          monitor("monitor", this, ref) {
        pid.withLimits(-24.0, 24.0); // supply rail
        f::flow(ref.out(), err.in(0));
        f::flow(meas.out(0), err.in(1));
        f::flow(err.out(), pid.in());
        f::flow(pid.out(), motor.voltage());
        f::flow(motor.speed(), meas.in());
        f::flow(meas.out(1), monitor.speedIn);
        // meas.out(2) left free for external observers.
    }

    c::DcMotor motor;
    c::DiscretePid pid;
    c::Sum err;
    c::Constant ref;
    f::Relay meas;
    ReachedMonitor monitor;
};

/// Supervisor capsule: commands all stations via a replicated port and
/// logs through the layer service.
class Supervisor final : public rt::Capsule {
public:
    Supervisor(std::string name, std::size_t n)
        : rt::Capsule(std::move(name)),
          stations(*this, "stations", stationProtocol(), n, false),
          logSap(*this, "log", logProtocol(), false) {}

    rt::PortArray stations;
    rt::Port logSap;
    int reached = 0;

protected:
    void onInit() override { informIn(0.2, "kickoff"); }
    void onMessage(const rt::Message& m) override {
        if (m.signalName() == "kickoff") {
            const std::size_t sent = stations.broadcast("setSpeed", 1.0);
            logSap.send("line", std::string("commanded ") + std::to_string(sent) +
                                    " stations to 1.0 rad/s");
        } else if (m.signal == rt::signal("reached")) {
            ++reached;
            const auto idx = stations.indexOf(m.dest);
            logSap.send("line", std::string("station ") +
                                    std::to_string(idx ? *idx : 999) + " reached setpoint at t=" +
                                    std::to_string(m.dataOr<double>(-1)));
        }
    }
};

/// Logging service provider.
class Logger final : public rt::Capsule {
public:
    using rt::Capsule::Capsule;
    std::vector<std::string> lines;

protected:
    void onMessage(const rt::Message& m) override {
        if (m.signal == rt::signal("line")) {
            lines.push_back(m.dataOr<std::string>(""));
            std::printf("  [log] %s\n", lines.back().c_str());
        }
    }
};

} // namespace

int main() {
    std::puts("dc motor lab: 3 stations, replicated ports, layer-service logging");
    std::puts("-------------------------------------------------------------------");

    constexpr std::size_t kStations = 3;

    f::Streamer plantGroup{"lab"};
    std::vector<std::unique_ptr<Station>> stations;
    for (std::size_t i = 0; i < kStations; ++i) {
        stations.push_back(
            std::make_unique<Station>("station" + std::to_string(i), &plantGroup));
    }

    Supervisor sup("supervisor", kStations);
    Logger logger("logger");
    rt::LayerService layer;
    layer.publish("log", logger, logProtocol(), /*providerConjugated=*/true);
    layer.registerSap(sup.logSap, "log");

    urtx::SystemBuilder b;
    b.capsule(sup).capsule(logger).streamer(plantGroup, "RK45", 0.01);
    for (std::size_t i = 0; i < kStations; ++i) {
        b.flow(sup.stations[i], stations[i]->monitor.ctl);
        b.trace("w" + std::to_string(i),
                [&, i] { return stations[i]->motor.speed().get(); });
    }
    auto sysPtr = b.build();
    sim::HybridSystem& sys = *sysPtr;

    sys.run(12.0, sim::ExecutionMode::MultiThread);

    sys.trace().writeCsv("dc_motor_lab_trace.csv");
    std::printf("\nall %d/%zu stations reported 'reached'\n", sup.reached, kStations);
    std::printf("final speeds:");
    for (auto& st : stations) std::printf(" %.4f", st->motor.speed().get());
    std::printf(" rad/s (setpoint 1.0)\n");
    std::printf("trace written to dc_motor_lab_trace.csv (%zu rows)\n", sys.trace().rows());
    return sup.reached == static_cast<int>(kStations) ? 0 : 1;
}
