/// \file inverted_pendulum.cpp
/// Mode-switching control of an inverted pendulum — the paper's Figure 1
/// (State pattern x Strategy pattern) in action.
///
/// * The *pendulum* streamer integrates  ml² θ'' = mgl sin θ - b θ' + u.
/// * The *controller* streamer computes the torque u using one of two
///   interchangeable control laws (strategies):
///     - "swingup":  energy pumping  u = k_e (E* - E) sign(θ' cos θ)
///     - "balance":  state feedback  u = -K [θ - π, θ']
/// * The *supervisor* capsule is the State side: its machine switches
///   SwingUp -> Balance when the pendulum reports (zero-crossing event)
///   that it entered the catch zone around the upright position.
/// * On top of that, the *integration* strategy itself is swapped at
///   runtime (Euler -> RK45) to show solver interchangeability.

#include <cmath>
#include <cstdio>
#include <span>

#include "flow/flow.hpp"
#include "rt/rt.hpp"
#include "sim/sim.hpp"

namespace f = urtx::flow;
namespace rt = urtx::rt;
namespace sim = urtx::sim;

namespace {

constexpr double kGravity = 9.81;
constexpr double kMass = 0.2;    // kg
constexpr double kLength = 0.5;  // m
constexpr double kDamping = 0.01;

rt::Protocol& modeProtocol() {
    static rt::Protocol p = [] {
        rt::Protocol q{"PendulumMode"};
        q.out("nearUpright").out("leftZone"); // pendulum -> supervisor
        q.in("setMode");                      // supervisor -> controller
        return q;
    }();
    return p;
}

class Pendulum final : public f::Streamer {
public:
    Pendulum(std::string name, f::Streamer* parent)
        : f::Streamer(std::move(name), parent),
          torque(*this, "torque", f::DPortDir::In, f::FlowType::real()),
          state(*this, "state", f::DPortDir::Out,
                f::FlowType::record(
                    {{"theta", f::FlowType::real()}, {"omega", f::FlowType::real()}})),
          events(*this, "events", modeProtocol(), false) {}

    f::DPort torque;
    f::DPort state;
    f::SPort events;

    std::size_t stateSize() const override { return 2; }
    void initState(double, std::span<double> x) override {
        x[0] = 0.05; // hanging down (theta measured from the downward position)
        x[1] = 0.0;
    }
    void derivatives(double, std::span<const double> x, std::span<double> dx) override {
        // theta measured from the hanging position; upright is theta = pi.
        const double ml2 = kMass * kLength * kLength;
        dx[0] = x[1];
        dx[1] = (-kMass * kGravity * kLength * std::sin(x[0]) - kDamping * x[1] + torque.get()) /
                ml2;
    }
    void outputs(double, std::span<const double> x) override {
        state.set(x[0], 0);
        state.set(x[1], 1);
    }
    bool directFeedthrough() const override { return false; }

    /// Catch zone: |θ - π| < 0.15 rad and |θ'| < 2 rad/s.
    bool hasEvent() const override { return true; }
    double eventFunction(double, std::span<const double> x) const override {
        const double dTheta = std::abs(std::remainder(x[0] - M_PI, 2.0 * M_PI));
        const double speedOk = 2.0 - std::abs(x[1]);
        return std::min(0.15 - dTheta, speedOk);
    }
    void onEvent(double t, bool rising) override {
        events.send(rising ? "nearUpright" : "leftZone", t);
    }
};

/// Strategy side of Figure 1: two torque laws behind one streamer.
class PendulumController final : public f::Streamer {
public:
    PendulumController(std::string name, f::Streamer* parent)
        : f::Streamer(std::move(name), parent),
          meas(*this, "meas", f::DPortDir::In,
               f::FlowType::record(
                   {{"theta", f::FlowType::real()}, {"omega", f::FlowType::real()}})),
          torque(*this, "torque", f::DPortDir::Out, f::FlowType::real()),
          mode(*this, "mode", modeProtocol(), true) {
        setParam("balancing", 0.0);
    }

    f::DPort meas;
    f::DPort torque;
    f::SPort mode;

    void outputs(double, std::span<const double>) override {
        const double theta = meas.get(0);
        const double omega = meas.get(1);
        double u;
        if (param("balancing") > 0.5) {
            // Strategy B: LQR-ish state feedback around upright.
            const double e = std::remainder(theta - M_PI, 2.0 * M_PI);
            u = -(kBalanceKp * e + kBalanceKd * omega);
        } else {
            // Strategy A: energy pumping toward E* (upright energy, with a
            // small margin so the pendulum actually crests the top).
            // dE/dt = u * omega, so u = k (E* - E) sign(omega) raises E
            // monotonically toward E*.
            const double ml2 = kMass * kLength * kLength;
            const double energy = 0.5 * ml2 * omega * omega -
                                  kMass * kGravity * kLength * std::cos(theta);
            const double eStar = 1.02 * kMass * kGravity * kLength;
            const double drive = (eStar - energy) * (omega >= 0 ? 1.0 : -1.0);
            u = std::clamp(kSwingGain * drive, -kTorqueMax, kTorqueMax);
        }
        torque.set(std::clamp(u, -kTorqueMax, kTorqueMax));
    }

    void onSignal(f::SPort&, const rt::Message& m) override {
        if (m.signal == rt::signal("setMode")) setParam("balancing", m.dataOr<double>(0.0));
    }

private:
    static constexpr double kSwingGain = 4.0;
    static constexpr double kBalanceKp = 8.0;
    static constexpr double kBalanceKd = 2.0;
    static constexpr double kTorqueMax = 1.5;
};

/// State side of Figure 1: the supervisor capsule.
class Supervisor final : public rt::Capsule {
public:
    Supervisor(std::string name, rt::Port*& modePortOut)
        : rt::Capsule(std::move(name)),
          fromPlant(*this, "fromPlant", modeProtocol(), true),
          toController(*this, "toController", modeProtocol(), false) {
        modePortOut = &toController;
        auto& swingUp = machine().state("SwingUp");
        auto& balance = machine().state("Balance");
        machine().initial(swingUp);
        machine().transition(swingUp, balance).on("nearUpright").act([this](const rt::Message& m) {
            std::printf("  [%6.3f s] supervisor: SwingUp -> Balance\n", m.dataOr<double>(0.0));
            toController.send("setMode", 1.0);
            ++switches;
        });
        machine().transition(balance, swingUp).on("leftZone").act([this](const rt::Message& m) {
            std::printf("  [%6.3f s] supervisor: Balance -> SwingUp (fell out)\n",
                        m.dataOr<double>(0.0));
            toController.send("setMode", 0.0);
            ++switches;
        });
    }

    rt::Port fromPlant;
    rt::Port toController;
    int switches = 0;
};

} // namespace

int main() {
    std::puts("inverted pendulum: swing-up + catch with strategy-swapped solvers");
    std::puts("------------------------------------------------------------------");

    sim::HybridSystem sys;

    f::Streamer group{"pendulumGroup"};
    Pendulum pend("pendulum", &group);
    PendulumController ctl("controller", &group);
    f::flow(pend.state, ctl.meas);
    f::flow(ctl.torque, pend.torque);

    rt::Port* modePort = nullptr;
    Supervisor sup("supervisor", modePort);
    rt::connect(sup.fromPlant, pend.events.rtPort());
    rt::connect(sup.toController, ctl.mode.rtPort());

    sys.addCapsule(sup);
    auto& runner = sys.addStreamerGroup(group, urtx::solver::makeIntegrator("Euler"), 0.002);
    sys.trace().channel("theta", [&] { return pend.state.get(0); });
    sys.trace().channel("torque", [&] { return ctl.torque.get(); });

    // Phase 1 with the cheap Euler strategy.
    sys.run(2.0);
    std::printf("  [%6.3f s] swapping integration strategy: %s -> RK45 (Figure 1)\n", sys.now(),
                runner.integrator().name());
    runner.setIntegrator(urtx::solver::makeIntegrator("RK45"));
    sys.run(20.0);

    const double thetaEnd = std::remainder(pend.state.get(0) - M_PI, 2.0 * M_PI);
    std::printf("\nfinal: |theta - pi| = %.4f rad, omega = %.4f rad/s, mode switches = %d\n",
                std::abs(thetaEnd), pend.state.get(1), sup.switches);
    std::printf("solver: %s, events fired = %llu\n", runner.integrator().name(),
                static_cast<unsigned long long>(runner.eventsFired()));
    if (std::abs(thetaEnd) < 0.1) {
        std::puts("pendulum balanced upright — unified model closed the loop.");
    } else {
        std::puts("pendulum not yet balanced (tune gains / run longer).");
    }
    return 0;
}
