/// \file inverted_pendulum.cpp
/// Mode-switching control of an inverted pendulum — the paper's Figure 1
/// (State pattern x Strategy pattern) in action.
///
/// * The *pendulum* streamer integrates  ml² θ'' = mgl sin θ - b θ' + u.
/// * The *controller* streamer computes the torque u using one of two
///   interchangeable control laws (strategies): "swingup" energy pumping
///   and "balance" state feedback.
/// * The *supervisor* capsule is the State side: its machine switches
///   SwingUp -> Balance when the pendulum reports (zero-crossing event)
///   that it entered the catch zone around the upright position.
/// * On top of that, the *integration* strategy itself is swapped at
///   runtime (Euler -> RK45) to show solver interchangeability.
///
/// The components live in the shared scenario library (src/srv/scenarios);
/// this example builds the same PendulumScenario the batch server uses,
/// starting on Euler and swapping strategies mid-run.

#include <cmath>
#include <cstdio>

#include "sim/sim.hpp"
#include "srv/scenarios/scenarios.hpp"

namespace sim = urtx::sim;
namespace scen = urtx::srv::scenarios;

int main() {
    std::puts("inverted pendulum: swing-up + catch with strategy-swapped solvers");
    std::puts("------------------------------------------------------------------");

    urtx::srv::ScenarioParams params;
    params.set("verbose", 1.0);
    params.set("integrator", std::string("Euler"));
    scen::PendulumScenario scenario(params);
    sim::HybridSystem& sys = scenario.system();
    auto& runner = scenario.runner();
    scen::Pendulum& pend = scenario.pendulum();

    // Phase 1 with the cheap Euler strategy.
    sys.run(2.0);
    std::printf("  [%6.3f s] swapping integration strategy: %s -> RK45 (Figure 1)\n", sys.now(),
                runner.integrator().name());
    runner.setIntegrator(urtx::solver::makeIntegrator("RK45"));
    sys.run(20.0);

    const double thetaEnd = std::remainder(pend.state.get(0) - M_PI, 2.0 * M_PI);
    std::printf("\nfinal: |theta - pi| = %.4f rad, omega = %.4f rad/s, mode switches = %d\n",
                std::abs(thetaEnd), pend.state.get(1), scenario.supervisor().switches);
    std::printf("solver: %s, events fired = %llu\n", runner.integrator().name(),
                static_cast<unsigned long long>(runner.eventsFired()));
    if (std::abs(thetaEnd) < 0.1) {
        std::puts("pendulum balanced upright — unified model closed the loop.");
    } else {
        std::puts("pendulum not yet balanced (tune gains / run longer).");
    }
    return 0;
}
