/// \file model_driven.cpp
/// The complete unified pipeline of the paper in one run, *without any
/// application code for the plant*: the hybrid system below is authored as
/// an XML model (the artifact a UML tool would produce), then
///
///   parse -> validate -> instantiate -> simulate
///
/// entirely through the model interpreter. The capsule's state machine and
/// the streamer network both come from the XML.

#include <cstdio>

#include "control/control.hpp"
#include "flow/solver_runner.hpp"
#include "model/instantiate.hpp"
#include "model/model_io.hpp"
#include "model/validator.hpp"

namespace m = urtx::model;
namespace f = urtx::flow;
namespace c = urtx::control;
namespace s = urtx::solver;
namespace rt = urtx::rt;

namespace {

const char* kModelXml = R"xml(<?xml version="1.0" encoding="UTF-8"?>
<model name="servo">
  <protocol name="Servo">
    <signal name="engage" dir="in"/>
    <signal name="disengage" dir="in"/>
  </protocol>
  <flowtype name="Scalar" type="Real"/>

  <streamer name="Step" solver="RK4">
    <param name="t0" value="0.1"/>
    <param name="after" value="2"/>
    <port name="out" kind="data" flowtype="Scalar" dir="out"/>
  </streamer>
  <streamer name="Diff" solver="RK4">
    <port name="in0" kind="data" flowtype="Scalar" dir="in"/>
    <port name="in1" kind="data" flowtype="Scalar" dir="in"/>
    <port name="out" kind="data" flowtype="Scalar" dir="out"/>
  </streamer>
  <streamer name="Pid" solver="RK4">
    <param name="kp" value="6"/>
    <param name="ki" value="3"/>
    <param name="kd" value="0.2"/>
    <port name="in" kind="data" flowtype="Scalar" dir="in"/>
    <port name="out" kind="data" flowtype="Scalar" dir="out"/>
  </streamer>
  <streamer name="FirstOrderLag" solver="RK4">
    <param name="tau" value="0.5"/>
    <port name="in" kind="data" flowtype="Scalar" dir="in"/>
    <port name="out" kind="data" flowtype="Scalar" dir="out"/>
  </streamer>
  <streamer name="Recorder">
    <port name="in" kind="data" flowtype="Scalar" dir="in"/>
  </streamer>

  <streamer name="ServoLoop">
    <part name="sp" class="Step" type="streamer"/>
    <part name="err" class="Diff" type="streamer"/>
    <part name="pid" class="Pid" type="streamer"/>
    <part name="plant" class="FirstOrderLag" type="streamer"/>
    <part name="rec" class="Recorder" type="streamer"/>
    <relay name="meas" flowtype="Scalar" fanout="2"/>
    <flow from="sp.out" to="err.in0"/>
    <flow from="meas.out0" to="err.in1"/>
    <flow from="err.out" to="pid.in"/>
    <flow from="pid.out" to="plant.in"/>
    <flow from="plant.out" to="meas.in"/>
    <flow from="meas.out1" to="rec.in"/>
  </streamer>

  <capsule name="ServoSupervisor">
    <port name="cmd" kind="signal" protocol="Servo"/>
    <part name="loop" class="ServoLoop" type="streamer"/>
    <state name="Disengaged" initial="true"/>
    <state name="Engaged"/>
    <transition from="Disengaged" to="Engaged" signal="engage"/>
    <transition from="Engaged" to="Disengaged" signal="disengage"/>
  </capsule>
  <top capsule="ServoSupervisor"/>
</model>
)xml";

} // namespace

int main() {
    std::puts("model-driven simulation: XML -> validate -> instantiate -> simulate");
    std::puts("--------------------------------------------------------------------");

    // 1. Parse.
    const m::Model mod = m::fromXml(kModelXml);
    std::printf("parsed model '%s': %zu protocols, %zu flow types, %zu streamers, "
                "%zu capsules\n",
                mod.name.c_str(), mod.protocols.size(), mod.flowTypes.size(),
                mod.streamers.size(), mod.capsules.size());

    // 2. Validate.
    const auto diags = m::Validator().validate(mod);
    std::printf("validation: %zu diagnostic(s)\n", diags.size());
    std::fputs(m::Validator::render(diags).c_str(), stdout);
    if (!m::Validator::ok(diags)) return 1;

    // 3. Instantiate (capsule + contained streamer network, Figure 3).
    m::BehaviorRegistry registry;
    registry.registerStandardBlocks();
    m::Instantiator inst(mod, registry);
    auto supervisor = inst.capsule("ServoSupervisor", "supervisor");
    supervisor->initialize();
    std::printf("\ninstantiated capsule '%s' (state: %s) containing %zu streamer group(s)\n",
                supervisor->name().c_str(), supervisor->machine().currentPath().c_str(),
                supervisor->ownedStreamers.size());

    // Animate the machine from the model.
    supervisor->deliver(rt::Message(rt::signal("engage")));
    std::printf("after 'engage': state = %s\n", supervisor->machine().currentPath().c_str());

    // 4. Simulate the contained streamer network.
    f::Streamer& loop = *supervisor->ownedStreamers.front();
    f::SolverRunner runner(loop, s::makeIntegrator("RK45"), 0.01);
    runner.initialize(0.0);
    runner.advanceTo(4.0);

    c::Recorder* rec = nullptr;
    for (f::Streamer* child : loop.subStreamers()) {
        if ((rec = dynamic_cast<c::Recorder*>(child))) break;
    }
    std::puts("\n  t [s]    y");
    for (std::size_t r = 24; r < rec->samples().size(); r += 50) {
        std::printf("  %5.2f  %7.4f\n", rec->samples()[r].t, rec->samples()[r].v);
    }
    std::printf("\nsetpoint 2.0, final output %.4f (PI removes steady-state error)\n",
                rec->last());
    std::printf("transitions logged by the interpreted machine: %zu\n",
                supervisor->transitionLog.size());
    return 0;
}
