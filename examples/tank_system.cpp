/// \file tank_system.cpp
/// Two-tank level control with fault injection — shows zero-crossing
/// events driving safety logic and a supervisor capsule reconfiguring the
/// continuous world at run time.
///
/// The system itself (plant, supervisor, fault injector) lives in the
/// shared scenario library (src/srv/scenarios) where batch serving builds
/// it by name; this example constructs the same TankScenario directly,
/// runs it verbosely, and layers the real-time health demo on top: the
/// flight recorder keeps a causal log of every emit/reaction, the monitor
/// checks that the supervisor reacts to "levelHigh" within 2 ms of the
/// plant raising it, and the post-mortem is dumped to tank_postmortem.json
/// at the end.

#include <cstdio>

#include "obs/obs.hpp"
#include "rt/rt.hpp"
#include "sim/sim.hpp"
#include "srv/scenarios/scenarios.hpp"

namespace rt = urtx::rt;
namespace sim = urtx::sim;
namespace obs = urtx::obs;
namespace scen = urtx::srv::scenarios;

int main() {
    std::puts("two-tank system: level supervision with a stuck-valve fault at t=30 s");
    std::puts("----------------------------------------------------------------------");

    // Health layer: causal flight recording plus a reaction deadline — the
    // supervisor must start handling "levelHigh" within 2 ms (wall clock)
    // of the plant emitting it.
    obs::FlightRecorder::global().setDumpPath("tank_postmortem.json");
    obs::FlightRecorder::global().setEnabled(true);
    obs::Monitor::global().setEnabled(true);
    obs::Monitor::global().require(rt::signal("levelHigh"), "levelHigh", 2e-3);

    urtx::srv::ScenarioParams params;
    params.set("verbose", 1.0);
    scen::TankScenario scenario(params);
    sim::HybridSystem& sys = scenario.system();
    scen::TwoTank& tank = scenario.tank();

    sys.run(120.0, sim::ExecutionMode::MultiThread);

    std::puts("\n  t [s]     h1 [m]   h2 [m]   pump");
    const auto& tr = sys.trace();
    for (std::size_t r = 199; r < tr.rows(); r += 200) {
        std::printf("  %6.1f   %7.3f  %7.3f   %4.2f\n", tr.timeAt(r), tr.valueAt(r, 0),
                    tr.valueAt(r, 1), tr.valueAt(r, 2));
    }
    std::printf("\nfinal: h1 = %.3f m (alarm at 2.0), supervisor state: %s\n", tank.h1.get(),
                scenario.supervisor().machine().currentPath().c_str());
    std::printf("ran in %s mode, %llu steps\n", sim::to_string(sim::ExecutionMode::MultiThread),
                static_cast<unsigned long long>(sys.steps()));

    const obs::Snapshot health = obs::Registry::global().snapshot();
    const auto* hop = health.histogram("rt.hop_latency_seconds.levelHigh");
    std::printf("health: levelHigh reactions %llu, deadline misses %llu, worst hop %.1f us\n",
                static_cast<unsigned long long>(hop ? hop->count : 0),
                static_cast<unsigned long long>(obs::Monitor::global().misses()),
                (health.gauge("rt.hop_latency_worst_seconds.levelHigh")
                     ? health.gauge("rt.hop_latency_worst_seconds.levelHigh")->value
                     : 0.0) *
                    1e6);
    const std::string dump = obs::FlightRecorder::global().dumpNow("end of run (demo)");
    std::printf("post-mortem (%zu causal events) written to %s\n",
                obs::FlightRecorder::global().eventCount(),
                dump.empty() ? "(write failed)" : dump.c_str());
    obs::Monitor::global().setEnabled(false);
    obs::FlightRecorder::global().setEnabled(false);
    return 0;
}
