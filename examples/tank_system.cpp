/// \file tank_system.cpp
/// Two-tank level control with fault injection — shows zero-crossing
/// events driving safety logic and a supervisor capsule reconfiguring the
/// continuous world at run time.
///
/// Plant:  tank1 --(valve)--> tank2 --(outlet)-->
///   dh1/dt = (qin - k1 a sqrt(h1)) / A1
///   dh2/dt = (k1 a sqrt(h1) - k2 sqrt(h2)) / A2
/// where a in [0,1] is the valve opening. At t = 30 s the valve sticks
/// (fault); the supervisor detects the resulting high level in tank1 via a
/// zero-crossing event and shuts the inflow pump.
///
/// The run also exercises the real-time health layer: the flight recorder
/// keeps a causal log of every emit/reaction, the monitor checks that the
/// supervisor reacts to "levelHigh" within 2 ms of the plant raising it,
/// and the post-mortem is dumped to tank_postmortem.json at the end.

#include <cmath>
#include <cstdio>
#include <span>

#include "flow/flow.hpp"
#include "obs/obs.hpp"
#include "rt/rt.hpp"
#include "sim/sim.hpp"

namespace f = urtx::flow;
namespace rt = urtx::rt;
namespace sim = urtx::sim;

namespace {

rt::Protocol& tankProtocol() {
    static rt::Protocol p = [] {
        rt::Protocol q{"Tank"};
        q.out("levelHigh").out("levelOk");      // plant -> supervisor
        q.in("setPump").in("setValve").in("stickValve"); // supervisor/fault -> plant
        return q;
    }();
    return p;
}

class TwoTank final : public f::Streamer {
public:
    TwoTank(std::string name, f::Streamer* parent)
        : f::Streamer(std::move(name), parent),
          h1(*this, "h1", f::DPortDir::Out, f::FlowType::real()),
          h2(*this, "h2", f::DPortDir::Out, f::FlowType::real()),
          ctl(*this, "ctl", tankProtocol(), false),
          faultIn(*this, "faultIn", tankProtocol(), false) {
        setParam("qin", 0.8);   // pump flow
        setParam("valve", 1.0); // commanded opening
        setParam("stuck", 0.0); // fault flag
        setParam("stuckAt", 0.15);
        setParam("hmax", 2.0);  // alarm threshold for tank1
    }

    f::DPort h1;
    f::DPort h2;
    f::SPort ctl;
    f::SPort faultIn; ///< second signal path: fault injection

    double valveOpening() const {
        return param("stuck") > 0.5 ? param("stuckAt") : param("valve");
    }

    std::size_t stateSize() const override { return 2; }
    void initState(double, std::span<double> x) override {
        x[0] = 1.0;
        x[1] = 0.5;
    }
    void derivatives(double, std::span<const double> x, std::span<double> dx) override {
        const double a = valveOpening();
        const double q12 = 0.6 * a * std::sqrt(std::max(0.0, x[0]));
        const double qout = 0.5 * std::sqrt(std::max(0.0, x[1]));
        dx[0] = (param("qin") - q12) / 1.0;
        dx[1] = (q12 - qout) / 1.5;
    }
    void outputs(double, std::span<const double> x) override {
        h1.set(x[0]);
        h2.set(x[1]);
    }
    bool directFeedthrough() const override { return false; }

    bool hasEvent() const override { return true; }
    double eventFunction(double, std::span<const double> x) const override {
        return param("hmax") - x[0]; // negative => overfull
    }
    void onEvent(double t, bool rising) override {
        if (!rising) {
            std::printf("  [%6.2f s] plant: tank1 level %.3f m crossed ALARM threshold\n", t,
                        h1.get());
            ctl.send("levelHigh", t);
        } else {
            std::printf("  [%6.2f s] plant: tank1 back below threshold\n", t);
            ctl.send("levelOk", t);
        }
    }
    void onSignal(f::SPort&, const rt::Message& m) override {
        if (m.signal == rt::signal("setPump")) setParam("qin", m.dataOr<double>(0.0));
        if (m.signal == rt::signal("setValve")) setParam("valve", m.dataOr<double>(1.0));
        if (m.signal == rt::signal("stickValve")) {
            setParam("stuck", 1.0);
            std::printf("  [%6.2f s] plant: FAULT injected — valve stuck at %.0f %%\n",
                        m.dataOr<double>(0.0), 100.0 * param("stuckAt"));
        }
    }
};

class TankSupervisor final : public rt::Capsule {
public:
    explicit TankSupervisor(std::string name)
        : rt::Capsule(std::move(name)), plant(*this, "plant", tankProtocol(), true) {
        auto& normal = machine().state("Normal");
        auto& shutdown = machine().state("Shutdown");
        machine().initial(normal);
        machine().transition(normal, shutdown).on("levelHigh").act([this](const rt::Message& m) {
            std::printf("  [%6.2f s] supervisor: Normal -> Shutdown (pump off)\n",
                        m.dataOr<double>(0.0));
            plant.send("setPump", 0.0);
        });
        machine().transition(shutdown, normal).on("levelOk").act([this](const rt::Message& m) {
            std::printf("  [%6.2f s] supervisor: Shutdown -> Normal (pump restored at 50 %%)\n",
                        m.dataOr<double>(0.0));
            plant.send("setPump", 0.4);
        });
    }
    rt::Port plant;
};

/// Scripted fault injector. It talks to the plant through a dedicated
/// SPort (SPorts are point-to-point, so it cannot share the supervisor's):
/// in MultiThread mode a direct setParam() from this capsule's thread
/// would race the solver thread reading parameters mid-equation — signals
/// are drained at step boundaries, which is the thread-safe path.
class FaultInjector final : public rt::Capsule {
public:
    explicit FaultInjector(std::string name)
        : rt::Capsule(std::move(name)), plant(*this, "plant", tankProtocol(), true) {}
    rt::Port plant;

protected:
    void onInit() override { informIn(30.0, "inject"); }
    void onMessage(const rt::Message& m) override {
        if (m.signalName() == "inject") {
            plant.send("stickValve", now());
            std::printf("  [%6.2f s] fault injector: valve stuck!\n", now());
        }
    }
};

} // namespace

int main() {
    std::puts("two-tank system: level supervision with a stuck-valve fault at t=30 s");
    std::puts("----------------------------------------------------------------------");

    // Health layer: causal flight recording plus a reaction deadline — the
    // supervisor must start handling "levelHigh" within 2 ms (wall clock)
    // of the plant emitting it.
    namespace obs = urtx::obs;
    obs::FlightRecorder::global().setDumpPath("tank_postmortem.json");
    obs::FlightRecorder::global().setEnabled(true);
    obs::Monitor::global().setEnabled(true);
    obs::Monitor::global().require(rt::signal("levelHigh"), "levelHigh", 2e-3);

    sim::HybridSystem sys;

    f::Streamer group{"process"};
    TwoTank tank("tanks", &group);
    TankSupervisor sup("supervisor");
    FaultInjector fault("fault");
    rt::connect(sup.plant, tank.ctl.rtPort());
    rt::connect(fault.plant, tank.faultIn.rtPort());

    sys.addCapsule(sup);
    sys.addCapsule(fault);
    sys.addStreamerGroup(group, urtx::solver::makeIntegrator("RK45"), 0.05);
    sys.trace().channel("h1", [&] { return tank.h1.get(); });
    sys.trace().channel("h2", [&] { return tank.h2.get(); });
    sys.trace().channel("pump", [&] { return tank.param("qin"); });

    sys.run(120.0, sim::ExecutionMode::MultiThread);

    std::puts("\n  t [s]     h1 [m]   h2 [m]   pump");
    const auto& tr = sys.trace();
    for (std::size_t r = 199; r < tr.rows(); r += 200) {
        std::printf("  %6.1f   %7.3f  %7.3f   %4.2f\n", tr.timeAt(r), tr.valueAt(r, 0),
                    tr.valueAt(r, 1), tr.valueAt(r, 2));
    }
    std::printf("\nfinal: h1 = %.3f m (alarm at 2.0), supervisor state: %s\n", tank.h1.get(),
                sup.machine().currentPath().c_str());
    std::printf("ran in %s mode, %llu steps\n", sim::to_string(sim::ExecutionMode::MultiThread),
                static_cast<unsigned long long>(sys.steps()));

    const obs::Snapshot health = obs::Registry::global().snapshot();
    const auto* hop = health.histogram("rt.hop_latency_seconds.levelHigh");
    std::printf("health: levelHigh reactions %llu, deadline misses %llu, worst hop %.1f us\n",
                static_cast<unsigned long long>(hop ? hop->count : 0),
                static_cast<unsigned long long>(obs::Monitor::global().misses()),
                (health.gauge("rt.hop_latency_worst_seconds.levelHigh")
                     ? health.gauge("rt.hop_latency_worst_seconds.levelHigh")->value
                     : 0.0) *
                    1e6);
    const std::string dump = obs::FlightRecorder::global().dumpNow("end of run (demo)");
    std::printf("post-mortem (%zu causal events) written to %s\n",
                obs::FlightRecorder::global().eventCount(),
                dump.empty() ? "(write failed)" : dump.c_str());
    obs::Monitor::global().setEnabled(false);
    obs::FlightRecorder::global().setEnabled(false);
    return 0;
}
