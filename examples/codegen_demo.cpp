/// \file codegen_demo.cpp
/// The full tool flow of the paper — "from requirement analysis, model
/// design, simulation, until generation code":
///
///   1. build the Figure 2/3 model declaratively (metamodel),
///   2. validate it against the paper's well-formedness rules,
///   3. serialize it to the XMI-like XML interchange format,
///   4. generate compilable C++ targeting this runtime.

#include <cstdio>
#include <filesystem>

#include "codegen/codegen.hpp"
#include "model/model_io.hpp"
#include "model/stereotype.hpp"
#include "model/validator.hpp"

namespace m = urtx::model;
namespace f = urtx::flow;
namespace cg = urtx::codegen;

namespace {

/// The topology of the paper's Figure 2 (streamer hierarchy with relay)
/// inside Figure 3 (capsule containing streamers).
m::Model buildFigureModel() {
    m::Model mod;
    mod.name = "figure23";

    mod.protocols.push_back(
        {"Supervision", {{"modeA", "out"}, {"modeB", "out"}, {"alarm", "in"}}});
    mod.flowTypes.push_back({"Scalar", f::FlowType::real()});
    mod.flowTypes.push_back(
        {"PlantState",
         f::FlowType::record({{"pos", f::FlowType::real()}, {"vel", f::FlowType::real()}})});

    // Sub-streamers of Figure 2.
    m::StreamerClassDecl sub1;
    sub1.name = "SubStreamer1";
    sub1.solver = "RK4";
    sub1.equations = "dx/dt = f(x, u)";
    sub1.ports.push_back({"u", m::PortDecl::Kind::Data, "", false, false, "Scalar", "in"});
    sub1.ports.push_back({"y", m::PortDecl::Kind::Data, "", false, false, "PlantState", "out"});
    mod.streamers.push_back(sub1);

    m::StreamerClassDecl sub2;
    sub2.name = "SubStreamer2";
    sub2.solver = "Euler";
    sub2.ports.push_back({"in", m::PortDecl::Kind::Data, "", false, false, "PlantState", "in"});
    sub2.ports.push_back({"out", m::PortDecl::Kind::Data, "", false, false, "Scalar", "out"});
    mod.streamers.push_back(sub2);

    m::StreamerClassDecl sub3;
    sub3.name = "SubStreamer3";
    sub3.solver = "RK45";
    sub3.ports.push_back({"in", m::PortDecl::Kind::Data, "", false, false, "PlantState", "in"});
    sub3.ports.push_back({"ctl", m::PortDecl::Kind::Signal, "Supervision", true, false, "", ""});
    mod.streamers.push_back(sub3);

    // Top streamer of Figure 2: DPort in, solver, flow + relay wiring.
    m::StreamerClassDecl top;
    top.name = "TopStreamer";
    top.ports.push_back({"u", m::PortDecl::Kind::Data, "", false, false, "Scalar", "in"});
    top.ports.push_back({"y", m::PortDecl::Kind::Data, "", false, false, "Scalar", "out"});
    top.ports.push_back({"sport", m::PortDecl::Kind::Signal, "Supervision", true, false, "", ""});
    top.parts.push_back({"s1", "SubStreamer1", m::PartDecl::Kind::Streamer});
    top.parts.push_back({"s2", "SubStreamer2", m::PartDecl::Kind::Streamer});
    top.parts.push_back({"s3", "SubStreamer3", m::PartDecl::Kind::Streamer});
    top.relays.push_back({"r", "PlantState", 2});
    top.flows.push_back({"u", "s1.u"});        // boundary forward-in
    top.flows.push_back({"s1.y", "r.in"});     // flow into the relay
    top.flows.push_back({"r.out0", "s2.in"});  // two similar flows out
    top.flows.push_back({"r.out1", "s3.in"});
    top.flows.push_back({"s2.out", "y"});      // boundary forward-out
    mod.streamers.push_back(top);

    // Figure 3: a capsule containing the streamer group plus a sub-capsule.
    m::CapsuleClassDecl subCap;
    subCap.name = "SubCapsule";
    subCap.ports.push_back(
        {"sup", m::PortDecl::Kind::Signal, "Supervision", false, false, "", ""});
    subCap.states.push_back({"Observing", "", true});
    mod.capsules.push_back(subCap);

    m::CapsuleClassDecl topCap;
    topCap.name = "TopCapsule";
    topCap.ports.push_back(
        {"sup", m::PortDecl::Kind::Signal, "Supervision", false, false, "", ""});
    topCap.ports.push_back({"d", m::PortDecl::Kind::Data, "", false, true, "Scalar", "in"});
    topCap.parts.push_back({"sub", "SubCapsule", m::PartDecl::Kind::Capsule});
    topCap.parts.push_back({"grp1", "TopStreamer", m::PartDecl::Kind::Streamer});
    topCap.parts.push_back({"grp2", "TopStreamer", m::PartDecl::Kind::Streamer});
    topCap.states.push_back({"ModeA", "", true});
    topCap.states.push_back({"ModeB", "", false});
    topCap.transitions.push_back({"ModeA", "ModeB", "alarm", "", "switch control law"});
    topCap.transitions.push_back({"ModeB", "ModeA", "alarm", "", ""});
    mod.capsules.push_back(topCap);
    mod.topCapsule = "TopCapsule";
    return mod;
}

} // namespace

int main() {
    std::puts("codegen demo: model -> validate -> XML -> C++");
    std::puts("----------------------------------------------");

    // Table 1, as data.
    std::puts("\nTable 1 (UML-RT concept -> extension stereotypes):");
    for (const auto& row : m::table1()) {
        std::printf("  %-14s ->", m::to_string(row.umlrt));
        for (auto s : row.extension) std::printf(" %s", m::to_string(s));
        std::puts("");
    }

    const m::Model mod = buildFigureModel();
    const auto diags = m::Validator().validate(mod);
    std::printf("\nvalidation: %zu diagnostic(s)%s\n", diags.size(),
                m::Validator::ok(diags) ? " — model is well-formed" : "");
    std::fputs(m::Validator::render(diags).c_str(), stdout);
    if (!m::Validator::ok(diags)) return 1;

    const std::string xmlPath = "figure23_model.xml";
    m::saveModel(mod, xmlPath);
    std::printf("\nmodel serialized to %s (%ju bytes)\n", xmlPath.c_str(),
                static_cast<std::uintmax_t>(std::filesystem::file_size(xmlPath)));

    // Round-trip sanity.
    const m::Model back = m::loadModel(xmlPath);
    std::printf("round-trip: %zu protocols, %zu flow types, %zu streamers, %zu capsules\n",
                back.protocols.size(), back.flowTypes.size(), back.streamers.size(),
                back.capsules.size());

    const auto files = cg::CodeGenerator().generate(back);
    const std::string outDir = "generated_figure23";
    cg::writeFiles(files, outDir);
    std::printf("\ngenerated %zu files into %s/:\n", files.size(), outDir.c_str());
    for (const auto& gf : files) {
        std::printf("  %-28s %5zu bytes\n", gf.path.c_str(), gf.content.size());
    }
    std::puts("\ncompile them with: c++ -std=c++20 -fsyntax-only -I <urtx>/src -I "
              "generated_figure23 generated_figure23/main.cpp");
    return 0;
}
