/// \file srv_model_test.cpp
/// The scenario definition language end to end: the structural validator's
/// rule 1-7 rejection table (stable codes + JSON-pointer locations),
/// deterministic diagnostic reports, a parser fuzz loop, the model
/// compiler's bit-identity with the builtin C++ factories, the
/// define_scenario / list_scenarios service responses, and
/// SystemBuilder::validate() dry runs.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/hybrid_system.hpp"
#include "srv/json.hpp"
#include "srv/model/compile.hpp"
#include "srv/model/model.hpp"
#include "srv/model/report.hpp"
#include "srv/model/service.hpp"
#include "srv/scenario.hpp"
#include "srv/scenarios/scenarios.hpp"
#include "urtx.hpp"

namespace model = urtx::srv::model;
namespace json = urtx::srv::json;
namespace srv = urtx::srv;

namespace {

model::Report validateText(const std::string& text) {
    model::Report r;
    model::ModelDoc doc = model::parseModel(text, r);
    if (r.ok()) model::validateModel(doc, r);
    return r;
}

/// The committed example model documents, compiled into the test so it
/// runs from any directory.
std::string readFile(const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in) << "cannot read " << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

std::uint64_t runHash(srv::ScenarioLibrary& lib, const std::string& name,
                      double horizon) {
    const std::unique_ptr<srv::Scenario> sc = lib.build(name, srv::ScenarioParams{});
    sc->system().run(horizon, urtx::sim::ExecutionMode::SingleThread);
    return srv::TraceData::from(sc->system().trace()).hash();
}

} // namespace

// ---------------------------------------------------------------------------
// Rule 1-7 rejection table: one minimal bad document per paper rule, each
// pinned to its stable code and JSON-pointer location.
// ---------------------------------------------------------------------------

struct RejectionCase {
    const char* label;
    const char* doc;
    const char* code;     ///< expected code of the first diagnostic
    const char* location; ///< expected location of the first diagnostic
};

class ModelRejectionTest : public ::testing::TestWithParam<RejectionCase> {};

TEST_P(ModelRejectionTest, StableCodeAndLocation) {
    const RejectionCase& c = GetParam();
    const model::Report r = validateText(c.doc);
    ASSERT_FALSE(r.ok()) << c.label << ": expected a diagnostic";
    EXPECT_EQ(r.diagnostics()[0].code, c.code) << c.label << ": " << r.text();
    EXPECT_EQ(r.diagnostics()[0].location, c.location) << c.label << ": " << r.text();
}

INSTANTIATE_TEST_SUITE_P(
    PaperRules, ModelRejectionTest,
    ::testing::Values(
        RejectionCase{
            "rule1-unknown-port",
            R"({"model": "m", "groups": [{"name": "g"}],
                "components": [{"name": "tanks", "type": "TwoTank", "group": "g"}],
                "flows": [{"from": "tanks.nope", "to": "tanks.h1"}]})",
            "rule1.unknown-port", "/flows/0/from"},
        RejectionCase{
            "rule2-unknown-solver",
            R"({"model": "m", "groups": [{"name": "g", "integrator": "Simpson"}]})",
            "rule2.unknown-solver", "/groups/0/integrator"},
        RejectionCase{
            "rule2-bad-step",
            R"({"model": "m", "groups": [{"name": "g", "dt": 0}]})",
            "rule2.bad-step", "/groups/0/dt"},
        RejectionCase{
            "rule3-flow-type-mismatch",
            R"({"model": "m", "groups": [{"name": "g"}],
                "components": [{"name": "pendulum", "type": "Pendulum", "group": "g"},
                               {"name": "vehicle", "type": "Vehicle", "group": "g"}],
                "flows": [{"from": "pendulum.state", "to": "vehicle.force"}]})",
            "rule3.flow-type-mismatch", "/flows/0"},
        RejectionCase{
            "rule3-bad-endpoints",
            R"({"model": "m", "groups": [{"name": "g"}],
                "components": [{"name": "vehicle", "type": "Vehicle", "group": "g"},
                               {"name": "pendulum", "type": "Pendulum", "group": "g"}],
                "flows": [{"from": "vehicle.force", "to": "pendulum.torque"}]})",
            "rule3.bad-endpoints", "/flows/0/from"},
        RejectionCase{
            "rule4-relay-fanout",
            R"({"model": "m", "groups": [{"name": "g"}],
                "relays": [{"name": "r", "group": "g", "fanout": 1}]})",
            "rule4.relay-fanout", "/relays/0/fanout"},
        RejectionCase{
            "rule4-fanout-requires-relay",
            R"({"model": "m", "groups": [{"name": "g"}],
                "components": [{"name": "vehicle", "type": "Vehicle", "group": "g"},
                               {"name": "p1", "type": "Pendulum", "group": "g"},
                               {"name": "p2", "type": "Pendulum", "group": "g"}],
                "flows": [{"from": "vehicle.speed", "to": "p1.torque"},
                          {"from": "vehicle.speed", "to": "p2.torque"}]})",
            "rule4.fanout-requires-relay", "/flows/1/from"},
        RejectionCase{
            "rule5-capsule-dport",
            R"({"model": "m", "groups": [{"name": "g"}],
                "components": [{"name": "tanks", "type": "TwoTank", "group": "g"},
                               {"name": "sup", "type": "TankSupervisor"}],
                "flows": [{"from": "sup.plant", "to": "tanks.h1"}]})",
            "rule5.capsule-dport", "/flows/0"},
        RejectionCase{
            "rule6-capsule-in-streamer",
            R"({"model": "m", "groups": [{"name": "g"}],
                "components": [{"name": "sup", "type": "TankSupervisor", "group": "g"}]})",
            "rule6.capsule-in-streamer", "/components/0/group"},
        RejectionCase{
            "rule7-ungrouped-streamer",
            R"({"model": "m",
                "components": [{"name": "tanks", "type": "TwoTank"}]})",
            "rule7.ungrouped-streamer", "/components/0"},
        RejectionCase{
            "rule7-ungrouped-relay",
            R"({"model": "m", "relays": [{"name": "r"}]})",
            "rule7.ungrouped-streamer", "/relays/0"}),
    [](const ::testing::TestParamInfo<RejectionCase>& info) {
        std::string n = info.param.label;
        for (char& ch : n) {
            if (ch == '-') ch = '_';
        }
        return n;
    });

// ---------------------------------------------------------------------------
// Report determinism and shape
// ---------------------------------------------------------------------------

TEST(ModelReportTest, ByteIdenticalAcrossRuns) {
    // Many independent errors in one document: the report-sink design must
    // order them deterministically (document order), so two validations
    // render byte-identical reports.
    const char* doc =
        R"({"model": "m", "groups": [{"name": "g", "integrator": "Simpson", "dt": -1}],
            "components": [{"name": "a", "type": "NoSuchType", "group": "g"},
                           {"name": "b", "type": "TwoTank"}],
            "relays": [{"name": "r", "group": "g", "fanout": 0}],
            "flows": [{"from": "a.x", "to": "b.y"}],
            "traces": [{"channel": "t", "probe": "zz.q"}]})";
    const model::Report first = validateText(doc);
    const model::Report second = validateText(doc);
    ASSERT_FALSE(first.ok());
    EXPECT_GE(first.size(), 5u);
    EXPECT_EQ(first.toJson(), second.toJson());
    EXPECT_EQ(first.text(), second.text());

    // Every diagnostic is (code, location, message) with a JSON-pointer
    // location rooted at "/".
    for (const model::Diagnostic& d : first.diagnostics()) {
        EXPECT_FALSE(d.code.empty());
        EXPECT_FALSE(d.message.empty());
        ASSERT_FALSE(d.location.empty());
        EXPECT_EQ(d.location[0], '/') << d.location;
    }
}

TEST(ModelReportTest, ValidDocumentProducesEmptyReport) {
    const model::Report r = validateText(
        R"({"model": "ok", "groups": [{"name": "g", "dt": 0.05}],
            "components": [{"name": "tanks", "type": "TwoTank", "group": "g"}],
            "traces": [{"channel": "h1", "probe": "tanks.h1"}]})");
    EXPECT_TRUE(r.ok()) << r.text();
    EXPECT_EQ(r.toJson(), "[]");
}

// ---------------------------------------------------------------------------
// Parser fuzz loop: mutations of a valid document must never crash —
// every outcome is either a parsed document or a clean diagnostic.
// ---------------------------------------------------------------------------

TEST(ModelFuzzTest, MutatedDocumentsNeverCrash) {
    const std::string base = readFile(std::string(URTX_MODELS_DIR) + "/tank.model.json");
    ASSERT_FALSE(base.empty());

    const auto feed = [](const std::string& text) {
        model::Report r;
        model::ModelDoc doc = model::parseModel(text, r);
        if (r.ok()) model::validateModel(doc, r);
        // Either outcome is fine; it just must not crash or hang.
        (void)doc;
    };

    // Truncations at every prefix length (stride keeps the loop fast).
    for (std::size_t n = 0; n < base.size(); n += 7) feed(base.substr(0, n));

    // Point mutations: structural characters dropped in at every position.
    const char kBytes[] = {'{', '}', '[', ']', '"', ':', ',', 'x', '0', '\\', '\n'};
    for (std::size_t i = 0; i < base.size(); i += 11) {
        for (const char b : kBytes) {
            std::string mutated = base;
            mutated[i] = b;
            feed(mutated);
        }
    }

    // Deletions of short spans.
    for (std::size_t i = 0; i + 13 < base.size(); i += 13) {
        std::string mutated = base;
        mutated.erase(i, 5);
        feed(mutated);
    }
    SUCCEED();
}

// ---------------------------------------------------------------------------
// Model compiler bit-identity with the builtin C++ factories
// ---------------------------------------------------------------------------

TEST(ModelCompileTest, TankModelMatchesBuiltinFactoryBitForBit) {
    srv::ScenarioLibrary lib;
    urtx::srv::scenarios::registerBuiltins(lib);
    model::Report r;
    model::ModelDoc doc =
        model::parseModel(readFile(std::string(URTX_MODELS_DIR) + "/tank.model.json"), r);
    if (r.ok()) model::validateModel(doc, r);
    ASSERT_TRUE(r.ok()) << r.text();
    model::registerModel(lib, std::make_shared<const model::ModelDoc>(std::move(doc)));

    EXPECT_EQ(runHash(lib, "tank", 40.0), runHash(lib, "tank-model", 40.0))
        << "uploaded tank model diverged from the builtin factory";
}

TEST(ModelCompileTest, PendulumModelMatchesBuiltinFactoryBitForBit) {
    srv::ScenarioLibrary lib;
    urtx::srv::scenarios::registerBuiltins(lib);
    model::Report r;
    model::ModelDoc doc = model::parseModel(
        readFile(std::string(URTX_MODELS_DIR) + "/pendulum.model.json"), r);
    if (r.ok()) model::validateModel(doc, r);
    ASSERT_TRUE(r.ok()) << r.text();
    model::registerModel(lib, std::make_shared<const model::ModelDoc>(std::move(doc)));

    EXPECT_EQ(runHash(lib, "pendulum", 5.0), runHash(lib, "pendulum-model", 5.0))
        << "uploaded pendulum model diverged from the builtin factory";
}

TEST(ModelCompileTest, DeclaredParamBoundsAreEnforcedAtBuild) {
    srv::ScenarioLibrary lib;
    model::Report r;
    model::ModelDoc doc =
        model::parseModel(readFile(std::string(URTX_MODELS_DIR) + "/tank.model.json"), r);
    if (r.ok()) model::validateModel(doc, r);
    ASSERT_TRUE(r.ok()) << r.text();
    model::registerModel(lib, std::make_shared<const model::ModelDoc>(std::move(doc)));

    srv::ScenarioParams bad;
    bad.set("valve", 2.0); // declared max is 1
    EXPECT_THROW(lib.build("tank-model", bad), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Service layer: define_scenario / list_scenarios responses
// ---------------------------------------------------------------------------

TEST(ModelServiceTest, DefineScenarioRejectsWithUnifiedErrorSchema) {
    srv::ScenarioLibrary lib;
    const auto verb = json::parse(
        R"({"op": "define_scenario",
            "model": {"model": "bad", "groups": [{"name": "g", "dt": -1}]}})");
    ASSERT_TRUE(verb.has_value());
    const model::DefineOutcome out = model::defineScenario(lib, *verb);
    EXPECT_FALSE(out.ok);
    const auto rec = json::parse(out.response);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->strOr("status", ""), "error");
    const json::Value* err = rec->find("error");
    ASSERT_NE(err, nullptr);
    EXPECT_EQ(err->strOr("code", ""), "model.invalid");
    const json::Value* ctx = err->find("context");
    ASSERT_NE(ctx, nullptr);
    const json::Value* diags = ctx->find("diagnostics");
    ASSERT_NE(diags, nullptr);
    ASSERT_TRUE(diags->isArray());
    EXPECT_EQ(diags->array[0].strOr("code", ""), "rule2.bad-step");
    // The deprecated flat string rides along for one release.
    EXPECT_NE(rec->strOr("error_string", ""), "");
    EXPECT_FALSE(lib.has("bad"));
}

TEST(ModelServiceTest, ListScenariosCarriesSchemas) {
    srv::ScenarioLibrary lib;
    urtx::srv::scenarios::registerBuiltins(lib);
    const auto rec = json::parse(model::listScenariosJson(lib));
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->strOr("status", ""), "ok");
    const json::Value* arr = rec->find("scenarios");
    ASSERT_NE(arr, nullptr);
    ASSERT_TRUE(arr->isArray());
    ASSERT_GE(arr->array.size(), 4u);
    bool sawTank = false;
    for (const json::Value& s : arr->array) {
        if (s.strOr("name", "") != "tank") continue;
        sawTank = true;
        const json::Value* schema = s.find("schema");
        ASSERT_NE(schema, nullptr);
        const json::Value* nums = schema->find("nums");
        ASSERT_NE(nums, nullptr);
        const json::Value* dt = nums->find("dt");
        ASSERT_NE(dt, nullptr);
        EXPECT_DOUBLE_EQ(dt->numOr("default", 0.0), 0.05);
        const json::Value* valve = nums->find("valve");
        ASSERT_NE(valve, nullptr);
        EXPECT_DOUBLE_EQ(valve->numOr("min", -1.0), 0.0);
        EXPECT_DOUBLE_EQ(valve->numOr("max", -1.0), 1.0);
    }
    EXPECT_TRUE(sawTank);
}

// ---------------------------------------------------------------------------
// SystemBuilder::validate(): dry-run diagnostics instead of mid-build throws
// ---------------------------------------------------------------------------

TEST(SystemBuilderValidateTest, CollectsIssuesInsteadOfThrowing) {
    urtx::flow::Streamer group("g");
    urtx::flow::Streamer a("a", &group);
    urtx::flow::Streamer b("b", &group);
    urtx::flow::DPort out1(a, "out1", urtx::flow::DPortDir::Out,
                           urtx::flow::FlowType::real());
    urtx::flow::DPort out2(b, "out2", urtx::flow::DPortDir::Out,
                           urtx::flow::FlowType::real());

    urtx::SystemBuilder builder;
    builder.deferErrors();
    builder.flow(out1, out2); // illegal: out -> out
    builder.streamer(group, "NoSuchSolver", 0.01);
    const urtx::SystemBuilder::BuildReport& issues = builder.validate();
    ASSERT_EQ(issues.size(), 2u);
    EXPECT_EQ(issues[0].code, "flow.illegal");
    EXPECT_EQ(issues[1].code, "solver.unknown");
}

TEST(SystemBuilderValidateTest, CleanBuildReportsNoIssues) {
    urtx::flow::Streamer group("g");
    urtx::flow::Streamer a("a", &group);
    urtx::flow::Streamer b("b", &group);
    urtx::flow::DPort src(a, "src", urtx::flow::DPortDir::Out,
                          urtx::flow::FlowType::real());
    urtx::flow::DPort dst(b, "dst", urtx::flow::DPortDir::In,
                          urtx::flow::FlowType::real());

    urtx::SystemBuilder builder;
    builder.deferErrors();
    builder.flow(src, dst);
    builder.streamer(group, "RK45", 0.01);
    EXPECT_TRUE(builder.validate().empty());
}
