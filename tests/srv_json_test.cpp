/// \file srv_json_test.cpp
/// The serving layer's JSON document model: parser, accessors, emit
/// helpers.

#include "srv/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace json = urtx::srv::json;

TEST(SrvJson, ParsesScalars) {
    EXPECT_TRUE(json::parse("null")->isNull());
    EXPECT_TRUE(json::parse("true")->boolean);
    EXPECT_FALSE(json::parse("false")->boolean);
    EXPECT_DOUBLE_EQ(json::parse("-12.5e2")->number, -1250.0);
    EXPECT_EQ(json::parse("\"hi\"")->string, "hi");
}

TEST(SrvJson, ParsesNestedDocument) {
    const auto doc = json::parse(R"({
        "jobs": [{"scenario": "tank", "horizon": 5.0, "deep": {"a": [1, 2, 3]}}],
        "workers": 4
    })");
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(doc->isObject());
    EXPECT_DOUBLE_EQ(doc->numOr("workers", 0), 4.0);
    const json::Value* jobs = doc->find("jobs");
    ASSERT_NE(jobs, nullptr);
    ASSERT_TRUE(jobs->isArray());
    ASSERT_EQ(jobs->array.size(), 1u);
    EXPECT_EQ(jobs->array[0].strOr("scenario", ""), "tank");
    EXPECT_DOUBLE_EQ(jobs->array[0].numOr("horizon", 0), 5.0);
}

TEST(SrvJson, ObjectPreservesMemberOrder) {
    const auto doc = json::parse(R"({"z": 1, "a": 2, "m": 3})");
    ASSERT_TRUE(doc.has_value());
    ASSERT_EQ(doc->object.size(), 3u);
    EXPECT_EQ(doc->object[0].first, "z");
    EXPECT_EQ(doc->object[1].first, "a");
    EXPECT_EQ(doc->object[2].first, "m");
}

TEST(SrvJson, StringEscapes) {
    const auto doc = json::parse(R"("line\nquote\"tab\tuA")");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->string, "line\nquote\"tab\tuA");
}

TEST(SrvJson, UnicodeEscapeEncodesUtf8) {
    const auto doc = json::parse(R"("é€")"); // é €
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->string, "\xc3\xa9\xe2\x82\xac");
}

TEST(SrvJson, RejectsMalformedInput) {
    std::string err;
    EXPECT_FALSE(json::parse("{", &err).has_value());
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(json::parse("{\"a\" 1}").has_value());
    EXPECT_FALSE(json::parse("[1, 2,]").has_value());
    EXPECT_FALSE(json::parse("tru").has_value());
    EXPECT_FALSE(json::parse("1 2").has_value());
    EXPECT_FALSE(json::parse("\"unterminated").has_value());
    EXPECT_FALSE(json::parse("").has_value());
}

TEST(SrvJson, RejectsNonFiniteNumbers) {
    EXPECT_FALSE(json::parse("1e999").has_value());
    EXPECT_FALSE(json::parse("nan").has_value());
}

TEST(SrvJson, RejectsPathologicalNesting) {
    std::string deep;
    for (int i = 0; i < 100; ++i) deep += "[";
    for (int i = 0; i < 100; ++i) deep += "]";
    std::string err;
    EXPECT_FALSE(json::parse(deep, &err).has_value());
    EXPECT_NE(err.find("nesting"), std::string::npos);
}

TEST(SrvJson, AccessorsFallBack) {
    const auto doc = json::parse(R"({"n": 1, "s": "x", "b": true})");
    ASSERT_TRUE(doc.has_value());
    EXPECT_DOUBLE_EQ(doc->numOr("missing", 7.5), 7.5);
    EXPECT_DOUBLE_EQ(doc->numOr("s", 7.5), 7.5); // wrong type -> fallback
    EXPECT_DOUBLE_EQ(doc->numOr("b", 0.0), 1.0); // bools coerce for numOr
    EXPECT_EQ(doc->strOr("missing", "d"), "d");
    EXPECT_TRUE(doc->boolOr("b", false));
    EXPECT_FALSE(doc->boolOr("n", false)); // numbers do not coerce to bool
}

TEST(SrvJson, EscapeHelper) {
    EXPECT_EQ(json::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(json::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(SrvJson, NumberHelperRoundTrips) {
    const std::string s = json::number(0.069369678);
    EXPECT_DOUBLE_EQ(json::parse(s)->number, 0.069369678);
    // Non-finite values clamp to something JSON can carry.
    EXPECT_TRUE(json::parse(json::number(1.0 / 0.0)).has_value());
    EXPECT_TRUE(json::parse(json::number(-1.0 / 0.0)).has_value());
}

TEST(SrvJson, SurrogatePairDecodesToAstralUtf8) {
    const auto doc = json::parse("\"\\uD83D\\uDE00\""); // U+1F600
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->string, "\xF0\x9F\x98\x80");
}

TEST(SrvJson, LoneSurrogatesAreStructuredErrors) {
    std::string err;
    EXPECT_FALSE(json::parse(R"("\uD83D")", &err).has_value()); // high alone
    EXPECT_NE(err.find("surrogate"), std::string::npos);
    EXPECT_FALSE(json::parse(R"("\uDE00")").has_value());      // low alone
    EXPECT_FALSE(json::parse(R"("\uD83Dxx")").has_value());    // high + junk
    EXPECT_FALSE(json::parse(R"("\uD83DA")").has_value()); // high + BMP
}

TEST(SrvJson, RejectsTrailingGarbage) {
    std::string err;
    EXPECT_FALSE(json::parse("{\"a\": 1} extra", &err).has_value());
    EXPECT_NE(err.find("trailing"), std::string::npos);
    EXPECT_FALSE(json::parse("[1, 2]]").has_value());
    EXPECT_FALSE(json::parse("null null").has_value());
    EXPECT_FALSE(json::parse("42garbage").has_value());
    // Trailing whitespace is not garbage.
    EXPECT_TRUE(json::parse("{\"a\": 1}  \n\t ").has_value());
}

TEST(SrvJson, StringifyEmitsParseableDocuments) {
    json::Value obj;
    obj.kind = json::Value::Kind::Object;
    obj.object.emplace_back("name", json::makeString("tank\n\"x\""));
    obj.object.emplace_back("horizon", json::makeNumber(12.5));
    obj.object.emplace_back("strict", json::makeBool(true));
    json::Value arr;
    arr.kind = json::Value::Kind::Array;
    arr.array.push_back(json::makeNumber(1));
    arr.array.push_back(json::Value{}); // null
    obj.object.emplace_back("xs", std::move(arr));

    const std::string text = json::stringify(obj);
    const auto back = json::parse(text);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->strOr("name", ""), "tank\n\"x\"");
    EXPECT_DOUBLE_EQ(back->numOr("horizon", 0), 12.5);
    EXPECT_TRUE(back->boolOr("strict", false));
    ASSERT_EQ(back->find("xs")->array.size(), 2u);
    EXPECT_TRUE(back->find("xs")->array[1].isNull());
}

/// Fuzz-style round-trip: pseudo-random documents (deterministic LCG)
/// must survive stringify -> parse -> stringify bit-identically.
namespace {

std::uint32_t lcg(std::uint32_t& s) { return s = s * 1664525u + 1013904223u; }

json::Value randomValue(std::uint32_t& s, int depth) {
    json::Value v;
    switch (lcg(s) % (depth > 3 ? 4u : 6u)) {
        case 0: break; // null
        case 1:
            v = json::makeBool(lcg(s) & 1);
            break;
        case 2:
            v = json::makeNumber(static_cast<double>(static_cast<std::int32_t>(lcg(s))) /
                                 (1.0 + (lcg(s) % 1000)));
            break;
        case 3: {
            std::string str;
            const std::uint32_t n = lcg(s) % 12;
            for (std::uint32_t i = 0; i < n; ++i) {
                // Bytes across the printable/control/quote/backslash space,
                // plus multi-byte UTF-8 and astral characters via escapes.
                switch (lcg(s) % 5) {
                    case 0: str.push_back(static_cast<char>('a' + (lcg(s) % 26))); break;
                    case 1: str.push_back(static_cast<char>(lcg(s) % 0x20)); break;
                    case 2: str += "\"\\"; break;
                    case 3: str += "\xc3\xa9"; break;          // é
                    case 4: str += "\xF0\x9F\x98\x80"; break;  // 😀
                }
            }
            v = json::makeString(std::move(str));
            break;
        }
        case 4: {
            v.kind = json::Value::Kind::Array;
            const std::uint32_t n = lcg(s) % 4;
            for (std::uint32_t i = 0; i < n; ++i) {
                v.array.push_back(randomValue(s, depth + 1));
            }
            break;
        }
        case 5: {
            v.kind = json::Value::Kind::Object;
            const std::uint32_t n = lcg(s) % 4;
            for (std::uint32_t i = 0; i < n; ++i) {
                v.object.emplace_back("k" + std::to_string(i), randomValue(s, depth + 1));
            }
            break;
        }
    }
    return v;
}

} // namespace

TEST(SrvJson, FuzzRoundTripIsStable) {
    std::uint32_t seed = 0xC0FFEE;
    for (int i = 0; i < 500; ++i) {
        const json::Value v = randomValue(seed, 0);
        const std::string once = json::stringify(v);
        std::string err;
        const auto back = json::parse(once, &err);
        ASSERT_TRUE(back.has_value()) << "iteration " << i << ": " << err << "\n" << once;
        EXPECT_EQ(json::stringify(*back), once) << "iteration " << i;
    }
}

TEST(SrvJson, EscapedSurrogatePairRoundTrips) {
    // An astral char written as escapes must parse to the same string as
    // the raw UTF-8, and re-stringify to a parseable document.
    const auto a = json::parse("\"\\uD83D\\uDE00!\"");
    const auto b = json::parse("\"\xF0\x9F\x98\x80!\"");
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->string, b->string);
    const auto again = json::parse(json::stringify(*a));
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->string, a->string);
}
