/// \file srv_json_test.cpp
/// The serving layer's JSON document model: parser, accessors, emit
/// helpers.

#include "srv/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace json = urtx::srv::json;

TEST(SrvJson, ParsesScalars) {
    EXPECT_TRUE(json::parse("null")->isNull());
    EXPECT_TRUE(json::parse("true")->boolean);
    EXPECT_FALSE(json::parse("false")->boolean);
    EXPECT_DOUBLE_EQ(json::parse("-12.5e2")->number, -1250.0);
    EXPECT_EQ(json::parse("\"hi\"")->string, "hi");
}

TEST(SrvJson, ParsesNestedDocument) {
    const auto doc = json::parse(R"({
        "jobs": [{"scenario": "tank", "horizon": 5.0, "deep": {"a": [1, 2, 3]}}],
        "workers": 4
    })");
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(doc->isObject());
    EXPECT_DOUBLE_EQ(doc->numOr("workers", 0), 4.0);
    const json::Value* jobs = doc->find("jobs");
    ASSERT_NE(jobs, nullptr);
    ASSERT_TRUE(jobs->isArray());
    ASSERT_EQ(jobs->array.size(), 1u);
    EXPECT_EQ(jobs->array[0].strOr("scenario", ""), "tank");
    EXPECT_DOUBLE_EQ(jobs->array[0].numOr("horizon", 0), 5.0);
}

TEST(SrvJson, ObjectPreservesMemberOrder) {
    const auto doc = json::parse(R"({"z": 1, "a": 2, "m": 3})");
    ASSERT_TRUE(doc.has_value());
    ASSERT_EQ(doc->object.size(), 3u);
    EXPECT_EQ(doc->object[0].first, "z");
    EXPECT_EQ(doc->object[1].first, "a");
    EXPECT_EQ(doc->object[2].first, "m");
}

TEST(SrvJson, StringEscapes) {
    const auto doc = json::parse(R"("line\nquote\"tab\tuA")");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->string, "line\nquote\"tab\tuA");
}

TEST(SrvJson, UnicodeEscapeEncodesUtf8) {
    const auto doc = json::parse(R"("é€")"); // é €
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->string, "\xc3\xa9\xe2\x82\xac");
}

TEST(SrvJson, RejectsMalformedInput) {
    std::string err;
    EXPECT_FALSE(json::parse("{", &err).has_value());
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(json::parse("{\"a\" 1}").has_value());
    EXPECT_FALSE(json::parse("[1, 2,]").has_value());
    EXPECT_FALSE(json::parse("tru").has_value());
    EXPECT_FALSE(json::parse("1 2").has_value());
    EXPECT_FALSE(json::parse("\"unterminated").has_value());
    EXPECT_FALSE(json::parse("").has_value());
}

TEST(SrvJson, RejectsNonFiniteNumbers) {
    EXPECT_FALSE(json::parse("1e999").has_value());
    EXPECT_FALSE(json::parse("nan").has_value());
}

TEST(SrvJson, RejectsPathologicalNesting) {
    std::string deep;
    for (int i = 0; i < 100; ++i) deep += "[";
    for (int i = 0; i < 100; ++i) deep += "]";
    std::string err;
    EXPECT_FALSE(json::parse(deep, &err).has_value());
    EXPECT_NE(err.find("nesting"), std::string::npos);
}

TEST(SrvJson, AccessorsFallBack) {
    const auto doc = json::parse(R"({"n": 1, "s": "x", "b": true})");
    ASSERT_TRUE(doc.has_value());
    EXPECT_DOUBLE_EQ(doc->numOr("missing", 7.5), 7.5);
    EXPECT_DOUBLE_EQ(doc->numOr("s", 7.5), 7.5); // wrong type -> fallback
    EXPECT_DOUBLE_EQ(doc->numOr("b", 0.0), 1.0); // bools coerce for numOr
    EXPECT_EQ(doc->strOr("missing", "d"), "d");
    EXPECT_TRUE(doc->boolOr("b", false));
    EXPECT_FALSE(doc->boolOr("n", false)); // numbers do not coerce to bool
}

TEST(SrvJson, EscapeHelper) {
    EXPECT_EQ(json::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(json::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(SrvJson, NumberHelperRoundTrips) {
    const std::string s = json::number(0.069369678);
    EXPECT_DOUBLE_EQ(json::parse(s)->number, 0.069369678);
    // Non-finite values clamp to something JSON can carry.
    EXPECT_TRUE(json::parse(json::number(1.0 / 0.0)).has_value());
    EXPECT_TRUE(json::parse(json::number(-1.0 / 0.0)).has_value());
}
