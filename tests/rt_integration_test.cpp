#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rt/rt.hpp"

namespace rt = urtx::rt;

namespace {

rt::Protocol& handshake() {
    static rt::Protocol p = [] {
        rt::Protocol q{"Handshake"};
        q.out("syn").in("synAck").out("ack").in("data").out("close");
        return q;
    }();
    return p;
}

/// Client side of a three-way handshake with a hierarchical machine.
class Client : public rt::Capsule {
public:
    explicit Client(std::string n) : rt::Capsule(std::move(n)), port(*this, "p", handshake(), false) {
        auto& closed = machine().state("Closed");
        auto& opening = machine().state("Opening");
        auto& open = machine().state("Open");
        auto& receiving = machine().state("Receiving", &open);
        (void)receiving;
        machine().initial(closed);
        machine().transition(closed, opening).on("t_connect").act([this](const rt::Message&) {
            port.send("syn");
        });
        machine().transition(opening, open).on(port, "synAck").act([this](const rt::Message&) {
            port.send("ack");
        });
        machine().internal(open).on(port, "data").act([this](const rt::Message& m) {
            received.push_back(m.dataOr<int>(-1));
        });
        machine().transition(open, closed).on("t_close").act([this](const rt::Message&) {
            port.send("close");
        });
    }
    rt::Port port;
    std::vector<int> received;

    void connect() { deliver(rt::Message(rt::signal("t_connect"))); }
    void close() { deliver(rt::Message(rt::signal("t_close"))); }
};

/// Server side: answers syn, streams N data messages after ack.
class Server : public rt::Capsule {
public:
    explicit Server(std::string n, int burst)
        : rt::Capsule(std::move(n)), port(*this, "p", handshake(), true), burst_(burst) {
        auto& idle = machine().state("Idle");
        auto& established = machine().state("Established");
        machine().initial(idle);
        machine().transition(idle, established).on(port, "syn").act([this](const rt::Message&) {
            port.send("synAck");
        });
        machine().internal(established).on(port, "ack").act([this](const rt::Message&) {
            for (int i = 0; i < burst_; ++i) port.send("data", i);
        });
        machine().transition(established, idle).on(port, "close");
    }
    rt::Port port;

private:
    int burst_;
};

} // namespace

TEST(RtIntegration, ThreeWayHandshakeAndBurst) {
    rt::Controller ctl{"net"};
    Client client{"client"};
    Server server{"server", 5};
    rt::connect(client.port, server.port);
    ctl.attach(client);
    ctl.attach(server);
    ctl.initializeAll();

    client.connect();
    ctl.dispatchAll();
    EXPECT_EQ(client.machine().currentPath(), "Open/Receiving");
    EXPECT_EQ(client.received, (std::vector<int>{0, 1, 2, 3, 4}));

    client.close();
    ctl.dispatchAll();
    EXPECT_EQ(client.machine().currentPath(), "Closed");
    EXPECT_EQ(server.machine().currentPath(), "Idle");
}

TEST(RtIntegration, ReconnectAfterClose) {
    rt::Controller ctl{"net"};
    Client client{"client"};
    Server server{"server", 2};
    rt::connect(client.port, server.port);
    ctl.attach(client);
    ctl.attach(server);
    ctl.initializeAll();

    for (int round = 0; round < 3; ++round) {
        client.connect();
        ctl.dispatchAll();
        client.close();
        ctl.dispatchAll();
    }
    EXPECT_EQ(client.received.size(), 6u) << "two data per round, three rounds";
}

TEST(RtIntegration, DynamicIncarnationJoinsRunningSystem) {
    // A hub capsule spawns workers at runtime via the frame service and
    // wires them with dynamically created ports.
    static rt::Protocol workProto = [] {
        rt::Protocol q{"Work"};
        q.out("job").in("done");
        return q;
    }();

    struct Worker : rt::Capsule {
        Worker(std::string n, rt::Capsule* parent)
            : rt::Capsule(std::move(n), parent), port(*this, "w", workProto, true) {}
        rt::Port port;
        int jobs = 0;

    protected:
        void onMessage(const rt::Message& m) override {
            if (m.signal == rt::signal("job")) {
                ++jobs;
                port.send("done");
            }
        }
    };

    struct Hub : rt::Capsule {
        explicit Hub(std::string n) : rt::Capsule(std::move(n)) {}
        std::vector<std::unique_ptr<rt::Port>> plugs;
        int done = 0;

        Worker& spawn() {
            auto& w = rt::FrameService::incarnate<Worker>(*this, "w" + std::to_string(plugs.size()));
            plugs.push_back(
                std::make_unique<rt::Port>(*this, "plug" + std::to_string(plugs.size()),
                                           workProto, false));
            rt::connect(*plugs.back(), w.port);
            return w;
        }

    protected:
        void onMessage(const rt::Message& m) override {
            if (m.signal == rt::signal("done")) ++done;
        }
    };

    rt::Controller ctl{"main"};
    Hub hub{"hub"};
    ctl.attach(hub);
    ctl.initializeAll();

    auto& w0 = hub.spawn();
    auto& w1 = hub.spawn();
    // Incarnated children must share the controller context.
    EXPECT_EQ(w0.context(), &ctl);

    hub.plugs[0]->send("job");
    hub.plugs[1]->send("job");
    hub.plugs[1]->send("job");
    ctl.dispatchAll();
    EXPECT_EQ(w0.jobs, 1);
    EXPECT_EQ(w1.jobs, 2);
    EXPECT_EQ(hub.done, 3);

    // Destroy one worker; its port unwires, sends to it now fail.
    EXPECT_TRUE(rt::FrameService::destroy(w1));
    EXPECT_FALSE(hub.plugs[1]->send("job"));
    EXPECT_TRUE(hub.plugs[0]->send("job"));
    ctl.dispatchAll();
    EXPECT_EQ(hub.done, 4);
}

TEST(RtIntegration, MessagesThroughTwoCompositeBoundaries) {
    static rt::Protocol deepProto = [] {
        rt::Protocol q{"Deep"};
        q.out("probe").in("echo");
        return q;
    }();

    struct Leaf : rt::Capsule {
        Leaf(std::string n, rt::Capsule* parent)
            : rt::Capsule(std::move(n), parent), port(*this, "p", deepProto, true) {}
        rt::Port port;
        int probes = 0;

    protected:
        void onMessage(const rt::Message& m) override {
            if (m.signal == rt::signal("probe")) {
                ++probes;
                port.send("echo");
            }
        }
    };

    // system > subsystem > leaf, with relay ports on each boundary.
    rt::Capsule system{"system"};
    rt::Capsule subsystem{"subsystem", &system};
    Leaf leaf{"leaf", &subsystem};

    rt::Port sysRelay(system, "r", deepProto, true, rt::PortKind::Relay);
    rt::Port subRelay(subsystem, "r", deepProto, true, rt::PortKind::Relay);

    rt::Capsule outside{"outside"};
    rt::Port probe(outside, "probe", deepProto, false);

    rt::connect(probe, sysRelay);
    rt::connect(sysRelay, subRelay);
    rt::connect(subRelay, leaf.port);

    EXPECT_TRUE(probe.send("probe"));
    EXPECT_EQ(leaf.probes, 1);
    // The echo resolves back out to the outside capsule.
    EXPECT_EQ(outside.delivered(), 1u);
}

TEST(RtIntegration, PriorityPreemptsAcrossCapsules) {
    static rt::Protocol prioProto = [] {
        rt::Protocol q{"Prio"};
        q.inout("evt");
        return q;
    }();
    struct Sink : rt::Capsule {
        Sink(std::string n) : rt::Capsule(std::move(n)), port(*this, "p", prioProto, true) {}
        rt::Port port;
        std::vector<std::string> order;

    protected:
        void onMessage(const rt::Message& m) override {
            order.push_back(to_string(m.priority));
        }
    };
    rt::Controller ctl{"main"};
    rt::Capsule sender{"sender"};
    rt::Port out(sender, "p", prioProto, false);
    Sink sink{"sink"};
    rt::connect(out, sink.port);
    ctl.attach(sink);

    out.send("evt", {}, rt::Priority::Low);
    out.send("evt", {}, rt::Priority::Panic);
    out.send("evt", {}, rt::Priority::General);
    ctl.dispatchAll();
    ASSERT_EQ(sink.order.size(), 3u);
    EXPECT_EQ(sink.order[0], "Panic");
    EXPECT_EQ(sink.order[1], "General");
    EXPECT_EQ(sink.order[2], "Low");
}

// ------------------------------ replicated ports ----------------------------

namespace {
rt::Protocol& fanProto() {
    static rt::Protocol p = [] {
        rt::Protocol q{"Fan"};
        q.out("cmd").in("status");
        return q;
    }();
    return p;
}
} // namespace

TEST(PortArray, BroadcastReachesAllWiredClients) {
    struct Client : rt::Capsule {
        Client(std::string n) : rt::Capsule(std::move(n)), port(*this, "p", fanProto(), true) {}
        rt::Port port;
        int cmds = 0;

    protected:
        void onMessage(const rt::Message& m) override {
            if (m.signal == rt::signal("cmd")) ++cmds;
        }
    };
    rt::Capsule hub{"hub"};
    rt::PortArray fan(hub, "fan", fanProto(), 4, false);
    EXPECT_EQ(fan.size(), 4u);

    Client c0{"c0"}, c1{"c1"}, c2{"c2"};
    rt::connect(fan[0], c0.port);
    rt::connect(fan[1], c1.port);
    rt::connect(fan[2], c2.port);
    EXPECT_EQ(fan.wiredCount(), 3u);
    EXPECT_EQ(fan.broadcast("cmd"), 3u) << "unwired replication must not count";
    EXPECT_EQ(c0.cmds + c1.cmds + c2.cmds, 3);
}

TEST(PortArray, IndexOfIdentifiesReceivingReplication) {
    struct Hub : rt::Capsule {
        Hub() : rt::Capsule("hub"), fan(*this, "fan", fanProto(), 3, false) {}
        rt::PortArray fan;
        std::vector<std::size_t> from;

    protected:
        void onMessage(const rt::Message& m) override {
            if (auto idx = fan.indexOf(m.dest)) from.push_back(*idx);
        }
    } hub;
    struct Client : rt::Capsule {
        Client(std::string n) : rt::Capsule(std::move(n)), port(*this, "p", fanProto(), true) {}
        rt::Port port;
    } a{"a"}, b{"b"};
    rt::connect(hub.fan[0], a.port);
    rt::connect(hub.fan[2], b.port);

    b.port.send("status");
    a.port.send("status");
    ASSERT_EQ(hub.from.size(), 2u);
    EXPECT_EQ(hub.from[0], 2u);
    EXPECT_EQ(hub.from[1], 0u);
    EXPECT_FALSE(hub.fan.indexOf(&a.port).has_value());
}

TEST(PortArray, FreeSlotFindsUnwired) {
    rt::Capsule hub{"hub"};
    rt::PortArray fan(hub, "fan", fanProto(), 2, false);
    struct Client : rt::Capsule {
        Client(std::string n) : rt::Capsule(std::move(n)), port(*this, "p", fanProto(), true) {}
        rt::Port port;
    } a{"a"}, b{"b"};
    EXPECT_EQ(fan.freeSlot(), &fan[0]);
    rt::connect(*fan.freeSlot(), a.port);
    EXPECT_EQ(fan.freeSlot(), &fan[1]);
    rt::connect(*fan.freeSlot(), b.port);
    EXPECT_EQ(fan.freeSlot(), nullptr);
    EXPECT_THROW(rt::PortArray(hub, "bad", fanProto(), 0), std::invalid_argument);
}
