#include <gtest/gtest.h>

#include <cmath>

#include "control/control.hpp"
#include "flow/relay.hpp"
#include "flow/solver_runner.hpp"

namespace f = urtx::flow;
namespace c = urtx::control;
namespace s = urtx::solver;

namespace {

struct Plain : f::Streamer {
    using f::Streamer::Streamer;
};

} // namespace

TEST(DiscreteTf, ParameterValidation) {
    Plain top{"top"};
    EXPECT_THROW(c::DiscreteTransferFunction("bad", &top, {1.0}, {1.0}, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(c::DiscretePid("bad2", &top, 1, 0, 0, -1.0), std::invalid_argument);
    EXPECT_THROW(c::DiscretePid("bad3", &top, 1, 0, 0, 0.1).withLimits(2, 1),
                 std::invalid_argument);
}

TEST(DiscreteTf, UnitGainPassesSampledInput) {
    Plain top{"top"};
    c::Ramp u("u", &top, 1.0);
    c::DiscreteTransferFunction tf("tf", &top, {1.0}, {1.0}, 0.1);
    c::Recorder rec("rec", &top);
    f::flow(u.out(), tf.in());
    f::flow(tf.out(), rec.in());

    f::SolverRunner runner(top, s::makeIntegrator("Euler"), 0.05);
    runner.initialize(0.0);
    runner.advanceTo(1.0);
    // Output is the ramp sampled at 0.1 intervals, held: at most one sample
    // behind.
    for (const auto& smp : rec.samples()) {
        EXPECT_LE(smp.t - smp.v, 0.1 + 0.05 + 1e-9);
        EXPECT_GE(smp.t - smp.v, -1e-9);
    }
    EXPECT_GT(tf.samplesTaken(), 8u);
}

TEST(DiscreteTf, LowPassConvergesOnStep) {
    // y[k] = 0.8 y[k-1] + 0.2 u[k]: DC gain 1.
    Plain top{"top"};
    c::Step u("u", &top, 0.0);
    c::DiscreteTransferFunction tf("tf", &top, {0.2}, {1.0, -0.8}, 0.05);
    c::Recorder rec("rec", &top);
    f::flow(u.out(), tf.in());
    f::flow(tf.out(), rec.in());
    f::SolverRunner runner(top, s::makeIntegrator("Euler"), 0.05);
    runner.initialize(0.0);
    runner.advanceTo(5.0);
    EXPECT_NEAR(rec.last(), 1.0, 1e-4);
}

TEST(DiscreteTf, MatchesDifferenceEquationDirectly) {
    // The block must produce exactly the same sequence as the underlying
    // recursion sampled at the same instants.
    Plain top{"top"};
    c::Sine u("u", &top, 1.0, 3.0);
    c::DiscreteTransferFunction tf("tf", &top, {0.5, 0.25}, {1.0, -0.3}, 0.1);
    c::Recorder rec("rec", &top);
    f::flow(u.out(), tf.in());
    f::flow(tf.out(), rec.in());
    f::SolverRunner runner(top, s::makeIntegrator("Euler"), 0.1);
    runner.initialize(0.0);
    runner.advanceTo(2.0);

    s::DifferenceEquation ref({0.5, 0.25}, {1.0, -0.3});
    // Visibility semantics: a sample taken in the update pass at boundary k
    // reaches downstream observers at boundary k+1, so the recorder lags
    // the reference by exactly one sample.
    double prevExpected = 0.0;
    std::size_t k = 0;
    for (const auto& smp : rec.samples()) {
        EXPECT_NEAR(smp.v, prevExpected, 1e-12) << "sample " << k;
        prevExpected = ref.step(std::sin(3.0 * smp.t));
        ++k;
    }
}

TEST(DiscretePid, ProportionalTracksSampledError) {
    Plain top{"top"};
    c::Constant e("e", &top, 2.0);
    c::DiscretePid pid("pid", &top, 3.0, 0.0, 0.0, 0.1);
    c::Recorder rec("rec", &top);
    f::flow(e.out(), pid.in());
    f::flow(pid.out(), rec.in());
    f::SolverRunner runner(top, s::makeIntegrator("Euler"), 0.1);
    runner.initialize(0.0);
    runner.advanceTo(1.0);
    EXPECT_DOUBLE_EQ(rec.last(), 6.0);
}

TEST(DiscretePid, IntegralAccumulatesPerSample) {
    Plain top{"top"};
    c::Constant e("e", &top, 1.0);
    c::DiscretePid pid("pid", &top, 0.0, 2.0, 0.0, 0.1);
    f::flow(e.out(), pid.in());
    f::SolverRunner runner(top, s::makeIntegrator("Euler"), 0.1);
    runner.initialize(0.0);
    runner.advanceTo(1.0);
    // ~10-11 samples of Ts*e accumulate ~1.0-1.1; u = ki * integral.
    EXPECT_NEAR(pid.integralState(), 1.05, 0.1);
}

TEST(DiscretePid, ClosedLoopRegulatesContinuousPlant) {
    // The paper's hybrid split: discrete controller (difference equations)
    // + continuous plant (differential equation) in one network.
    Plain top{"top"};
    c::Step sp("sp", &top, 0.0, 0.0, 1.0);
    c::Sum err("err", &top, "+-");
    c::DiscretePid pid("pid", &top, 2.0, 4.0, 0.0, 0.02);
    c::FirstOrderLag plant("plant", &top, 0.3);
    f::Relay meas("meas", &top, f::FlowType::real(), 2);
    c::Recorder rec("rec", &top);
    f::flow(sp.out(), err.in(0));
    f::flow(meas.out(0), err.in(1));
    f::flow(err.out(), pid.in());
    f::flow(pid.out(), plant.in());
    f::flow(plant.out(), meas.in());
    f::flow(meas.out(1), rec.in());

    f::SolverRunner runner(top, s::makeIntegrator("RK4"), 0.02);
    runner.initialize(0.0);
    runner.advanceTo(6.0);
    EXPECT_NEAR(rec.last(), 1.0, 5e-3) << "discrete PI removes steady-state error";
}

TEST(DiscretePid, AntiWindupLimitsIntegral) {
    Plain top{"top"};
    c::Constant e("e", &top, 10.0); // large persistent error
    c::DiscretePid pid("pid", &top, 1.0, 5.0, 0.0, 0.01);
    pid.withLimits(-1.0, 1.0);
    f::flow(e.out(), pid.in());
    f::SolverRunner runner(top, s::makeIntegrator("Euler"), 0.01);
    runner.initialize(0.0);
    runner.advanceTo(2.0);
    EXPECT_LE(std::abs(pid.integralState()), 1.0)
        << "conditional integration must stop the integral from winding up";
}

TEST(DiscretePid, DerivativeKicksOnSampledSlope) {
    Plain top{"top"};
    c::Ramp e("e", &top, 2.0); // de/dt = 2
    c::DiscretePid pid("pid", &top, 0.0, 0.0, 1.5, 0.1);
    c::Recorder rec("rec", &top);
    f::flow(e.out(), pid.in());
    f::flow(pid.out(), rec.in());
    f::SolverRunner runner(top, s::makeIntegrator("Euler"), 0.1);
    runner.initialize(0.0);
    runner.advanceTo(1.0);
    EXPECT_NEAR(rec.last(), 1.5 * 2.0, 1e-9) << "kd * slope";
}
