#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rt/rt.hpp"

namespace rt = urtx::rt;

namespace {

rt::Protocol& logProto() {
    static rt::Protocol p = [] {
        rt::Protocol q{"Log"};
        q.out("log").in("ack");
        return q;
    }();
    return p;
}

/// Service provider: counts log lines and acks.
struct Logger : rt::Capsule {
    using rt::Capsule::Capsule;
    std::vector<std::string> lines;

protected:
    void onMessage(const rt::Message& m) override {
        if (m.signal == rt::signal("log")) {
            lines.push_back(m.dataOr<std::string>(""));
            if (m.dest) m.dest->send("ack");
        }
    }
};

struct ClientCap : rt::Capsule {
    explicit ClientCap(std::string n)
        : rt::Capsule(std::move(n)), sap(*this, "logSap", logProto(), false) {}
    rt::Port sap;
    int acks = 0;

protected:
    void onMessage(const rt::Message& m) override {
        if (m.signal == rt::signal("ack")) ++acks;
    }
};

} // namespace

TEST(LayerService, PublishAndRegisterWiresSap) {
    rt::LayerService layer;
    Logger logger{"logger"};
    ClientCap client{"client"};
    EXPECT_TRUE(layer.publish("log", logger, logProto(), /*providerConjugated=*/true));
    EXPECT_TRUE(layer.hasService("log"));
    EXPECT_TRUE(layer.registerSap(client.sap, "log"));
    EXPECT_EQ(layer.sapCount("log"), 1u);

    EXPECT_TRUE(client.sap.send("log", std::string("hello")));
    ASSERT_EQ(logger.lines.size(), 1u);
    EXPECT_EQ(logger.lines[0], "hello");
    EXPECT_EQ(client.acks, 1) << "provider replied through the dedicated end";
}

TEST(LayerService, MultipleSapsGetDedicatedEnds) {
    rt::LayerService layer;
    Logger logger{"logger"};
    ClientCap a{"a"}, b{"b"};
    layer.publish("log", logger, logProto());
    layer.registerSap(a.sap, "log");
    layer.registerSap(b.sap, "log");
    EXPECT_EQ(layer.sapCount("log"), 2u);
    a.sap.send("log", std::string("from-a"));
    b.sap.send("log", std::string("from-b"));
    ASSERT_EQ(logger.lines.size(), 2u);
    EXPECT_EQ(a.acks, 1);
    EXPECT_EQ(b.acks, 1);
}

TEST(LayerService, DuplicatePublishRejected) {
    rt::LayerService layer;
    Logger l1{"l1"}, l2{"l2"};
    EXPECT_TRUE(layer.publish("svc", l1, logProto()));
    EXPECT_FALSE(layer.publish("svc", l2, logProto()));
}

TEST(LayerService, UnknownServiceReturnsFalse) {
    rt::LayerService layer;
    ClientCap client{"client"};
    EXPECT_FALSE(layer.registerSap(client.sap, "nothing"));
    EXPECT_FALSE(layer.hasService("nothing"));
    EXPECT_EQ(layer.sapCount("nothing"), 0u);
}

TEST(LayerService, ProtocolAndConjugationValidated) {
    static rt::Protocol other = [] {
        rt::Protocol q{"Other"};
        q.out("x");
        return q;
    }();
    rt::LayerService layer;
    Logger logger{"logger"};
    layer.publish("log", logger, logProto(), true);

    rt::Capsule cap{"cap"};
    rt::Port wrongProto(cap, "p1", other, false);
    EXPECT_THROW(layer.registerSap(wrongProto, "log"), std::logic_error);

    rt::Port wrongConj(cap, "p2", logProto(), true); // same as provider side
    EXPECT_THROW(layer.registerSap(wrongConj, "log"), std::logic_error);

    rt::Port good(cap, "p3", logProto(), false);
    rt::Capsule peer{"peer"};
    rt::Port peerPort(peer, "pp", logProto(), true);
    rt::connect(good, peerPort);
    EXPECT_THROW(layer.registerSap(good, "log"), std::logic_error) << "already wired";
}

TEST(LayerService, DeregisterUnwires) {
    rt::LayerService layer;
    Logger logger{"logger"};
    ClientCap client{"client"};
    layer.publish("log", logger, logProto());
    layer.registerSap(client.sap, "log");
    EXPECT_TRUE(layer.deregisterSap(client.sap));
    EXPECT_EQ(layer.sapCount("log"), 0u);
    EXPECT_FALSE(client.sap.isWired());
    EXPECT_FALSE(client.sap.send("log", std::string("x")));
    EXPECT_FALSE(layer.deregisterSap(client.sap)) << "double deregister";
}

TEST(LayerService, WithdrawDisconnectsEverything) {
    rt::LayerService layer;
    Logger logger{"logger"};
    ClientCap client{"client"};
    layer.publish("log", logger, logProto());
    layer.registerSap(client.sap, "log");
    EXPECT_TRUE(layer.withdraw("log"));
    EXPECT_FALSE(layer.hasService("log"));
    EXPECT_FALSE(client.sap.isWired());
    EXPECT_FALSE(layer.withdraw("log"));
}
