#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "control/control.hpp"
#include "flow/network.hpp"
#include "flow/relay.hpp"
#include "flow/solver_runner.hpp"

namespace f = urtx::flow;
namespace c = urtx::control;
using FT = f::FlowType;

namespace {

struct Plain : f::Streamer {
    using f::Streamer::Streamer;
};

std::ptrdiff_t indexOf(const std::vector<f::Streamer*>& v, const f::Streamer& s) {
    auto it = std::find(v.begin(), v.end(), &s);
    return it == v.end() ? -1 : (it - v.begin());
}

} // namespace

TEST(Network, CollectsLeavesOnly) {
    Plain top{"top"};
    Plain comp{"comp", &top};
    c::Constant k1("k1", &top, 1.0);
    c::Constant k2("k2", &comp, 2.0);
    f::Network net(top);
    EXPECT_EQ(net.leafCount(), 2u);
    EXPECT_GE(indexOf(net.order(), k1), 0);
    EXPECT_GE(indexOf(net.order(), k2), 0);
    EXPECT_EQ(indexOf(net.order(), comp), -1);
}

TEST(Network, TopoOrdersFeedthroughChains) {
    Plain top{"top"};
    c::Gain g2("g2", &top, 2.0); // declared first but depends on g1
    c::Gain g1("g1", &top, 3.0);
    c::Constant src("src", &top, 1.0);
    f::flow(src.out(), g1.in());
    f::flow(g1.out(), g2.in());
    f::Network net(top);
    EXPECT_LT(indexOf(net.order(), g1), indexOf(net.order(), g2));
    EXPECT_LT(indexOf(net.order(), src), indexOf(net.order(), g1));
    EXPECT_EQ(net.connectionCount(), 2u);
}

TEST(Network, AlgebraicLoopDetected) {
    Plain top{"top"};
    c::Gain a("a", &top, 1.0);
    c::Gain b("b", &top, 1.0);
    f::flow(a.out(), b.in());
    f::flow(b.out(), a.in());
    EXPECT_THROW(f::Network net(top), std::logic_error);
}

TEST(Network, IntegratorBreaksLoop) {
    // Feedback through an integrator is fine: dx = -x.
    Plain top{"top"};
    c::Integrator integ("x", &top, 1.0);
    c::Gain fb("fb", &top, -1.0);
    f::flow(integ.out(), fb.in());
    f::flow(fb.out(), integ.in());
    EXPECT_NO_THROW(f::Network net(top));
}

TEST(Network, PropagatesValuesThroughHierarchy) {
    // top { const -> comp.in ; comp { in -> gain -> out } ; comp.out -> sink }
    Plain top{"top"};
    c::Constant src("src", &top, 4.0);
    Plain comp{"comp", &top};
    f::DPort compIn(comp, "in", f::DPortDir::In, FT::real());
    f::DPort compOut(comp, "out", f::DPortDir::Out, FT::real());
    c::Gain g("g", &comp, 10.0);
    c::Recorder rec("rec", &top);

    f::flow(src.out(), compIn);
    f::flow(compIn, g.in());
    f::flow(g.out(), compOut);
    f::flow(compOut, rec.in());

    f::Network net(top);
    urtx::solver::Vec x;
    net.initState(0.0, x);
    net.computeOutputs(0.0, x);
    EXPECT_DOUBLE_EQ(rec.in().fedBy() ? rec.in().get() : -1, 40.0);
    EXPECT_DOUBLE_EQ(compOut.get(), 40.0) << "boundary port must expose the value";
    EXPECT_GE(net.boundaryPortCount(), 1u);
}

TEST(Network, DeepHierarchyResolvesToLeafSource) {
    Plain top{"top"};
    c::Constant src("src", &top, 7.0);
    Plain l1{"l1", &top};
    Plain l2{"l2", &l1};
    f::DPort in1(l1, "in", f::DPortDir::In, FT::real());
    f::DPort in2(l2, "in", f::DPortDir::In, FT::real());
    c::Gain g("g", &l2, 2.0);
    f::flow(src.out(), in1);
    f::flow(in1, in2);
    f::flow(in2, g.in());

    f::Network net(top);
    EXPECT_EQ(g.in().resolvedSource(), &src.out())
        << "resolution must chase through both boundaries to the leaf";
    urtx::solver::Vec x;
    net.initState(0.0, x);
    net.computeOutputs(0.0, x);
    EXPECT_DOUBLE_EQ(g.out().get(), 14.0);
}

TEST(Network, RelayFansOutInsideNetwork) {
    Plain top{"top"};
    c::Constant src("src", &top, 3.0);
    f::Relay relay("r", &top, FT::real(), 2);
    c::Gain g1("g1", &top, 1.0);
    c::Gain g2("g2", &top, -1.0);
    f::flow(src.out(), relay.in());
    f::flow(relay.out(0), g1.in());
    f::flow(relay.out(1), g2.in());

    f::Network net(top);
    urtx::solver::Vec x;
    net.initState(0.0, x);
    net.computeOutputs(0.0, x);
    EXPECT_DOUBLE_EQ(g1.out().get(), 3.0);
    EXPECT_DOUBLE_EQ(g2.out().get(), -3.0);
}

TEST(Network, StatePackingAndSpans) {
    Plain top{"top"};
    c::Integrator i1("i1", &top, 1.5);
    c::Integrator i2("i2", &top, -2.5);
    c::Constant src("src", &top, 0.0);
    f::Relay r("r", &top, FT::real(), 2);
    f::flow(src.out(), r.in());
    f::flow(r.out(0), i1.in());
    f::flow(r.out(1), i2.in());

    f::Network net(top);
    EXPECT_EQ(net.stateSize(), 2u);
    urtx::solver::Vec x;
    net.initState(0.0, x);
    auto s1 = net.stateOf(i1, x);
    auto s2 = net.stateOf(i2, x);
    EXPECT_DOUBLE_EQ(s1[0], 1.5);
    EXPECT_DOUBLE_EQ(s2[0], -2.5);
}

TEST(Network, DerivativesCollectPerLeaf) {
    // dx1 = 2 (const), dx2 = x1 via gain? integrator input is const 2.
    Plain top{"top"};
    c::Constant src("src", &top, 2.0);
    c::Integrator integ("integ", &top, 0.0);
    f::flow(src.out(), integ.in());
    f::Network net(top);
    urtx::solver::Vec x, dx;
    net.initState(0.0, x);
    net.derivatives(0.0, x, dx);
    ASSERT_EQ(dx.size(), 1u);
    EXPECT_DOUBLE_EQ(dx[0], 2.0);
}

TEST(Network, OdeAdapterMatchesNetwork) {
    Plain top{"top"};
    c::Integrator integ("integ", &top, 1.0);
    c::Gain fb("fb", &top, -3.0);
    f::flow(integ.out(), fb.in());
    f::flow(fb.out(), integ.in());
    f::Network net(top);
    f::Network::Ode ode(net);
    EXPECT_EQ(ode.dim(), 1u);
    urtx::solver::Vec x{2.0}, dx;
    ode.derivatives(0.0, x, dx);
    EXPECT_DOUBLE_EQ(dx[0], -6.0);
}

TEST(Network, UnfedInputActsAsExternalInput) {
    Plain top{"top"};
    c::Gain g("g", &top, 5.0);
    f::Network net(top);
    g.in().set(3.0); // external write
    urtx::solver::Vec x;
    net.initState(0.0, x);
    net.computeOutputs(0.0, x);
    EXPECT_DOUBLE_EQ(g.out().get(), 15.0);
}

TEST(Network, StateOfForeignStreamerThrows) {
    Plain top{"top"};
    c::Integrator i1("i1", &top, 0.0);
    Plain other{"other"};
    c::Integrator i2("i2", &other, 0.0);
    f::Network net(top);
    urtx::solver::Vec x;
    net.initState(0.0, x);
    EXPECT_THROW(net.stateOf(i2, x), std::logic_error);
}

TEST(Network, EventLeavesDiscovered) {
    struct Bouncy : f::Streamer {
        using f::Streamer::Streamer;
        std::size_t stateSize() const override { return 1; }
        bool hasEvent() const override { return true; }
        double eventFunction(double, std::span<const double> x) const override { return x[0]; }
    };
    Plain top{"top"};
    Bouncy b("ball", &top);
    c::Constant k("k", &top, 0.0);
    f::Network net(top);
    ASSERT_EQ(net.eventLeaves().size(), 1u);
    EXPECT_EQ(net.eventLeaves()[0], &b);
    urtx::solver::Vec x{-2.0};
    EXPECT_DOUBLE_EQ(net.eventValue(0, 0.0, x), -2.0);
}

// ------------------------- algebraic loop fixed point -----------------------

TEST(NetworkLoops, FixedPointSolvesContractiveLoop) {
    // x = 0.5 x + 1  =>  x = 2. Built as: sum(+const, +gain(x)) -> relay.
    Plain top{"top"};
    c::Constant one("one", &top, 1.0);
    c::Sum sum("sum", &top, "++");
    c::Gain half("half", &top, 0.5);
    f::Relay r("r", &top, FT::real(), 2);
    c::Gain probe("probe", &top, 1.0);
    f::flow(one.out(), sum.in(0));
    f::flow(half.out(), sum.in(1));
    f::flow(sum.out(), r.in());
    f::flow(r.out(0), half.in());
    f::flow(r.out(1), probe.in());

    f::NetworkOptions opts;
    opts.allowAlgebraicLoops = true;
    f::Network net(top, opts);
    EXPECT_GE(net.loopMembers().size(), 2u);
    urtx::solver::Vec x;
    net.initState(0.0, x);
    net.computeOutputs(0.0, x);
    EXPECT_NEAR(probe.out().get(), 2.0, 1e-8);
    EXPECT_GT(net.lastLoopIterations(), 1);
}

TEST(NetworkLoops, DefaultStillRejectsLoops) {
    Plain top{"top"};
    c::Gain a("a", &top, 0.5);
    c::Gain b("b", &top, 0.5);
    f::flow(a.out(), b.in());
    f::flow(b.out(), a.in());
    EXPECT_THROW(f::Network net(top), std::logic_error);
}

TEST(NetworkLoops, DivergentLoopReportsNonConvergence) {
    // Loop gain 2 > 1: fixed point iteration diverges.
    Plain top{"top"};
    c::Constant one("one", &top, 1.0);
    c::Sum sum("sum", &top, "++");
    c::Gain two("two", &top, 2.0);
    f::Relay r("r", &top, FT::real(), 2);
    f::flow(one.out(), sum.in(0));
    f::flow(two.out(), sum.in(1));
    f::flow(sum.out(), r.in());
    f::flow(r.out(0), two.in());
    c::Recorder rec("rec", &top);
    f::flow(r.out(1), rec.in());

    f::NetworkOptions opts;
    opts.allowAlgebraicLoops = true;
    opts.loopMaxIterations = 30;
    f::Network net(top, opts);
    urtx::solver::Vec x;
    net.initState(0.0, x);
    EXPECT_THROW(net.computeOutputs(0.0, x), std::runtime_error);
}

TEST(NetworkLoops, LoopInsideDynamicSimulation) {
    // Plant dx = u - x where u solves u = 0.5 u + x algebraically
    // (=> u = 2x => dx = x: growth e^t).
    Plain top{"top"};
    c::Integrator integ("x", &top, 1.0);
    f::Relay xr("xr", &top, FT::real(), 2);
    c::Sum sum("sum", &top, "++");
    c::Gain half("half", &top, 0.5);
    f::Relay ur("ur", &top, FT::real(), 2);
    c::Sum dyn("dyn", &top, "+-"); // u - x
    f::flow(integ.out(), xr.in());
    f::flow(xr.out(0), sum.in(0));
    f::flow(half.out(), sum.in(1));
    f::flow(sum.out(), ur.in());
    f::flow(ur.out(0), half.in());
    f::flow(ur.out(1), dyn.in(0));
    f::flow(xr.out(1), dyn.in(1));
    f::flow(dyn.out(), integ.in());

    f::NetworkOptions opts;
    opts.allowAlgebraicLoops = true;
    f::SolverRunner runner(top, urtx::solver::makeIntegrator("RK4"), 0.001, opts);
    runner.initialize(0.0);
    runner.advanceTo(1.0);
    EXPECT_NEAR(runner.state()[0], std::exp(1.0), 1e-4);
}
