#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "rt/queue.hpp"

namespace rt = urtx::rt;

namespace {

rt::Message msg(const char* sig, rt::Priority p = rt::Priority::General) {
    return rt::Message(rt::signal(sig), {}, p);
}

} // namespace

TEST(MessageQueue, StartsEmpty) {
    rt::MessageQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_FALSE(q.tryPop().has_value());
}

TEST(MessageQueue, FifoWithinOnePriority) {
    rt::MessageQueue q;
    q.push(msg("a"));
    q.push(msg("b"));
    q.push(msg("c"));
    EXPECT_EQ(q.tryPop()->signalName(), "a");
    EXPECT_EQ(q.tryPop()->signalName(), "b");
    EXPECT_EQ(q.tryPop()->signalName(), "c");
}

TEST(MessageQueue, HigherPriorityPreempts) {
    rt::MessageQueue q;
    q.push(msg("low", rt::Priority::Low));
    q.push(msg("panic", rt::Priority::Panic));
    q.push(msg("general", rt::Priority::General));
    q.push(msg("high", rt::Priority::High));
    q.push(msg("background", rt::Priority::Background));
    EXPECT_EQ(q.tryPop()->signalName(), "panic");
    EXPECT_EQ(q.tryPop()->signalName(), "high");
    EXPECT_EQ(q.tryPop()->signalName(), "general");
    EXPECT_EQ(q.tryPop()->signalName(), "low");
    EXPECT_EQ(q.tryPop()->signalName(), "background");
}

TEST(MessageQueue, SequenceNumbersAreMonotonic) {
    rt::MessageQueue q;
    for (int i = 0; i < 10; ++i) q.push(msg("s"));
    std::uint64_t prev = 0;
    bool first = true;
    while (auto m = q.tryPop()) {
        if (!first) EXPECT_GT(m->sequence, prev);
        prev = m->sequence;
        first = false;
    }
    EXPECT_EQ(q.totalPushed(), 10u);
}

TEST(MessageQueue, CloseWakesBlockedConsumer) {
    rt::MessageQueue q;
    std::atomic<bool> woke{false};
    std::thread consumer([&] {
        auto m = q.waitPop();
        EXPECT_FALSE(m.has_value());
        woke = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
    consumer.join();
    EXPECT_TRUE(woke);
}

TEST(MessageQueue, WaitPopReceivesCrossThreadPush) {
    rt::MessageQueue q;
    std::thread producer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        q.push(msg("delivered"));
    });
    auto m = q.waitPop();
    producer.join();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->signalName(), "delivered");
}

TEST(MessageQueue, ConcurrentProducersLoseNothing) {
    rt::MessageQueue q;
    constexpr int kThreads = 8;
    constexpr int kPerThread = 500;
    std::vector<std::thread> producers;
    producers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        producers.emplace_back([&] {
            for (int i = 0; i < kPerThread; ++i) q.push(msg("m"));
        });
    }
    for (auto& t : producers) t.join();
    std::size_t n = 0;
    while (q.tryPop()) ++n;
    EXPECT_EQ(n, static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(MessageQueue, PerPriorityFifoHoldsUnderInterleaving) {
    rt::MessageQueue q;
    // Interleave two priorities; each lane must drain FIFO.
    for (int i = 0; i < 5; ++i) {
        q.push(rt::Message(rt::signal("h" + std::to_string(i)), {}, rt::Priority::High));
        q.push(rt::Message(rt::signal("l" + std::to_string(i)), {}, rt::Priority::Low));
    }
    for (int i = 0; i < 5; ++i) EXPECT_EQ(q.tryPop()->signalName(), "h" + std::to_string(i));
    for (int i = 0; i < 5; ++i) EXPECT_EQ(q.tryPop()->signalName(), "l" + std::to_string(i));
}

TEST(MessageQueue, PayloadSurvivesQueue) {
    rt::MessageQueue q;
    q.push(rt::Message(rt::signal("v"), 42.5));
    auto m = q.tryPop();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->dataOr<double>(0.0), 42.5);
    EXPECT_EQ(m->dataAs<int>(), nullptr); // wrong type -> null
}
