#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "control/control.hpp"
#include "flow/relay.hpp"
#include "flow/sport.hpp"
#include "sim/sim.hpp"

namespace f = urtx::flow;
namespace c = urtx::control;
namespace s = urtx::solver;
namespace rt = urtx::rt;
namespace sim = urtx::sim;

namespace {

struct Plain : f::Streamer {
    using f::Streamer::Streamer;
};

rt::Protocol& thermoProto() {
    static rt::Protocol p = [] {
        rt::Protocol q{"Thermo"};
        q.out("setHeat").in("tooHot").in("tooCold");
        return q;
    }();
    return p;
}

/// Room: dT/dt = -k (T - Tamb) + heaterPower * u. Signals adjust u; events
/// notify threshold crossings.
struct Room : f::Streamer {
    Room(std::string n, f::Streamer* parent)
        : f::Streamer(std::move(n), parent),
          temp(*this, "temp", f::DPortDir::Out, f::FlowType::real()),
          ctl(*this, "ctl", thermoProto(), true) {
        setParam("k", 0.5);
        setParam("Tamb", 10.0);
        setParam("power", 0.0);
        setParam("T0", 15.0);
    }

    f::DPort temp;
    f::SPort ctl;

    std::size_t stateSize() const override { return 1; }
    void initState(double, std::span<double> x) override { x[0] = param("T0"); }
    void derivatives(double, std::span<const double> x, std::span<double> dx) override {
        dx[0] = -param("k") * (x[0] - param("Tamb")) + param("power");
    }
    void outputs(double, std::span<const double> x) override { temp.set(x[0]); }
    bool directFeedthrough() const override { return false; }
    void onSignal(f::SPort&, const rt::Message& m) override {
        if (m.signal == rt::signal("setHeat")) setParam("power", m.dataOr<double>(0.0));
    }
};

/// Bang-bang thermostat capsule.
struct Thermostat : rt::Capsule {
    Thermostat(std::string n, double low, double high)
        : rt::Capsule(std::move(n)), port(*this, "ctl", thermoProto(), false), low_(low),
          high_(high) {
        auto& heating = machine().state("Heating");
        auto& idle = machine().state("Idle");
        machine().initial(idle);
        machine().transition(idle, heating).on("tooCold").act([this](const rt::Message&) {
            port.send("setHeat", 8.0);
            ++switches;
        });
        machine().transition(heating, idle).on("tooHot").act([this](const rt::Message&) {
            port.send("setHeat", 0.0);
            ++switches;
        });
    }
    rt::Port port;
    int switches = 0;
    double low_, high_;
};

} // namespace

TEST(HybridSystem, ConstructionDefaults) {
    sim::HybridSystem sys;
    EXPECT_DOUBLE_EQ(sys.now(), 0.0);
    EXPECT_EQ(sys.controllers().size(), 1u);
    EXPECT_EQ(sys.controller().name(), "main");
    EXPECT_FALSE(sys.initialized());
}

TEST(HybridSystem, GlobalDtIsSmallestMajorStep) {
    sim::HybridSystem sys;
    Plain a{"a"}, b{"b"};
    c::Constant ka("k", &a, 0.0);
    c::Constant kb("k", &b, 0.0);
    sys.addStreamerGroup(a, s::makeIntegrator("Euler"), 0.1);
    sys.addStreamerGroup(b, s::makeIntegrator("Euler"), 0.02);
    EXPECT_DOUBLE_EQ(sys.globalDt(), 0.02);
}

TEST(HybridSystem, SingleThreadAdvancesTimeAndSolvers) {
    sim::HybridSystem sys;
    Plain top{"top"};
    c::Constant u("u", &top, 1.0);
    c::Integrator integ("x", &top, 0.0);
    f::flow(u.out(), integ.in());
    auto& runner = sys.addStreamerGroup(top, s::makeIntegrator("RK4"), 0.01);
    sys.run(1.0, sim::ExecutionMode::SingleThread);
    EXPECT_NEAR(sys.now(), 1.0, 1e-9);
    EXPECT_NEAR(runner.state()[0], 1.0, 1e-9);
    EXPECT_EQ(sys.steps(), 100u);
}

TEST(HybridSystem, TimerDrivenCapsuleRunsOnVirtualTime) {
    struct Ticker : rt::Capsule {
        using rt::Capsule::Capsule;
        int ticks = 0;

    protected:
        void onInit() override { informEvery(0.1, "tick"); }
        void onMessage(const rt::Message& m) override {
            if (m.signal == rt::signal("tick")) ++ticks;
        }
    };
    sim::HybridSystem sys;
    Ticker ticker{"ticker"};
    sys.addCapsule(ticker);
    Plain top{"top"};
    c::Constant u("u", &top, 0.0);
    sys.addStreamerGroup(top, s::makeIntegrator("Euler"), 0.05);
    sys.run(1.0);
    EXPECT_EQ(ticker.ticks, 10);
}

TEST(HybridSystem, TraceSamplesChannels) {
    sim::HybridSystem sys;
    Plain top{"top"};
    c::Constant u("u", &top, 2.0);
    c::Integrator integ("x", &top, 0.0);
    f::flow(u.out(), integ.in());
    auto& runner = sys.addStreamerGroup(top, s::makeIntegrator("RK4"), 0.1);
    sys.trace().channel("x", [&] { return runner.state()[0]; });
    sys.run(1.0);
    EXPECT_EQ(sys.trace().rows(), 10u);
    const auto xs = sys.trace().series("x");
    EXPECT_NEAR(xs.back(), 2.0, 1e-9);
    EXPECT_LT(xs.front(), xs.back());
    EXPECT_THROW(sys.trace().series("nope"), std::invalid_argument);
}

TEST(HybridSystem, ClosedLoopThermostatSingleThread) {
    sim::HybridSystem sys;
    Plain world{"world"};
    Room room("room", &world);
    Thermostat thermo("thermo", 18.0, 22.0);
    rt::connect(thermo.port, room.ctl.rtPort());
    sys.addCapsule(thermo);
    auto& runner = sys.addStreamerGroup(world, s::makeIntegrator("RK4"), 0.01);

    // Threshold supervision via a periodic sampler capsule would need the
    // temperature; simplest: event functions in the Room. For this test we
    // drive it open loop: turn the heater on at t=0 and verify warm-up.
    sys.initialize();
    thermo.port.send("setHeat", 8.0);
    sys.run(5.0);
    // Steady state: Tamb + power/k = 10 + 16 = 26; at t=5 well above 15.
    EXPECT_GT(runner.state()[0], 20.0);
    EXPECT_LT(runner.state()[0], 26.0);
}

TEST(HybridSystem, MultiThreadMatchesSingleThreadOnDecoupledModel) {
    auto simulate = [](sim::ExecutionMode mode) {
        sim::HybridSystem sys;
        Plain top{"top"};
        c::Sine u("u", &top, 1.0, 2.0);
        c::Integrator integ("x", &top, 0.0);
        f::flow(u.out(), integ.in());
        auto& runner = sys.addStreamerGroup(top, s::makeIntegrator("RK4"), 0.01);
        sys.run(2.0, mode);
        return runner.state()[0];
    };
    const double st = simulate(sim::ExecutionMode::SingleThread);
    const double mt = simulate(sim::ExecutionMode::MultiThread);
    // (1 - cos(2t))/2 at t=2.
    EXPECT_NEAR(st, (1.0 - std::cos(4.0)) / 2.0, 1e-6);
    EXPECT_NEAR(mt, st, 1e-12) << "same grid, same integrator: identical trajectory";
}

TEST(HybridSystem, MultiThreadRunsTwoSolverGroupsConcurrently) {
    sim::HybridSystem sys;
    Plain a{"a"}, b{"b"};
    c::Constant ua("u", &a, 1.0);
    c::Integrator xa("x", &a, 0.0);
    f::flow(ua.out(), xa.in());
    c::Constant ub("u", &b, -1.0);
    c::Integrator xb("x", &b, 0.0);
    f::flow(ub.out(), xb.in());
    auto& ra = sys.addStreamerGroup(a, s::makeIntegrator("RK4"), 0.01);
    auto& rb = sys.addStreamerGroup(b, s::makeIntegrator("RK4"), 0.01);
    sys.run(1.0, sim::ExecutionMode::MultiThread);
    EXPECT_NEAR(ra.state()[0], 1.0, 1e-9);
    EXPECT_NEAR(rb.state()[0], -1.0, 1e-9);
}

TEST(HybridSystem, MultiThreadSignalsCrossThreads) {
    // Streamer event -> capsule on another thread -> parameter change.
    static rt::Protocol alarmProto = [] {
        rt::Protocol p{"AlarmMT"};
        p.out("levelHigh").in("shutOff");
        return p;
    }();

    struct Tank : f::Streamer {
        Tank(std::string n, f::Streamer* parent)
            : f::Streamer(std::move(n), parent), sp(*this, "ev", alarmProto, false) {
            setParam("inflow", 1.0);
        }
        f::SPort sp;
        std::size_t stateSize() const override { return 1; }
        void derivatives(double, std::span<const double>, std::span<double> dx) override {
            dx[0] = param("inflow");
        }
        bool hasEvent() const override { return true; }
        double eventFunction(double, std::span<const double> x) const override {
            return x[0] - 0.5; // level threshold
        }
        void onEvent(double t, bool rising) override {
            if (rising) sp.send("levelHigh", t);
        }
        void onSignal(f::SPort&, const rt::Message& m) override {
            if (m.signal == rt::signal("shutOff")) setParam("inflow", 0.0);
        }
    };

    struct Guard : rt::Capsule {
        Guard() : rt::Capsule("guard"), port(*this, "p", alarmProto, true) {}
        rt::Port port;
        std::atomic<int> alarms{0};

    protected:
        void onMessage(const rt::Message& m) override {
            if (m.signal == rt::signal("levelHigh")) {
                ++alarms;
                port.send("shutOff");
            }
        }
    } guard;

    sim::HybridSystem sys;
    Plain top{"top"};
    Tank tank("tank", &top);
    rt::connect(guard.port, tank.sp.rtPort());
    sys.addCapsule(guard);
    auto& runner = sys.addStreamerGroup(top, s::makeIntegrator("RK4"), 0.01);

    sys.run(3.0, sim::ExecutionMode::MultiThread);
    EXPECT_EQ(guard.alarms.load(), 1);
    // The shutOff crosses two thread boundaries while the engine keeps
    // stepping, so allow generous (but bounded) reaction latency.
    EXPECT_GE(runner.state()[0], 0.5);
    EXPECT_LT(runner.state()[0], 1.5) << "shutOff never took effect";
}

TEST(HybridSystem, RunToPastEndIsNoop) {
    sim::HybridSystem sys;
    Plain top{"top"};
    c::Constant u("u", &top, 0.0);
    sys.addStreamerGroup(top, s::makeIntegrator("Euler"), 0.1);
    sys.run(1.0);
    const auto steps = sys.steps();
    sys.run(0.5); // in the past
    EXPECT_EQ(sys.steps(), steps);
}

TEST(HybridSystem, ModeNamesRender) {
    EXPECT_STREQ(sim::to_string(sim::ExecutionMode::SingleThread), "SingleThread");
    EXPECT_STREQ(sim::to_string(sim::ExecutionMode::MultiThread), "MultiThread");
}
