#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "codegen/codegen.hpp"
#include "model/validator.hpp"

namespace cg = urtx::codegen;
namespace m = urtx::model;
namespace f = urtx::flow;

namespace {

m::Model demoModel() {
    m::Model mod;
    mod.name = "thermo";
    mod.protocols.push_back({"Heater", {{"on", "out"}, {"off", "out"}, {"fault", "in"}}});
    mod.flowTypes.push_back({"Temp", f::FlowType::real()});
    mod.flowTypes.push_back(
        {"State",
         f::FlowType::record({{"T", f::FlowType::real()}, {"dT", f::FlowType::real()}})});

    m::StreamerClassDecl room;
    room.name = "RoomModel";
    room.solver = "RK4";
    room.equations = "dT/dt = -k (T - Tamb) + P u";
    room.ports.push_back({"u", m::PortDecl::Kind::Data, "", false, false, "Temp", "in"});
    room.ports.push_back({"T", m::PortDecl::Kind::Data, "", false, false, "Temp", "out"});
    room.ports.push_back({"ctl", m::PortDecl::Kind::Signal, "Heater", true, false, "", ""});
    mod.streamers.push_back(room);

    m::StreamerClassDecl group;
    group.name = "PlantGroup";
    group.ports.push_back({"Tout", m::PortDecl::Kind::Data, "", false, false, "Temp", "out"});
    group.parts.push_back({"room", "RoomModel", m::PartDecl::Kind::Streamer});
    group.relays.push_back({"split", "Temp", 2});
    group.flows.push_back({"room.T", "split.in"});
    group.flows.push_back({"split.out0", "Tout"});
    mod.streamers.push_back(group);

    m::CapsuleClassDecl thermostat;
    thermostat.name = "Thermostat";
    thermostat.ports.push_back(
        {"heater", m::PortDecl::Kind::Signal, "Heater", false, false, "", ""});
    thermostat.states.push_back({"Idle", "", true});
    thermostat.states.push_back({"Heating", "", false});
    thermostat.transitions.push_back({"Idle", "Heating", "tooCold", "T < low", "send on"});
    thermostat.transitions.push_back({"Heating", "Idle", "tooHot", "", ""});
    mod.capsules.push_back(thermostat);
    mod.topCapsule = "Thermostat";
    return mod;
}

std::string fileNamed(const std::vector<cg::GeneratedFile>& files, const std::string& path) {
    for (const auto& f2 : files) {
        if (f2.path == path) return f2.content;
    }
    ADD_FAILURE() << "missing generated file " << path;
    return "";
}

} // namespace

TEST(Codegen, IdentifierSanitization) {
    EXPECT_EQ(cg::CodeGenerator::identifier("simple"), "simple");
    EXPECT_EQ(cg::CodeGenerator::identifier("with space"), "with_space");
    EXPECT_EQ(cg::CodeGenerator::identifier("3rd"), "_3rd");
    EXPECT_EQ(cg::CodeGenerator::identifier("a-b.c"), "a_b_c");
    EXPECT_EQ(cg::CodeGenerator::identifier(""), "_");
}

TEST(Codegen, FlowTypeExprBuilds) {
    EXPECT_EQ(cg::CodeGenerator::flowTypeExpr(f::FlowType::real()),
              "urtx::flow::FlowType::real()");
    EXPECT_EQ(cg::CodeGenerator::flowTypeExpr(f::FlowType::vector(f::FlowType::integer(), 3)),
              "urtx::flow::FlowType::vector(urtx::flow::FlowType::integer(), 3)");
    const auto rec = f::FlowType::record({{"a", f::FlowType::real()}});
    EXPECT_EQ(cg::CodeGenerator::flowTypeExpr(rec),
              "urtx::flow::FlowType::record({{\"a\", urtx::flow::FlowType::real()}})");
}

TEST(Codegen, GeneratesExpectedFileSet) {
    const auto model = demoModel();
    ASSERT_TRUE(m::Validator::ok(m::Validator().validate(model)));
    const auto files = cg::CodeGenerator().generate(model);
    ASSERT_EQ(files.size(), 8u); // protocols, flowtypes, 2 streamers, 1 capsule, main, cmake, dot
    fileNamed(files, "gen_protocols.hpp");
    fileNamed(files, "gen_flowtypes.hpp");
    fileNamed(files, "gen_RoomModel.hpp");
    fileNamed(files, "gen_PlantGroup.hpp");
    fileNamed(files, "gen_Thermostat.hpp");
    fileNamed(files, "main.cpp");
    fileNamed(files, "CMakeLists.txt");
    fileNamed(files, "model.dot");
}

TEST(Codegen, ProtocolHeaderContent) {
    const auto files = cg::CodeGenerator().generate(demoModel());
    const auto text = fileNamed(files, "gen_protocols.hpp");
    EXPECT_NE(text.find("namespace gen::protocols"), std::string::npos);
    EXPECT_NE(text.find("inline const urtx::rt::Protocol& Heater()"), std::string::npos);
    EXPECT_NE(text.find("q.out(\"on\");"), std::string::npos);
    EXPECT_NE(text.find("q.in(\"fault\");"), std::string::npos);
}

TEST(Codegen, FlowTypeHeaderContent) {
    const auto files = cg::CodeGenerator().generate(demoModel());
    const auto text = fileNamed(files, "gen_flowtypes.hpp");
    EXPECT_NE(text.find("inline const urtx::flow::FlowType& Temp()"), std::string::npos);
    EXPECT_NE(text.find("FlowType::record"), std::string::npos);
}

TEST(Codegen, CapsuleHeaderHasMachineAndHooks) {
    const auto files = cg::CodeGenerator().generate(demoModel());
    const auto text = fileNamed(files, "gen_Thermostat.hpp");
    EXPECT_NE(text.find("class Thermostat : public urtx::rt::Capsule"), std::string::npos);
    EXPECT_NE(text.find("urtx::rt::Port heater;"), std::string::npos);
    EXPECT_NE(text.find("m.state(\"Idle\")"), std::string::npos);
    EXPECT_NE(text.find(".on(\"tooCold\")"), std::string::npos);
    EXPECT_NE(text.find("virtual void on_Idle_to_Heating(const urtx::rt::Message&)"),
              std::string::npos);
    EXPECT_NE(text.find("guard_Idle_to_Heating"), std::string::npos)
        << "guarded transitions must expose a guard hook";
    EXPECT_NE(text.find("m.initial(s_Idle);"), std::string::npos);
}

TEST(Codegen, StreamerHeadersHaveStructureAndStubs) {
    const auto files = cg::CodeGenerator().generate(demoModel());
    const auto leaf = fileNamed(files, "gen_RoomModel.hpp");
    EXPECT_NE(leaf.find("class RoomModel : public urtx::flow::Streamer"), std::string::npos);
    EXPECT_NE(leaf.find("urtx::flow::DPort u;"), std::string::npos);
    EXPECT_NE(leaf.find("urtx::flow::SPort ctl;"), std::string::npos);
    EXPECT_NE(leaf.find("TODO: equations"), std::string::npos);
    EXPECT_NE(leaf.find("RK4"), std::string::npos) << "solver strategy must be named";

    const auto comp = fileNamed(files, "gen_PlantGroup.hpp");
    EXPECT_NE(comp.find("RoomModel room;"), std::string::npos);
    EXPECT_NE(comp.find("urtx::flow::Relay split;"), std::string::npos);
    EXPECT_NE(comp.find("urtx::flow::flow(room.T, split.in);"), std::string::npos)
        << "flows must be wired in the constructor";
    EXPECT_EQ(comp.find("TODO: equations"), std::string::npos)
        << "composite streamers have no equation stubs";
}

TEST(Codegen, MainAndCmakeSkeletons) {
    const auto files = cg::CodeGenerator().generate(demoModel());
    const auto mainText = fileNamed(files, "main.cpp");
    EXPECT_NE(mainText.find("gen::Thermostat top(\"top\");"), std::string::npos);
    EXPECT_NE(mainText.find("initializeAll"), std::string::npos);
    const auto cmake = fileNamed(files, "CMakeLists.txt");
    EXPECT_NE(cmake.find("project(thermo CXX)"), std::string::npos);
}

TEST(Codegen, CustomNamespaceOption) {
    cg::CodeGenerator::Options opts;
    opts.ns = "acme";
    opts.filePrefix = "acme_";
    const auto files = cg::CodeGenerator(opts).generate(demoModel());
    const auto text = fileNamed(files, "acme_protocols.hpp");
    EXPECT_NE(text.find("namespace acme::protocols"), std::string::npos);
}

TEST(Codegen, WriteFilesCreatesTree) {
    namespace fs = std::filesystem;
    const std::string dir = "/tmp/urtx_codegen_test_out";
    fs::remove_all(dir);
    const auto files = cg::CodeGenerator().generate(demoModel());
    cg::writeFiles(files, dir);
    EXPECT_TRUE(fs::exists(dir + "/gen_Thermostat.hpp"));
    EXPECT_TRUE(fs::exists(dir + "/main.cpp"));
}

TEST(Codegen, GeneratedCodeCompiles) {
    // The strongest check: the generated headers + main must pass full
    // compilation (syntax + template instantiation) against the library.
    namespace fs = std::filesystem;
    const std::string dir = "/tmp/urtx_codegen_compile_test";
    fs::remove_all(dir);
    cg::writeFiles(cg::CodeGenerator().generate(demoModel()), dir);

    const std::string srcRoot = fs::absolute(fs::path(__FILE__).parent_path() / ".." / "src")
                                    .lexically_normal()
                                    .string();
    const std::string cmd = "c++ -std=c++20 -fsyntax-only -Wall -Wextra -Werror -I " + srcRoot +
                            " -I " + dir + " " + dir + "/main.cpp 2> " + dir + "/compile.log";
    const int rc = std::system(cmd.c_str());
    std::ifstream log(dir + "/compile.log");
    std::string logText((std::istreambuf_iterator<char>(log)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(rc, 0) << "generated code failed to compile:\n" << logText;
}
