#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "rt/clock.hpp"

namespace rt = urtx::rt;

TEST(VirtualClock, StartsAtConstructionTime) {
    rt::VirtualClock c(5.0);
    EXPECT_DOUBLE_EQ(c.now(), 5.0);
    EXPECT_TRUE(c.isVirtual());
}

TEST(VirtualClock, AdvanceToMovesForward) {
    rt::VirtualClock c;
    c.advanceTo(1.5);
    EXPECT_DOUBLE_EQ(c.now(), 1.5);
    c.advanceBy(0.5);
    EXPECT_DOUBLE_EQ(c.now(), 2.0);
}

TEST(VirtualClock, NeverMovesBackwards) {
    rt::VirtualClock c(10.0);
    c.advanceTo(3.0); // ignored
    EXPECT_DOUBLE_EQ(c.now(), 10.0);
    c.advanceBy(-5.0); // ignored (negative delta)
    EXPECT_DOUBLE_EQ(c.now(), 10.0);
}

TEST(VirtualClock, ConcurrentAdvanceIsMonotonic) {
    rt::VirtualClock c;
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t) {
        writers.emplace_back([&c, t] {
            for (int i = 0; i < 1000; ++i) {
                c.advanceTo(static_cast<double>(t * 1000 + i) * 1e-3);
            }
        });
    }
    std::thread reader([&c] {
        double prev = 0.0;
        for (int i = 0; i < 10000; ++i) {
            const double now = c.now();
            EXPECT_GE(now, prev) << "clock regressed";
            prev = now;
        }
    });
    for (auto& w : writers) w.join();
    reader.join();
    EXPECT_DOUBLE_EQ(c.now(), 3.999);
}

TEST(RealClock, ProgressesWithWallTime) {
    rt::RealClock c;
    EXPECT_FALSE(c.isVirtual());
    const double t0 = c.now();
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    const double t1 = c.now();
    EXPECT_GE(t1 - t0, 0.010);
    EXPECT_LT(t1 - t0, 5.0);
}

TEST(RealClock, StartsNearZero) {
    rt::RealClock c;
    EXPECT_GE(c.now(), 0.0);
    EXPECT_LT(c.now(), 1.0);
}
