#include <gtest/gtest.h>

#include <cmath>

#include "control/control.hpp"
#include "flow/relay.hpp"
#include "flow/solver_runner.hpp"
#include "flow/sport.hpp"
#include "rt/rt.hpp"

namespace f = urtx::flow;
namespace c = urtx::control;
namespace s = urtx::solver;
namespace rt = urtx::rt;

namespace {

struct Plain : f::Streamer {
    using f::Streamer::Streamer;
};

/// Build dx = -x, x0 = 1 and record x.
struct DecayModel {
    Plain top{"top"};
    c::Integrator integ{"x", &top, 1.0};
    c::Gain fb{"fb", &top, -1.0};
    c::Recorder rec{"rec", &top};
    f::Relay relay{"r", &top, f::FlowType::real(), 2};

    DecayModel() {
        f::flow(integ.out(), relay.in());
        f::flow(relay.out(0), fb.in());
        f::flow(fb.out(), integ.in());
        f::flow(relay.out(1), rec.in());
    }
};

} // namespace

TEST(SolverRunner, RejectsBadConstruction) {
    Plain top{"top"};
    EXPECT_THROW(f::SolverRunner(top, nullptr, 0.1), std::invalid_argument);
    EXPECT_THROW(f::SolverRunner(top, s::makeIntegrator("RK4"), 0.0), std::invalid_argument);
}

TEST(SolverRunner, IntegratesExponentialDecay) {
    DecayModel m;
    f::SolverRunner runner(m.top, s::makeIntegrator("RK4"), 0.01);
    runner.initialize(0.0);
    runner.advanceTo(1.0);
    EXPECT_NEAR(runner.time(), 1.0, 1e-9);
    EXPECT_NEAR(m.rec.last(), std::exp(-1.0), 1e-5);
    EXPECT_EQ(runner.majorSteps(), 100u);
    EXPECT_EQ(m.rec.size(), 100u);
}

TEST(SolverRunner, StrategySwapMidRunPreservesState) {
    // The paper's Figure 1: solver strategies are interchangeable.
    DecayModel m;
    f::SolverRunner runner(m.top, s::makeIntegrator("Euler"), 0.001);
    runner.initialize(0.0);
    runner.advanceTo(0.5);
    EXPECT_STREQ(runner.integrator().name(), "Euler");
    runner.setIntegrator(s::makeIntegrator("RK45"));
    runner.advanceTo(1.0);
    EXPECT_STREQ(runner.integrator().name(), "RK45");
    EXPECT_NEAR(m.rec.last(), std::exp(-1.0), 1e-3);
}

TEST(SolverRunner, AllStrategiesAgreeOnSmoothProblem) {
    double results[3];
    const char* methods[3] = {"Heun", "RK4", "RK45"};
    for (int i = 0; i < 3; ++i) {
        DecayModel m;
        f::SolverRunner runner(m.top, s::makeIntegrator(methods[i]), 0.01);
        runner.initialize(0.0);
        runner.advanceTo(2.0);
        results[i] = m.rec.last();
    }
    EXPECT_NEAR(results[0], results[1], 1e-5);
    EXPECT_NEAR(results[1], results[2], 1e-6);
    EXPECT_NEAR(results[1], std::exp(-2.0), 1e-6);
}

TEST(SolverRunner, ProbeSeesEveryMajorStep) {
    DecayModel m;
    f::SolverRunner runner(m.top, s::makeIntegrator("RK4"), 0.1);
    int calls = 0;
    double lastT = -1;
    runner.setProbe([&](double t, const f::Network&) {
        ++calls;
        EXPECT_GT(t, lastT);
        lastT = t;
    });
    runner.initialize(0.0);
    runner.advanceTo(1.0);
    EXPECT_EQ(calls, 10);
}

TEST(SolverRunner, SignalsChangeParametersBetweenSteps) {
    // A capsule retunes the feedback gain mid-run through an SPort.
    static rt::Protocol tune = [] {
        rt::Protocol p{"TuneRunner"};
        p.out("setK");
        return p;
    }();

    struct TunableGain : c::SisoBlock {
        TunableGain(std::string n, f::Streamer* parent) : SisoBlock(std::move(n), parent) {
            setParam("k", -1.0);
        }
        void outputs(double, std::span<const double>) override {
            out_.set(param("k") * in_.get());
        }
        void onSignal(f::SPort&, const rt::Message& m) override {
            if (m.signal == rt::signal("setK")) setParam("k", m.dataOr<double>(-1.0));
        }
    };

    Plain top{"top"};
    c::Integrator integ("x", &top, 1.0);
    TunableGain fb("fb", &top);
    f::flow(integ.out(), fb.in());
    f::flow(fb.out(), integ.in());
    f::SPort sp(fb, "tune", tune, true);

    struct Tuner : rt::Capsule {
        Tuner() : rt::Capsule("tuner"), port(*this, "p", tune, false) {}
        rt::Port port;
    } cap;
    rt::connect(cap.port, sp.rtPort());

    f::SolverRunner runner(top, s::makeIntegrator("RK4"), 0.01);
    runner.initialize(0.0);
    runner.advanceTo(1.0);
    const double atOne = runner.state()[0];
    EXPECT_NEAR(atOne, std::exp(-1.0), 1e-5);

    cap.port.send("setK", 0.0); // freeze: dx = 0
    runner.advanceTo(2.0);
    EXPECT_NEAR(runner.state()[0], atOne, 1e-9) << "after setK 0 the state must hold";
    EXPECT_EQ(runner.signalsProcessed(), 1u);
}

TEST(SolverRunner, ZeroCrossingFiresEventAndSignal) {
    // Falling ball; the streamer raises "impact" toward a capsule when
    // height crosses zero.
    static rt::Protocol impactProto = [] {
        rt::Protocol p{"Impact"};
        p.out("impact"); // sent by the streamer (base role)
        return p;
    }();

    struct Ball : f::Streamer {
        Ball(std::string n, f::Streamer* parent)
            : f::Streamer(std::move(n), parent), sp(*this, "ev", impactProto, false) {}
        f::SPort sp;
        double impactTime = -1;

        std::size_t stateSize() const override { return 2; }
        void initState(double, std::span<double> x) override {
            x[0] = 10.0; // height
            x[1] = 0.0;  // velocity
        }
        void derivatives(double, std::span<const double> x, std::span<double> dx) override {
            dx[0] = x[1];
            dx[1] = -9.81;
        }
        bool hasEvent() const override { return true; }
        double eventFunction(double, std::span<const double> x) const override { return x[0]; }
        void onEvent(double t, bool) override {
            impactTime = t;
            sp.send("impact", t);
        }
    };

    struct Watcher : rt::Capsule {
        Watcher() : rt::Capsule("watcher"), port(*this, "p", impactProto, true) {}
        rt::Port port;
        double impactAt = -1;

    protected:
        void onMessage(const rt::Message& m) override {
            if (m.signal == rt::signal("impact")) impactAt = m.dataOr<double>(-1);
        }
    } watcher;

    Plain top{"top"};
    Ball ball("ball", &top);
    rt::connect(watcher.port, ball.sp.rtPort());

    f::SolverRunner runner(top, s::makeIntegrator("RK4"), 0.05);
    runner.initialize(0.0);
    runner.advanceTo(2.0);

    const double expected = std::sqrt(2.0 * 10.0 / 9.81);
    EXPECT_NEAR(ball.impactTime, expected, 1e-6);
    EXPECT_NEAR(watcher.impactAt, expected, 1e-6);
    EXPECT_EQ(runner.eventsFired(), 1u);
}

TEST(SolverRunner, UpdatePassDrivesDiscreteBlocks) {
    Plain top{"top"};
    c::Sine sine("sine", &top, 1.0, 2.0 * M_PI); // 1 Hz
    c::ZeroOrderHold zoh("zoh", &top, 0.25);
    c::Recorder rec("rec", &top);
    f::flow(sine.out(), zoh.in());
    f::flow(zoh.out(), rec.in());

    f::SolverRunner runner(top, s::makeIntegrator("RK4"), 0.05);
    runner.initialize(0.0);
    runner.advanceTo(1.0);
    // ZOH output only changes every 0.25 s: count distinct values.
    int changes = 0;
    double prev = rec.samples().front().v;
    for (const auto& sVal : rec.samples()) {
        if (sVal.v != prev) {
            ++changes;
            prev = sVal.v;
        }
    }
    EXPECT_LE(changes, 5);
    EXPECT_GE(changes, 3);
}

TEST(SolverRunner, AdvanceToIsIdempotentAtTarget) {
    DecayModel m;
    f::SolverRunner runner(m.top, s::makeIntegrator("RK4"), 0.1);
    runner.initialize(0.0);
    runner.advanceTo(1.0);
    const auto steps = runner.majorSteps();
    runner.advanceTo(1.0);
    EXPECT_EQ(runner.majorSteps(), steps);
}
