/// Tests for the post-mortem flight recorder: the bounded note ring, dump
/// JSON shape, and the automatic dump triggers on the executor fault path
/// and on a tank-style SPort-injected fault missing its deadline.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <span>
#include <sstream>
#include <string>

#include "flow/flow.hpp"
#include "json_lint.hpp"
#include "obs/obs.hpp"
#include "rt/rt.hpp"
#include "sim/sim.hpp"

namespace obs = urtx::obs;
namespace rt = urtx::rt;
namespace f = urtx::flow;
namespace sim = urtx::sim;
namespace s = urtx::solver;

namespace {

std::string readFile(const std::string& path) {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

struct FlightTest : ::testing::Test {
    void SetUp() override {
#if !URTX_OBS
        GTEST_SKIP() << "observability compiled out (URTX_OBS=0)";
#endif
        obs::wellknown();
        obs::Registry::global().reset();
        obs::Monitor::global().clear();
        obs::FlightRecorder::global().clear();
        obs::FlightRecorder::global().setCapacity(1024);
    }
    void TearDown() override {
        obs::Monitor::global().setEnabled(false);
        obs::FlightRecorder::global().setEnabled(false);
        obs::Monitor::global().clear();
        obs::Registry::global().reset();
    }
};

} // namespace

TEST_F(FlightTest, NotesAccumulateAndDumpStringIsWellFormedJson) {
    obs::FlightRecorder& rec = obs::FlightRecorder::global();
    rec.setEnabled(true);
    rec.note("test", 7, "first %d", 1);
    rec.note("test", 7, "second %s", "note");
    rec.note("test", 0, "unlinked");
    rec.setEnabled(false);

    EXPECT_EQ(rec.eventCount(), 3u);
    EXPECT_EQ(rec.droppedCount(), 0u);
    const std::string dump = rec.dumpString("unit \"quoted\" reason");
    std::string err;
    ASSERT_TRUE(urtx::testjson::wellFormed(dump, &err)) << err << "\n" << dump;
    EXPECT_NE(dump.find("\"reason\":\"unit \\\"quoted\\\" reason\""), std::string::npos);
    EXPECT_NE(dump.find("first 1"), std::string::npos);
    EXPECT_NE(dump.find("second note"), std::string::npos);
    EXPECT_NE(dump.find("\"span\":7"), std::string::npos);
    EXPECT_NE(dump.find("\"metrics\":{"), std::string::npos);
}

TEST_F(FlightTest, BoundedRingKeepsNewestNotes) {
    obs::FlightRecorder& rec = obs::FlightRecorder::global();
    rec.setCapacity(4);
    rec.setEnabled(true);
    for (int i = 0; i < 10; ++i) rec.note("test", 0, "note-%03d", i);
    rec.setEnabled(false);

    EXPECT_EQ(rec.eventCount(), 4u);
    EXPECT_EQ(rec.droppedCount(), 6u);
    const std::string dump = rec.dumpString("wrap");
    EXPECT_EQ(dump.find("note-005"), std::string::npos) << "oldest notes must be gone";
    EXPECT_NE(dump.find("note-006"), std::string::npos);
    EXPECT_NE(dump.find("note-009"), std::string::npos);
    EXPECT_NE(dump.find("\"events_dropped\":6"), std::string::npos);
}

TEST_F(FlightTest, DumpNowWritesFileAndCounts) {
    const std::string path = "/tmp/urtx_flight_dumpnow.json";
    std::remove(path.c_str());
    obs::FlightRecorder& rec = obs::FlightRecorder::global();
    rec.setDumpPath(path);
    rec.setEnabled(true);
    rec.note("test", 0, "before the dump");
    const std::uint64_t dumps0 = rec.dumps();
    EXPECT_EQ(rec.dumpNow("user requested"), path);
    rec.setEnabled(false);

    EXPECT_EQ(rec.dumps(), dumps0 + 1);
    EXPECT_EQ(rec.lastDumpPath(), path);
    const std::string dump = readFile(path);
    std::string err;
    ASSERT_TRUE(urtx::testjson::wellFormed(dump, &err)) << err;
    EXPECT_NE(dump.find("\"reason\":\"user requested\""), std::string::npos);
    EXPECT_NE(dump.find("before the dump"), std::string::npos);
    const obs::Snapshot snap = obs::Registry::global().snapshot();
    const auto* c = snap.counter("obs.postmortem_dumps");
    ASSERT_NE(c, nullptr);
    EXPECT_GE(c->value, 1u);
}

TEST_F(FlightTest, DumpNowToUnwritablePathFailsQuietly) {
    obs::FlightRecorder& rec = obs::FlightRecorder::global();
    rec.setDumpPath("/no/such/dir/urtx.json");
    EXPECT_EQ(rec.dumpNow("doomed"), "") << "I/O failure must not throw";
    rec.setDumpPath("urtx_postmortem.json");
}

namespace {

/// Streamer whose derivatives blow up past a trigger time — the solver
/// worker throws mid-grant.
struct Exploding : f::Streamer {
    Exploding(std::string n, f::Streamer* p, double tBoom)
        : f::Streamer(std::move(n), p), tBoom_(tBoom) {}
    double tBoom_;
    std::size_t stateSize() const override { return 1; }
    void initState(double, std::span<double> x) override { x[0] = 1.0; }
    void derivatives(double t, std::span<const double>, std::span<double> dx) override {
        if (t > tBoom_) throw std::runtime_error("equations diverged (test fault)");
        dx[0] = -1.0;
    }
    bool directFeedthrough() const override { return false; }
};

} // namespace

TEST_F(FlightTest, SolverExceptionTriggersPostmortemDump) {
    const std::string path = "/tmp/urtx_flight_solverfault.json";
    std::remove(path.c_str());
    obs::FlightRecorder& rec = obs::FlightRecorder::global();
    rec.setDumpPath(path);
    rec.setEnabled(true);

    sim::HybridSystem sys;
    f::Streamer group{"g"};
    Exploding plant("boom", &group, 0.05);
    sys.addStreamerGroup(group, s::makeIntegrator("RK4"), 0.01);
    EXPECT_THROW(sys.run(0.2, sim::ExecutionMode::MultiThread), std::runtime_error);
    rec.setEnabled(false);

    const std::string dump = readFile(path);
    ASSERT_FALSE(dump.empty()) << "solver fault must auto-dump";
    std::string err;
    ASSERT_TRUE(urtx::testjson::wellFormed(dump, &err)) << err;
    EXPECT_NE(dump.find("equations diverged (test fault)"), std::string::npos);
    EXPECT_NE(dump.find("FAULT:"), std::string::npos);
}

namespace {

/// Minimal replica of the tank example's fault path: a capsule injects
/// "stickValve" into the plant through a dedicated SPort at t = 0.03 s.
rt::Protocol& tankProto() {
    static rt::Protocol p = [] {
        rt::Protocol q{"FlightTank"};
        q.in("stickValve");
        return q;
    }();
    return p;
}

struct MiniTank : f::Streamer {
    MiniTank(std::string n, f::Streamer* p)
        : f::Streamer(std::move(n), p), faultIn(*this, "faultIn", tankProto(), false) {
        setParam("stuck", 0.0);
    }
    f::SPort faultIn;
    std::size_t stateSize() const override { return 1; }
    void initState(double, std::span<double> x) override { x[0] = 1.0; }
    void derivatives(double, std::span<const double> x, std::span<double> dx) override {
        dx[0] = param("stuck") > 0.5 ? 0.0 : -0.2 * x[0];
    }
    bool directFeedthrough() const override { return false; }
    void onSignal(f::SPort&, const rt::Message& m) override {
        if (m.signal == rt::signal("stickValve")) setParam("stuck", 1.0);
    }
};

struct MiniInjector : rt::Capsule {
    explicit MiniInjector(std::string n)
        : rt::Capsule(std::move(n)), plant(*this, "plant", tankProto(), true) {}
    rt::Port plant;

protected:
    void onInit() override { informIn(0.03, "inject"); }
    void onMessage(const rt::Message& m) override {
        if (m.signalName() == "inject") plant.send("stickValve", now());
    }
};

} // namespace

TEST_F(FlightTest, TankFaultInjectionDumpsItsCausalChain) {
    const std::string path = "/tmp/urtx_flight_tankfault.json";
    std::remove(path.c_str());
    obs::FlightRecorder& rec = obs::FlightRecorder::global();
    rec.setDumpPath(path);
    rec.setEnabled(true);
    obs::Monitor::global().setEnabled(true);
    // Budget 0 with abortOnMiss: the injected fault's SPort hop is always
    // "late", forcing the automatic post-mortem — the tank-example fault
    // drill from the issue.
    obs::Monitor::global().require(rt::signal("stickValve"), "stickValve", 0.0,
                                   /*abortOnMiss=*/true);

    sim::HybridSystem sys;
    f::Streamer group{"g"};
    MiniTank tank("tank", &group);
    MiniInjector fault("fault");
    rt::connect(fault.plant, tank.faultIn.rtPort());
    sys.addCapsule(fault);
    sys.addStreamerGroup(group, s::makeIntegrator("RK4"), 0.01);
    sys.run(0.1, sim::ExecutionMode::SingleThread);
    obs::Monitor::global().setEnabled(false);
    rec.setEnabled(false);

    EXPECT_GT(tank.param("stuck"), 0.5) << "fault must have reached the plant";
    const std::string dump = readFile(path);
    ASSERT_FALSE(dump.empty()) << "missed deadline with abortOnMiss must auto-dump";
    std::string err;
    ASSERT_TRUE(urtx::testjson::wellFormed(dump, &err)) << err;
    EXPECT_NE(dump.find("deadline miss: signal 'stickValve'"), std::string::npos);
    // Causal chain of the faulting signal: emit at the injector's port,
    // handle at the SPort drain, same span id.
    const auto emitAt = dump.find("emit stickValve #");
    ASSERT_NE(emitAt, std::string::npos) << dump;
    const std::size_t digits = emitAt + 17;
    const std::string span =
        dump.substr(digits, dump.find_first_not_of("0123456789", digits) - digits);
    EXPECT_NE(dump.find("handle stickValve #" + span), std::string::npos)
        << "dump must contain the handle half of span " << span;
    EXPECT_NE(dump.find("DEADLINE MISS stickValve at sport.drain"), std::string::npos);
    EXPECT_NE(dump.find("\"metrics\":"), std::string::npos);
}

TEST_F(FlightTest, TankFaultChainAlsoCapturedInMultiThread) {
    const std::string path = "/tmp/urtx_flight_tankfault_mt.json";
    std::remove(path.c_str());
    obs::FlightRecorder& rec = obs::FlightRecorder::global();
    rec.setDumpPath(path);
    rec.setEnabled(true);
    obs::Monitor::global().setEnabled(true);
    obs::Monitor::global().require(rt::signal("stickValve"), "stickValve", 0.0,
                                   /*abortOnMiss=*/true);

    sim::HybridSystem sys;
    f::Streamer group{"g"};
    MiniTank tank("tank", &group);
    MiniInjector fault("fault");
    rt::connect(fault.plant, tank.faultIn.rtPort());
    sys.addCapsule(fault);
    sys.addStreamerGroup(group, s::makeIntegrator("RK4"), 0.01);
    sys.run(0.1, sim::ExecutionMode::MultiThread);
    obs::Monitor::global().setEnabled(false);
    rec.setEnabled(false);

    EXPECT_GT(tank.param("stuck"), 0.5);
    const std::string dump = readFile(path);
    ASSERT_FALSE(dump.empty());
    std::string err;
    ASSERT_TRUE(urtx::testjson::wellFormed(dump, &err)) << err;
    EXPECT_NE(dump.find("emit stickValve #"), std::string::npos);
    EXPECT_NE(dump.find("handle stickValve #"), std::string::npos);
}
