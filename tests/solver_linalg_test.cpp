#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "solver/linalg.hpp"

namespace s = urtx::solver;

TEST(Linalg, Norms) {
    s::Vec v{3.0, -4.0};
    EXPECT_DOUBLE_EQ(s::norm2(v), 5.0);
    EXPECT_DOUBLE_EQ(s::normInf(v), 4.0);
    EXPECT_DOUBLE_EQ(s::norm2({}), 0.0);
}

TEST(Linalg, AxpyAndDot) {
    s::Vec a{1.0, 2.0}, b{10.0, 20.0};
    s::axpy(0.5, b, a);
    EXPECT_DOUBLE_EQ(a[0], 6.0);
    EXPECT_DOUBLE_EQ(a[1], 12.0);
    EXPECT_DOUBLE_EQ(s::dot({1, 2, 3}, {4, 5, 6}), 32.0);
    EXPECT_THROW(s::axpy(1.0, {1.0}, a), std::invalid_argument);
    EXPECT_THROW(s::dot({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Linalg, MatrixInitializerAndAccess) {
    s::Matrix m{{1, 2, 3}, {4, 5, 6}};
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
    EXPECT_THROW((s::Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Linalg, IdentityAndTranspose) {
    auto i3 = s::Matrix::identity(3);
    EXPECT_DOUBLE_EQ(i3(1, 1), 1.0);
    EXPECT_DOUBLE_EQ(i3(0, 1), 0.0);
    s::Matrix m{{1, 2}, {3, 4}, {5, 6}};
    auto t = m.transposed();
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.cols(), 3u);
    EXPECT_DOUBLE_EQ(t(1, 2), 6.0);
}

TEST(Linalg, MatVec) {
    s::Matrix m{{1, 2}, {3, 4}};
    auto y = m.mul(s::Vec{1.0, 1.0});
    EXPECT_DOUBLE_EQ(y[0], 3.0);
    EXPECT_DOUBLE_EQ(y[1], 7.0);
    EXPECT_THROW(m.mul(s::Vec{1.0}), std::invalid_argument);
}

TEST(Linalg, MatMul) {
    s::Matrix a{{1, 2}, {3, 4}};
    s::Matrix b{{0, 1}, {1, 0}};
    auto c = a.mul(b);
    EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(Linalg, LuSolvesKnownSystem) {
    s::Matrix a{{2, 1}, {1, 3}};
    auto x = s::solve(a, {5.0, 10.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Linalg, LuRequiresPivoting) {
    // Zero on the diagonal forces a row swap.
    s::Matrix a{{0, 1}, {1, 0}};
    auto x = s::solve(a, {2.0, 3.0});
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Linalg, LuSingularThrows) {
    s::Matrix a{{1, 2}, {2, 4}};
    EXPECT_THROW(s::LuFactor{a}, std::runtime_error);
}

TEST(Linalg, LuNonSquareThrows) {
    s::Matrix a(2, 3);
    EXPECT_THROW(s::LuFactor{a}, std::invalid_argument);
}

TEST(Linalg, Determinant) {
    s::Matrix a{{2, 0}, {0, 3}};
    EXPECT_NEAR(s::LuFactor(a).determinant(), 6.0, 1e-12);
    s::Matrix b{{0, 1}, {1, 0}};
    EXPECT_NEAR(s::LuFactor(b).determinant(), -1.0, 1e-12);
}

TEST(Linalg, RandomSystemsRoundTrip) {
    std::mt19937 rng(42);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t n = 1 + static_cast<std::size_t>(trial % 8);
        s::Matrix a(n, n);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
            a(i, i) += 4.0; // diagonally dominant => well conditioned
        }
        s::Vec xTrue(n);
        for (auto& v : xTrue) v = dist(rng);
        const s::Vec b = a.mul(xTrue);
        const s::Vec x = s::solve(a, b);
        for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xTrue[i], 1e-9);
    }
}
