#include <gtest/gtest.h>

#include <cmath>

#include "control/control.hpp"
#include "flow/relay.hpp"
#include "flow/solver_runner.hpp"

namespace f = urtx::flow;
namespace c = urtx::control;
namespace s = urtx::solver;

namespace {

struct Plain : f::Streamer {
    using f::Streamer::Streamer;
};

f::SolverRunner run(f::Streamer& top, double tEnd, double dt = 0.001,
                    const char* method = "RK4") {
    f::SolverRunner runner(top, s::makeIntegrator(method), dt);
    runner.initialize(0.0);
    runner.advanceTo(tEnd);
    return runner;
}

} // namespace

TEST(Dynamics, IntegratorRampsOnConstantInput) {
    Plain top{"top"};
    c::Constant u("u", &top, 2.0);
    c::Integrator integ("x", &top, 1.0);
    c::Recorder rec("rec", &top);
    f::Relay r("r", &top, f::FlowType::real(), 2);
    f::flow(u.out(), integ.in());
    f::flow(integ.out(), r.in());
    f::flow(r.out(0), rec.in());
    // second relay branch dangles into a sink
    c::Recorder rec2("rec2", &top);
    f::flow(r.out(1), rec2.in());

    run(top, 3.0);
    EXPECT_NEAR(rec.last(), 1.0 + 2.0 * 3.0, 1e-9);
}

TEST(Dynamics, LimitedIntegratorFreezesAtBound) {
    Plain top{"top"};
    c::Constant u("u", &top, 1.0);
    c::Integrator integ("x", &top, 0.0);
    integ.withLimits(-1.0, 0.5);
    c::Recorder rec("rec", &top);
    f::flow(u.out(), integ.in());
    f::flow(integ.out(), rec.in());

    run(top, 2.0);
    EXPECT_NEAR(rec.last(), 0.5, 1e-6) << "must saturate at the upper bound";
    EXPECT_THROW(c::Integrator("bad", &top, 0.0).withLimits(1.0, -1.0), std::invalid_argument);
}

TEST(Dynamics, FirstOrderLagStepResponse) {
    Plain top{"top"};
    c::Step u("u", &top, 0.0, 0.0, 1.0);
    c::FirstOrderLag lag("lag", &top, 0.5);
    c::Recorder rec("rec", &top);
    f::flow(u.out(), lag.in());
    f::flow(lag.out(), rec.in());

    run(top, 1.0);
    EXPECT_NEAR(rec.last(), 1.0 - std::exp(-2.0), 1e-5);
    EXPECT_THROW(c::FirstOrderLag("bad", &top, 0.0), std::invalid_argument);
}

TEST(Dynamics, StateSpaceMatchesHandRolledOscillator) {
    // x'' = -x: A = [[0,1],[-1,0]], C = [1,0]. One full period returns x0.
    Plain top{"top"};
    c::Constant u("u", &top, 0.0);
    c::StateSpace ss("ss", &top, s::Matrix{{0, 1}, {-1, 0}}, s::Matrix{{0}, {0}},
                     s::Matrix{{1, 0}}, s::Matrix{{0}}, s::Vec{1.0, 0.0});
    c::Recorder rec("rec", &top);
    f::flow(u.out(), ss.in());
    f::flow(ss.out(), rec.in());

    run(top, 2.0 * M_PI);
    EXPECT_NEAR(rec.last(), 1.0, 1e-4);
}

TEST(Dynamics, StateSpaceShapeValidation) {
    Plain top{"top"};
    EXPECT_THROW(c::StateSpace("bad", &top, s::Matrix{{0, 1}}, s::Matrix{{0}}, s::Matrix{{1}},
                               s::Matrix{{0}}),
                 std::invalid_argument);
    EXPECT_THROW(c::StateSpace("bad2", &top, s::Matrix{{0}}, s::Matrix{{0}, {1}},
                               s::Matrix{{1}}, s::Matrix{{0}}),
                 std::invalid_argument);
    EXPECT_THROW(c::StateSpace("bad3", &top, s::Matrix{{0}}, s::Matrix{{1}}, s::Matrix{{1}},
                               s::Matrix{{0}}, s::Vec{1.0, 2.0}),
                 std::invalid_argument);
}

TEST(Dynamics, StateSpaceFeedthroughDetection) {
    Plain top{"top"};
    c::StateSpace noD("noD", &top, s::Matrix{{0}}, s::Matrix{{1}}, s::Matrix{{1}},
                      s::Matrix{{0}});
    c::StateSpace withD("withD", &top, s::Matrix{{0}}, s::Matrix{{1}}, s::Matrix{{1}},
                        s::Matrix{{2}});
    EXPECT_FALSE(noD.directFeedthrough());
    EXPECT_TRUE(withD.directFeedthrough());
}

TEST(Dynamics, TransferFunctionFirstOrderStep) {
    // 1/(s+1): step response 1 - e^{-t}.
    Plain top{"top"};
    c::Step u("u", &top, 0.0);
    c::TransferFunction tf("tf", &top, {1.0}, {1.0, 1.0});
    c::Recorder rec("rec", &top);
    f::flow(u.out(), tf.in());
    f::flow(tf.out(), rec.in());
    run(top, 2.0);
    EXPECT_NEAR(rec.last(), 1.0 - std::exp(-2.0), 1e-5);
}

TEST(Dynamics, TransferFunctionSecondOrderDamped) {
    // 1/(s^2 + 2 zeta wn s + wn^2) with zeta=1 (critical), wn=1:
    // step response: 1 - (1+t) e^{-t}.
    Plain top{"top"};
    c::Step u("u", &top, 0.0);
    c::TransferFunction tf("tf", &top, {1.0}, {1.0, 2.0, 1.0});
    c::Recorder rec("rec", &top);
    f::flow(u.out(), tf.in());
    f::flow(tf.out(), rec.in());
    run(top, 3.0);
    EXPECT_NEAR(rec.last(), 1.0 - 4.0 * std::exp(-3.0), 1e-5);
}

TEST(Dynamics, TransferFunctionWithFeedthrough) {
    // (s+2)/(s+1) has d=1; at t=0+ output jumps to 1 on a unit step.
    Plain top{"top"};
    c::Step u("u", &top, 0.0);
    c::TransferFunction tf("tf", &top, {1.0, 2.0}, {1.0, 1.0});
    c::Recorder rec("rec", &top);
    f::flow(u.out(), tf.in());
    f::flow(tf.out(), rec.in());
    EXPECT_TRUE(tf.directFeedthrough());
    run(top, 5.0);
    // Analytic step response: y(t) = 2 - e^{-t}.
    EXPECT_NEAR(rec.last(), 2.0 - std::exp(-5.0), 1e-5);
}

TEST(Dynamics, TransferFunctionRejectsImproper) {
    Plain top{"top"};
    EXPECT_THROW(c::TransferFunction("bad", &top, {1.0, 0.0, 0.0}, {1.0, 1.0}),
                 std::invalid_argument);
    EXPECT_THROW(c::TransferFunction("bad2", &top, {1.0}, {0.0}), std::invalid_argument);
}

TEST(Dynamics, PidProportionalOnly) {
    Plain top{"top"};
    c::Constant e("e", &top, 2.0);
    c::Pid pid("pid", &top, 3.0, 0.0, 0.0);
    c::Recorder rec("rec", &top);
    f::flow(e.out(), pid.in());
    f::flow(pid.out(), rec.in());
    run(top, 0.1);
    EXPECT_NEAR(rec.last(), 6.0, 1e-9);
}

TEST(Dynamics, PidIntegralRamps) {
    Plain top{"top"};
    c::Constant e("e", &top, 1.0);
    c::Pid pid("pid", &top, 0.0, 2.0, 0.0);
    c::Recorder rec("rec", &top);
    f::flow(e.out(), pid.in());
    f::flow(pid.out(), rec.in());
    run(top, 1.0);
    EXPECT_NEAR(rec.last(), 2.0, 1e-6) << "ki * integral(1) over 1 s";
}

TEST(Dynamics, PidClosedLoopRegulatesFirstOrderPlant) {
    // Plant dx = u - x; PI controller drives x -> 1.
    Plain top{"top"};
    c::Step sp("sp", &top, 0.0, 0.0, 1.0);
    c::Sum err("err", &top, "+-");
    c::Pid pid("pid", &top, 4.0, 4.0, 0.0);
    c::FirstOrderLag plant("plant", &top, 1.0);
    f::Relay meas("meas", &top, f::FlowType::real(), 2);
    c::Recorder rec("rec", &top);

    f::flow(sp.out(), err.in(0));
    f::flow(meas.out(0), err.in(1));
    f::flow(err.out(), pid.in());
    f::flow(pid.out(), plant.in());
    f::flow(plant.out(), meas.in());
    f::flow(meas.out(1), rec.in());

    run(top, 5.0);
    EXPECT_NEAR(rec.last(), 1.0, 1e-3) << "PI must remove steady-state error";
}

TEST(Dynamics, PidAntiWindupRecoversFaster) {
    // Saturated actuator with big setpoint; compare windup vs anti-windup
    // recovery after the setpoint drops.
    double overshootLimited = 0.0, overshootUnlimited = 0.0;
    for (int variant = 0; variant < 2; ++variant) {
        Plain top{"top"};
        c::Step sp("sp", &top, 0.0, 0.0, 5.0);
        c::Sum err("err", &top, "+-");
        c::Pid pid("pid", &top, 1.0, 5.0, 0.0);
        if (variant == 0) pid.withLimits(-1.0, 1.0);
        c::Saturation act("act", &top, -1.0, 1.0);
        c::FirstOrderLag plant("plant", &top, 1.0);
        f::Relay meas("meas", &top, f::FlowType::real(), 2);
        c::Recorder rec("rec", &top);
        f::flow(sp.out(), err.in(0));
        f::flow(meas.out(0), err.in(1));
        f::flow(err.out(), pid.in());
        f::flow(pid.out(), act.in());
        f::flow(act.out(), plant.in());
        f::flow(plant.out(), meas.in());
        f::flow(meas.out(1), rec.in());
        f::SolverRunner runner(top, s::makeIntegrator("RK4"), 0.005);
        runner.initialize(0.0);
        runner.advanceTo(4.0);
        sp.setParam("after", 0.5); // drop the setpoint
        runner.advanceTo(12.0);
        double peakAfterDrop = 0.0;
        for (const auto& smp : rec.samples()) {
            if (smp.t > 4.0) peakAfterDrop = std::max(peakAfterDrop, smp.v);
        }
        (variant == 0 ? overshootLimited : overshootUnlimited) = peakAfterDrop;
    }
    EXPECT_LT(overshootLimited, overshootUnlimited)
        << "anti-windup must reduce post-saturation overshoot";
}

TEST(Dynamics, RateLimiterBoundsSlope) {
    Plain top{"top"};
    c::Step u("u", &top, 0.5, 0.0, 10.0);
    c::RateLimiter rl("rl", &top, 2.0);
    c::Recorder rec("rec", &top);
    f::flow(u.out(), rl.in());
    f::flow(rl.out(), rec.in());
    run(top, 3.0, 0.01);
    // After the step at 0.5 s, output climbs at <= 2/s: at t=3 -> <= 5.
    double maxSlope = 0.0;
    const auto& ss = rec.samples();
    for (std::size_t i = 1; i < ss.size(); ++i) {
        const double slope = (ss[i].v - ss[i - 1].v) / (ss[i].t - ss[i - 1].t);
        maxSlope = std::max(maxSlope, slope);
    }
    EXPECT_LE(maxSlope, 2.0 + 1e-6);
    EXPECT_NEAR(rec.last(), 5.0, 0.1);
}

TEST(Dynamics, TransportDelayShiftsSignal) {
    Plain top{"top"};
    c::Ramp u("u", &top, 1.0, 0.0);
    c::TransportDelay delay("delay", &top, 0.5);
    c::Recorder rec("rec", &top);
    f::flow(u.out(), delay.in());
    f::flow(delay.out(), rec.in());
    run(top, 2.0, 0.01);
    // y(2) = u(1.5) = 1.5.
    EXPECT_NEAR(rec.last(), 1.5, 0.02);
}

TEST(Dynamics, ZeroOrderHoldSamplesPeriodically) {
    Plain top{"top"};
    c::Ramp u("u", &top, 1.0);
    c::ZeroOrderHold zoh("zoh", &top, 0.5);
    c::Recorder rec("rec", &top);
    f::flow(u.out(), zoh.in());
    f::flow(zoh.out(), rec.in());
    run(top, 2.0, 0.05);
    // Held value lags the ramp by at most one period.
    for (const auto& smp : rec.samples()) {
        EXPECT_LE(smp.t - smp.v, 0.5 + 0.05 + 1e-9) << "at t=" << smp.t;
        EXPECT_GE(smp.t - smp.v, -1e-9);
    }
    EXPECT_THROW(c::ZeroOrderHold("bad", &top, 0.0), std::invalid_argument);
}

TEST(Dynamics, RecorderMetrics) {
    Plain top{"top"};
    c::Step u("u", &top, 0.0, 0.0, 1.0);
    c::FirstOrderLag lag("lag", &top, 0.2);
    c::Recorder rec("rec", &top);
    f::flow(u.out(), lag.in());
    f::flow(lag.out(), rec.in());
    run(top, 3.0, 0.01);
    EXPECT_NEAR(rec.peakAbs(), 1.0, 1e-3);
    const double ts = rec.settlingTime(1.0, 0.02);
    EXPECT_GT(ts, 0.0);
    EXPECT_LT(ts, 1.5) << "tau=0.2 settles to 2% in ~4 tau";
}
