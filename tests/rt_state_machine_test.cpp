#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rt/state_machine.hpp"

namespace rt = urtx::rt;

namespace {

rt::Message msg(const char* sig) { return rt::Message(rt::signal(sig)); }

/// Builds a machine and records every entry/exit/effect into `trace`.
struct TraceFixture : ::testing::Test {
    rt::StateMachine m;
    std::vector<std::string> trace;

    rt::State& traced(std::string name, rt::State* parent = nullptr) {
        rt::State& s = m.state(name, parent);
        trace_hooks(s, name);
        return s;
    }

    void trace_hooks(rt::State& s, const std::string& name) {
        s.onEntry([this, name] { trace.push_back("+" + name); });
        s.onExit([this, name] { trace.push_back("-" + name); });
    }

    std::string joined() const {
        std::string out;
        for (const auto& t : trace) {
            if (!out.empty()) out += " ";
            out += t;
        }
        return out;
    }
};

} // namespace

using StateMachineTest = TraceFixture;

TEST_F(StateMachineTest, StartEntersInitialState) {
    auto& idle = traced("Idle");
    traced("Busy");
    m.start();
    EXPECT_EQ(m.current(), &idle);
    EXPECT_EQ(joined(), "+Idle");
    EXPECT_TRUE(m.started());
}

TEST_F(StateMachineTest, StartIsIdempotent) {
    traced("Idle");
    m.start();
    m.start();
    EXPECT_EQ(joined(), "+Idle");
}

TEST_F(StateMachineTest, ExplicitInitialOverridesFirstChild) {
    traced("A");
    auto& b = traced("B");
    m.initial(b);
    m.start();
    EXPECT_EQ(m.current(), &b);
}

TEST_F(StateMachineTest, SimpleTransitionRunsExitEffectEntry) {
    auto& a = traced("A");
    auto& b = traced("B");
    m.transition(a, b).on("go").act([this](const rt::Message&) { trace.push_back("fx"); });
    m.start();
    EXPECT_TRUE(m.dispatch(msg("go")));
    EXPECT_EQ(joined(), "+A -A fx +B");
    EXPECT_EQ(m.current(), &b);
    EXPECT_EQ(m.transitionsTaken(), 1u);
}

TEST_F(StateMachineTest, UnmatchedSignalIsUnhandled) {
    auto& a = traced("A");
    auto& b = traced("B");
    m.transition(a, b).on("go");
    m.start();
    EXPECT_FALSE(m.dispatch(msg("nope")));
    EXPECT_EQ(m.current(), &a);
    EXPECT_EQ(m.messagesUnhandled(), 1u);
}

TEST_F(StateMachineTest, GuardBlocksTransition) {
    auto& a = traced("A");
    auto& b = traced("B");
    bool open = false;
    m.transition(a, b).on("go").when([&](const rt::Message&) { return open; });
    m.start();
    EXPECT_FALSE(m.dispatch(msg("go")));
    open = true;
    EXPECT_TRUE(m.dispatch(msg("go")));
    EXPECT_EQ(m.current(), &b);
}

TEST_F(StateMachineTest, DeclarationOrderBreaksTies) {
    auto& a = traced("A");
    auto& b = traced("B");
    auto& c = traced("C");
    m.transition(a, b).on("go");
    m.transition(a, c).on("go");
    m.start();
    m.dispatch(msg("go"));
    EXPECT_EQ(m.current(), &b) << "first declared transition wins";
}

TEST_F(StateMachineTest, InternalTransitionDoesNotExit) {
    auto& a = traced("A");
    int count = 0;
    m.internal(a).on("poke").act([&](const rt::Message&) { ++count; });
    m.start();
    EXPECT_TRUE(m.dispatch(msg("poke")));
    EXPECT_EQ(count, 1);
    EXPECT_EQ(joined(), "+A") << "no exit/entry on internal transition";
    EXPECT_EQ(m.current(), &a);
}

TEST_F(StateMachineTest, SelfTransitionExitsAndReenters) {
    auto& a = traced("A");
    m.transition(a, a).on("reset");
    m.start();
    m.dispatch(msg("reset"));
    EXPECT_EQ(joined(), "+A -A +A");
}

TEST_F(StateMachineTest, CompositeEntryDescendsToInitialLeaf) {
    auto& run = traced("Run");
    auto& fast = traced("Fast", &run);
    traced("Slow", &run);
    m.start();
    EXPECT_EQ(m.current(), &fast);
    EXPECT_EQ(joined(), "+Run +Fast");
    EXPECT_TRUE(m.isIn(run));
    EXPECT_TRUE(m.isIn(fast));
}

TEST_F(StateMachineTest, InnermostTransitionWinsOverAncestor) {
    auto& run = traced("Run");
    auto& fast = traced("Fast", &run);
    auto& slow = traced("Slow", &run);
    auto& stop = traced("Stop");
    m.transition(run, stop).on("go");   // ancestor handler
    m.transition(fast, slow).on("go");  // leaf handler must win
    m.start();
    m.dispatch(msg("go"));
    EXPECT_EQ(m.current(), &slow);
}

TEST_F(StateMachineTest, AncestorHandlesWhatLeafIgnores) {
    auto& run = traced("Run");
    traced("Fast", &run);
    auto& stop = traced("Stop");
    m.transition(run, stop).on("halt");
    m.start();
    EXPECT_TRUE(m.dispatch(msg("halt")));
    EXPECT_EQ(m.current(), &stop);
    EXPECT_EQ(joined(), "+Run +Fast -Fast -Run +Stop");
}

TEST_F(StateMachineTest, TransitionBetweenNestedLeavesExitsToLca) {
    auto& a = traced("A");
    auto& a1 = traced("A1", &a);
    auto& b = traced("B");
    auto& b1 = traced("B1", &b);
    m.transition(a1, b1).on("jump");
    m.start();
    m.dispatch(msg("jump"));
    EXPECT_EQ(joined(), "+A +A1 -A1 -A +B +B1");
}

TEST_F(StateMachineTest, TransitionToCompositeAncestorReentersIt) {
    auto& run = traced("Run");
    auto& fast = traced("Fast", &run);
    traced("Slow", &run);
    m.transition(fast, run).on("restart");
    m.start();
    m.dispatch(msg("restart"));
    // External semantics: Run exits and re-enters, descending to initial.
    EXPECT_EQ(joined(), "+Run +Fast -Fast -Run +Run +Fast");
}

TEST_F(StateMachineTest, TransitionFromCompositeIntoOwnChild) {
    auto& run = traced("Run");
    auto& fast = traced("Fast", &run);
    auto& slow = traced("Slow", &run);
    m.transition(run, slow).on("shift");
    m.start();
    EXPECT_EQ(m.current(), &fast);
    m.dispatch(msg("shift"));
    EXPECT_EQ(m.current(), &slow);
    EXPECT_EQ(joined(), "+Run +Fast -Fast -Run +Run +Slow");
}

TEST_F(StateMachineTest, ShallowHistoryRestoresDirectChild) {
    auto& run = traced("Run");
    auto& fast = traced("Fast", &run);
    auto& slow = traced("Slow", &run);
    auto& paused = traced("Paused");
    m.transition(fast, slow).on("shift");
    m.transition(run, paused).on("pause");
    m.transition(paused, run).on("resume").toShallowHistory();
    m.start();
    m.dispatch(msg("shift")); // now in Slow
    m.dispatch(msg("pause"));
    trace.clear();
    m.dispatch(msg("resume"));
    EXPECT_EQ(m.current(), &slow) << "history must restore Slow, not initial Fast";
    EXPECT_EQ(joined(), "-Paused +Run +Slow");
}

TEST_F(StateMachineTest, DeepHistoryRestoresNestedLeaf) {
    auto& run = traced("Run");
    auto& auto_ = traced("Auto", &run);
    traced("Coarse", &auto_);
    auto& fine = traced("Fine", &auto_);
    auto& paused = traced("Paused");
    m.transition(*run.children()[0]->children()[0], fine).on("tune"); // Coarse -> Fine
    m.transition(run, paused).on("pause");
    m.transition(paused, run).on("resume").toDeepHistory();
    m.start();
    m.dispatch(msg("tune"));
    EXPECT_EQ(m.current(), &fine);
    m.dispatch(msg("pause"));
    m.dispatch(msg("resume"));
    EXPECT_EQ(m.current(), &fine) << "deep history must restore the nested leaf";
}

TEST_F(StateMachineTest, HistoryWithoutPriorVisitFallsBackToInitial) {
    auto& run = traced("Run");
    auto& fast = traced("Fast", &run);
    traced("Slow", &run);
    auto& idle = traced("Idle");
    m.initial(idle);
    m.transition(idle, run).on("go").toShallowHistory();
    m.start();
    m.dispatch(msg("go"));
    EXPECT_EQ(m.current(), &fast);
}

TEST_F(StateMachineTest, WildcardTriggerMatchesAnything) {
    auto& a = traced("A");
    auto& b = traced("B");
    m.transition(a, b).onAny();
    m.start();
    EXPECT_TRUE(m.dispatch(msg("whatever")));
    EXPECT_EQ(m.current(), &b);
}

TEST_F(StateMachineTest, MultipleTriggersOnOneTransition) {
    auto& a = traced("A");
    auto& b = traced("B");
    m.transition(a, b).on("x").on("y");
    m.start();
    EXPECT_TRUE(m.dispatch(msg("y")));
    EXPECT_EQ(m.current(), &b);
}

TEST_F(StateMachineTest, ReentrantDispatchThrows) {
    auto& a = traced("A");
    auto& b = traced("B");
    m.transition(a, b).on("go").act(
        [this](const rt::Message&) { EXPECT_THROW(m.dispatch(msg("go")), std::logic_error); });
    m.start();
    m.dispatch(msg("go"));
}

TEST_F(StateMachineTest, IsInBeforeStartIsFalse) {
    auto& a = traced("A");
    EXPECT_FALSE(m.isIn(a));
    EXPECT_EQ(m.current(), nullptr);
    EXPECT_EQ(m.currentPath(), "");
}

TEST_F(StateMachineTest, PathRendersNesting) {
    auto& run = traced("Run");
    auto& fast = traced("Fast", &run);
    m.start();
    EXPECT_EQ(fast.path(), "Run/Fast");
    EXPECT_EQ(m.currentPath(), "Run/Fast");
}

TEST_F(StateMachineTest, ForeignStateRejected) {
    rt::StateMachine other;
    auto& s1 = m.state("S1");
    auto& f = other.state("F");
    EXPECT_THROW(m.transition(s1, f), std::logic_error);
    EXPECT_THROW(m.state("child", &f), std::logic_error);
}

TEST_F(StateMachineTest, EntryActionsRunInRegistrationOrder) {
    auto& a = m.state("A");
    a.onEntry([this] { trace.push_back("first"); });
    a.onEntry([this] { trace.push_back("second"); });
    m.start();
    EXPECT_EQ(joined(), "first second");
}

// ----------------------------- completion transitions -----------------------

TEST_F(StateMachineTest, CompletionTransitionFiresOnEntry) {
    auto& deciding = traced("Deciding");
    auto& done = traced("Done");
    m.transition(deciding, done); // no trigger => completion
    m.start();
    EXPECT_EQ(m.current(), &done) << "completion must fire right after entry";
    EXPECT_EQ(joined(), "+Deciding -Deciding +Done");
}

TEST_F(StateMachineTest, GuardedCompletionActsAsChoicePoint) {
    auto& idle = traced("Idle");
    auto& check = traced("Check");
    auto& high = traced("High");
    auto& low = traced("Low");
    double level = 0.0;
    m.transition(idle, check).on("sample");
    m.transition(check, high).when([&](const rt::Message&) { return level > 0.5; });
    m.transition(check, low).when([&](const rt::Message&) { return level <= 0.5; });
    m.start();
    level = 0.9;
    m.dispatch(msg("sample"));
    EXPECT_EQ(m.current(), &high);
}

TEST_F(StateMachineTest, CompletionCascadeRunsToQuiescence) {
    auto& a = traced("A");
    auto& b = traced("B");
    auto& c2 = traced("C");
    auto& d = traced("D");
    m.transition(a, b).on("go");
    m.transition(b, c2);
    m.transition(c2, d);
    m.start();
    m.dispatch(msg("go"));
    EXPECT_EQ(m.current(), &d);
    EXPECT_EQ(m.transitionsTaken(), 3u);
}

TEST_F(StateMachineTest, CompletionGuardFalseHolds) {
    auto& a = traced("A");
    auto& b = traced("B");
    m.transition(a, b).when([](const rt::Message&) { return false; });
    m.start();
    EXPECT_EQ(m.current(), &a);
}

TEST_F(StateMachineTest, CompletionLoopDetected) {
    auto& a = traced("A");
    auto& b = traced("B");
    m.transition(a, b);
    m.transition(b, a);
    EXPECT_THROW(m.start(), std::logic_error);
}

TEST_F(StateMachineTest, CompletionNotTriggeredBySignals) {
    // A triggerless transition must not be selectable by dispatch() with an
    // arbitrary message when its guard blocked it at entry time.
    auto& a = traced("A");
    auto& b = traced("B");
    bool open = false;
    m.transition(a, b).when([&](const rt::Message&) { return open; });
    m.start();
    EXPECT_EQ(m.current(), &a);
    open = true;
    // dispatch of an unrelated signal is *unhandled* (no trigger matches) —
    // completion transitions are only re-evaluated after real transitions.
    EXPECT_FALSE(m.dispatch(msg("anything")));
    EXPECT_EQ(m.current(), &a);
}
