#include <gtest/gtest.h>

#include "codegen/dot_export.hpp"
#include "model/model.hpp"

namespace cg = urtx::codegen;
namespace m = urtx::model;
namespace f = urtx::flow;

namespace {

m::Model figModel() {
    m::Model mod;
    mod.name = "fig";
    mod.protocols.push_back({"Ctl", {{"go", "in"}}});
    mod.flowTypes.push_back({"Scalar", f::FlowType::real()});

    m::StreamerClassDecl sub;
    sub.name = "Sub";
    sub.solver = "RK4";
    sub.ports.push_back({"u", m::PortDecl::Kind::Data, "", false, false, "Scalar", "in"});
    sub.ports.push_back({"y", m::PortDecl::Kind::Data, "", false, false, "Scalar", "out"});
    mod.streamers.push_back(sub);

    m::StreamerClassDecl top;
    top.name = "Top";
    top.ports.push_back({"u", m::PortDecl::Kind::Data, "", false, false, "Scalar", "in"});
    top.ports.push_back({"s", m::PortDecl::Kind::Signal, "Ctl", true, false, "", ""});
    top.parts.push_back({"a", "Sub", m::PartDecl::Kind::Streamer});
    top.parts.push_back({"b", "Sub", m::PartDecl::Kind::Streamer});
    top.relays.push_back({"r", "Scalar", 2});
    top.flows.push_back({"u", "a.u"});
    top.flows.push_back({"a.y", "r.in"});
    top.flows.push_back({"r.out0", "b.u"});
    mod.streamers.push_back(top);

    m::CapsuleClassDecl cap;
    cap.name = "Cap";
    cap.ports.push_back({"p", m::PortDecl::Kind::Signal, "Ctl", false, false, "", ""});
    cap.parts.push_back({"grp", "Top", m::PartDecl::Kind::Streamer});
    cap.states.push_back({"Idle", "", true});
    cap.states.push_back({"Busy", "", false});
    cap.transitions.push_back({"Idle", "Busy", "go", "armed", "start"});
    mod.capsules.push_back(cap);
    mod.topCapsule = "Cap";
    return mod;
}

} // namespace

TEST(DotExport, StreamerDiagramHasClustersPortsAndFlows) {
    const auto mod = figModel();
    const auto dot = cg::streamerDot(mod, mod.streamers[1]);
    EXPECT_NE(dot.find("digraph Top"), std::string::npos);
    EXPECT_NE(dot.find("<<streamer>> Top"), std::string::npos);
    EXPECT_NE(dot.find("subgraph cluster_Top_a"), std::string::npos);
    EXPECT_NE(dot.find("shape=circle"), std::string::npos) << "DPorts are circles (paper)";
    EXPECT_NE(dot.find("shape=square"), std::string::npos) << "SPorts are squares (paper)";
    EXPECT_NE(dot.find("<<relay>> r"), std::string::npos);
    EXPECT_NE(dot.find("Top_a_y -> Top_r_in"), std::string::npos);
    EXPECT_NE(dot.find("label=\"flow\""), std::string::npos);
}

TEST(DotExport, CapsuleDiagramShowsContainment) {
    const auto mod = figModel();
    const auto dot = cg::capsuleDot(mod, mod.capsules[0]);
    EXPECT_NE(dot.find("<<capsule>> Cap"), std::string::npos);
    EXPECT_NE(dot.find("grp : Top"), std::string::npos);
    EXPECT_NE(dot.find("style=rounded"), std::string::npos) << "streamer parts rounded";
}

TEST(DotExport, MachineDiagramHasInitialAndGuards) {
    const auto mod = figModel();
    const auto dot = cg::machineDot(mod.capsules[0]);
    EXPECT_NE(dot.find("__init -> Idle"), std::string::npos);
    EXPECT_NE(dot.find("Idle -> Busy"), std::string::npos);
    EXPECT_NE(dot.find("go [armed] / start"), std::string::npos);
}

TEST(DotExport, ModelOverviewLinksContainment) {
    const auto mod = figModel();
    const auto dot = cg::modelDot(mod);
    EXPECT_NE(dot.find("Cap -> Top"), std::string::npos);
    EXPECT_NE(dot.find("__top -> Cap"), std::string::npos);
    EXPECT_NE(dot.find("<<streamer>> Sub"), std::string::npos);
}

TEST(DotExport, OutputIsBalanced) {
    // Cheap well-formedness: braces balance in every artifact.
    const auto mod = figModel();
    for (const std::string& dot :
         {cg::streamerDot(mod, mod.streamers[1]), cg::capsuleDot(mod, mod.capsules[0]),
          cg::machineDot(mod.capsules[0]), cg::modelDot(mod)}) {
        int depth = 0;
        for (char ch : dot) {
            if (ch == '{') ++depth;
            if (ch == '}') --depth;
            EXPECT_GE(depth, 0);
        }
        EXPECT_EQ(depth, 0);
    }
}
