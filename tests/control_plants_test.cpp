#include <gtest/gtest.h>

#include <cmath>

#include "control/control.hpp"
#include "control/plants.hpp"
#include "flow/relay.hpp"
#include "flow/solver_runner.hpp"

namespace f = urtx::flow;
namespace c = urtx::control;
namespace s = urtx::solver;

namespace {

struct Plain : f::Streamer {
    using f::Streamer::Streamer;
};

} // namespace

TEST(MassSpringDamper, UndampedOscillationFrequency) {
    // m=1, k=4 -> wn = 2 rad/s; period pi.
    Plain top{"top"};
    c::MassSpringDamper msd("msd", &top, 1.0, 0.0, 4.0);
    msd.setParam("x0", 1.0);
    f::SolverRunner runner(top, s::makeIntegrator("RK4"), 0.001);
    runner.initialize(0.0);
    runner.advanceTo(M_PI); // about one full period (grid may overshoot)
    const double t = runner.time();
    const auto x = runner.network().stateOf(msd, runner.state());
    EXPECT_NEAR(x[0], std::cos(2.0 * t), 1e-8);
    EXPECT_NEAR(x[1], -2.0 * std::sin(2.0 * t), 1e-8);
}

TEST(MassSpringDamper, EnergyDecaysWithDamping) {
    Plain top{"top"};
    c::MassSpringDamper msd("msd", &top, 1.0, 0.5, 4.0);
    msd.setParam("x0", 1.0);
    f::SolverRunner runner(top, s::makeIntegrator("RK4"), 0.01);
    runner.initialize(0.0);
    const double e0 = msd.energy(1.0, 0.0);
    double prevE = e0;
    runner.setProbe([&](double, const f::Network& net) {
        const auto x = net.stateOf(msd, runner.state());
        const double e = msd.energy(x[0], x[1]);
        EXPECT_LE(e, prevE + 1e-9) << "energy must be non-increasing with damping";
        prevE = e;
    });
    runner.advanceTo(5.0);
    EXPECT_LT(prevE, 0.2 * e0);
}

TEST(MassSpringDamper, StaticDeflectionUnderConstantForce) {
    // Steady state: x = F/k.
    Plain top{"top"};
    c::Constant force("F", &top, 8.0);
    c::MassSpringDamper msd("msd", &top, 1.0, 3.0, 4.0);
    f::flow(force.out(), msd.force());
    f::SolverRunner runner(top, s::makeIntegrator("RK4"), 0.01);
    runner.initialize(0.0);
    runner.advanceTo(15.0);
    const auto x = runner.network().stateOf(msd, runner.state());
    EXPECT_NEAR(x[0], 2.0, 1e-6);
}

TEST(DcMotor, SteadyStateSpeedMatchesFormula) {
    Plain top{"top"};
    c::Constant volts("V", &top, 12.0);
    c::DcMotor motor("motor", &top);
    f::flow(volts.out(), motor.voltage());
    f::SolverRunner runner(top, s::makeIntegrator("RK45"), 0.01);
    runner.initialize(0.0);
    runner.advanceTo(10.0);
    EXPECT_NEAR(motor.speed().get(), motor.steadyStateSpeed(12.0), 1e-4);
}

TEST(DcMotor, LoadTorqueSlowsShaft) {
    Plain top{"top"};
    c::Constant volts("V", &top, 12.0);
    c::Constant load("tau", &top, 0.005);
    c::DcMotor motor("motor", &top);
    f::flow(volts.out(), motor.voltage());
    f::flow(load.out(), motor.load());
    f::SolverRunner runner(top, s::makeIntegrator("RK45"), 0.01);
    runner.initialize(0.0);
    runner.advanceTo(10.0);
    EXPECT_LT(motor.speed().get(), motor.steadyStateSpeed(12.0));
    EXPECT_GT(motor.speed().get(), 0.0);
}

TEST(DcMotor, ClosedLoopSpeedControl) {
    // PI speed loop around the motor: w -> 1 rad/s exactly.
    Plain top{"top"};
    c::Step ref("ref", &top, 0.0, 0.0, 1.0);
    c::Sum err("err", &top, "+-");
    c::Pid pi("pi", &top, 40.0, 60.0, 0.0);
    c::DcMotor motor("motor", &top);
    f::Relay meas("meas", &top, f::FlowType::real(), 2);
    c::Recorder rec("rec", &top);
    f::flow(ref.out(), err.in(0));
    f::flow(meas.out(0), err.in(1));
    f::flow(err.out(), pi.in());
    f::flow(pi.out(), motor.voltage());
    f::flow(motor.speed(), meas.in());
    f::flow(meas.out(1), rec.in());

    f::SolverRunner runner(top, s::makeIntegrator("RK4"), 0.002);
    runner.initialize(0.0);
    runner.advanceTo(6.0);
    EXPECT_NEAR(rec.last(), 1.0, 1e-3);
}

TEST(BouncingBall, BouncesWithGeometricDecay) {
    Plain top{"top"};
    c::BouncingBall ball("ball", &top, 1.0, 0.5);
    c::Recorder rec("rec", &top);
    f::flow(ball.height(), rec.in());

    f::SolverRunner runner(top, s::makeIntegrator("RK4"), 0.002);
    runner.initialize(0.0);
    runner.advanceTo(2.5);

    EXPECT_GE(ball.bounces(), 3);
    // Peak after first bounce ~ e^2 * h0 = 0.25.
    double peakAfterFirst = 0.0;
    const double t1 = std::sqrt(2.0 / 9.81); // first impact
    for (const auto& smp : rec.samples()) {
        if (smp.t > t1 && smp.t < 2.0 * t1) peakAfterFirst = std::max(peakAfterFirst, smp.v);
    }
    EXPECT_NEAR(peakAfterFirst, 0.25, 0.01);
    // Height never goes (noticeably) below the floor.
    for (const auto& smp : rec.samples()) EXPECT_GT(smp.v, -1e-3);
}

TEST(BouncingBall, RestitutionOneConservesPeaks) {
    Plain top{"top"};
    c::BouncingBall ball("ball", &top, 1.0, 1.0);
    c::Recorder rec("rec", &top);
    f::flow(ball.height(), rec.in());
    f::SolverRunner runner(top, s::makeIntegrator("RK4"), 0.002);
    runner.initialize(0.0);
    runner.advanceTo(3.0);
    double maxAfterFirstBounce = 0.0;
    const double t1 = std::sqrt(2.0 / 9.81);
    for (const auto& smp : rec.samples()) {
        if (smp.t > t1) maxAfterFirstBounce = std::max(maxAfterFirstBounce, smp.v);
    }
    EXPECT_NEAR(maxAfterFirstBounce, 1.0, 0.01) << "elastic ball returns to its drop height";
}

TEST(ThermalRc, ExponentialApproachToSteadyState) {
    Plain top{"top"};
    c::Constant p("P", &top, 2.0);
    c::ThermalRc room("room", &top, /*C=*/10.0, /*Rth=*/5.0, /*Tamb=*/20.0, /*T0=*/20.0);
    f::flow(p.out(), room.power());
    f::SolverRunner runner(top, s::makeIntegrator("RK4"), 0.5);
    runner.initialize(0.0);
    // tau = Rth*C = 50 s; steady state = 20 + 10 = 30.
    runner.advanceTo(50.0);
    const double expected = 20.0 + 10.0 * (1.0 - std::exp(-1.0));
    EXPECT_NEAR(room.temperature().get(), expected, 1e-3);
    EXPECT_DOUBLE_EQ(room.steadyState(2.0), 30.0);
    runner.advanceTo(500.0);
    EXPECT_NEAR(room.temperature().get(), 30.0, 1e-3);
}
