#include <gtest/gtest.h>

#include <algorithm>

#include "model/validator.hpp"

namespace m = urtx::model;
namespace f = urtx::flow;

namespace {

/// A well-formed reference model resembling the paper's Figure 2/3.
m::Model goodModel() {
    m::Model mod;
    mod.name = "fig23";
    mod.protocols.push_back({"Ctl", {{"setpoint", "out"}, {"alarm", "in"}}});
    mod.flowTypes.push_back({"Scalar", f::FlowType::real()});
    mod.flowTypes.push_back(
        {"PosVel",
         f::FlowType::record({{"pos", f::FlowType::real()}, {"vel", f::FlowType::real()}})});
    mod.flowTypes.push_back({"Pos", f::FlowType::record({{"pos", f::FlowType::real()}})});

    // Leaf streamers.
    m::StreamerClassDecl plant;
    plant.name = "Plant";
    plant.solver = "RK4";
    plant.equations = "dx/dt = -k x + u";
    plant.ports.push_back(
        {"u", m::PortDecl::Kind::Data, "", false, false, "Scalar", "in"});
    plant.ports.push_back(
        {"y", m::PortDecl::Kind::Data, "", false, false, "PosVel", "out"});
    plant.ports.push_back({"ctl", m::PortDecl::Kind::Signal, "Ctl", true, false, "", ""});
    mod.streamers.push_back(plant);

    m::StreamerClassDecl filt;
    filt.name = "Filter";
    filt.solver = "Euler";
    filt.ports.push_back({"in", m::PortDecl::Kind::Data, "", false, false, "Pos", "in"});
    filt.ports.push_back({"out", m::PortDecl::Kind::Data, "", false, false, "Scalar", "out"});
    mod.streamers.push_back(filt);

    // Composite streamer: Fig 2 topology with a relay.
    m::StreamerClassDecl top;
    top.name = "TopStreamer";
    top.ports.push_back({"u", m::PortDecl::Kind::Data, "", false, false, "Scalar", "in"});
    top.ports.push_back({"y", m::PortDecl::Kind::Data, "", false, false, "Scalar", "out"});
    top.parts.push_back({"plant", "Plant", m::PartDecl::Kind::Streamer});
    top.parts.push_back({"filter", "Filter", m::PartDecl::Kind::Streamer});
    top.relays.push_back({"r", "PosVel", 2});
    top.flows.push_back({"u", "plant.u"});            // boundary forward-in
    top.flows.push_back({"plant.y", "r.in"});         // into relay
    top.flows.push_back({"r.out0", "filter.in"});     // PosVel ⊆ Pos
    top.flows.push_back({"filter.out", "y"});         // boundary forward-out
    mod.streamers.push_back(top);

    // Capsule containing the streamer (Fig 3).
    m::CapsuleClassDecl cap;
    cap.name = "Controller";
    cap.ports.push_back({"ctl", m::PortDecl::Kind::Signal, "Ctl", false, false, "", ""});
    cap.ports.push_back({"d", m::PortDecl::Kind::Data, "", false, true, "Scalar", "in"});
    cap.parts.push_back({"grp", "TopStreamer", m::PartDecl::Kind::Streamer});
    cap.states.push_back({"Idle", "", true});
    cap.states.push_back({"Active", "", false});
    cap.transitions.push_back({"Idle", "Active", "setpoint", "", ""});
    mod.capsules.push_back(cap);
    mod.topCapsule = "Controller";
    return mod;
}

bool hasRule(const std::vector<m::Diagnostic>& ds, const std::string& rule) {
    return std::any_of(ds.begin(), ds.end(),
                       [&](const m::Diagnostic& d) { return d.rule == rule; });
}

} // namespace

TEST(Validator, GoodModelPasses) {
    const auto diags = m::Validator().validate(goodModel());
    EXPECT_TRUE(m::Validator::ok(diags)) << m::Validator::render(diags);
}

TEST(Validator, CapsuleDPortMustBeRelay) {
    auto mod = goodModel();
    mod.capsules[0].ports[1].relay = false; // data port, not relay
    const auto diags = m::Validator().validate(mod);
    EXPECT_FALSE(m::Validator::ok(diags));
    EXPECT_TRUE(hasRule(diags, "CP1"));
}

TEST(Validator, StreamerMustNotContainCapsule) {
    auto mod = goodModel();
    mod.streamers[2].parts.push_back({"bad", "Controller", m::PartDecl::Kind::Capsule});
    const auto diags = m::Validator().validate(mod);
    EXPECT_TRUE(hasRule(diags, "ST1"));
}

TEST(Validator, StreamerContainingCapsuleClassFlaggedEvenIfMarkedStreamer) {
    auto mod = goodModel();
    mod.streamers[2].parts.push_back({"bad", "Controller", m::PartDecl::Kind::Streamer});
    const auto diags = m::Validator().validate(mod);
    EXPECT_TRUE(hasRule(diags, "ST1"));
}

TEST(Validator, LeafStreamerWithoutSolverWarns) {
    auto mod = goodModel();
    mod.streamers[0].solver.clear();
    const auto diags = m::Validator().validate(mod);
    EXPECT_TRUE(m::Validator::ok(diags)) << "warning only";
    EXPECT_TRUE(hasRule(diags, "ST2"));
}

TEST(Validator, FlowTypeSubsetEnforced) {
    auto mod = goodModel();
    // Reverse a flow so Pos feeds PosVel: not a subset.
    mod.streamers[1].ports[0].flowType = "Scalar"; // Filter.in now Scalar
    // PosVel (from relay) ⊄ Scalar.
    const auto diags = m::Validator().validate(mod);
    EXPECT_TRUE(hasRule(diags, "FL1"));
}

TEST(Validator, UnknownProtocolFlagged) {
    auto mod = goodModel();
    mod.capsules[0].ports[0].protocol = "Nope";
    EXPECT_TRUE(hasRule(m::Validator().validate(mod), "ST3"));
}

TEST(Validator, UnknownFlowTypeFlagged) {
    auto mod = goodModel();
    mod.streamers[0].ports[0].flowType = "Nope";
    EXPECT_TRUE(hasRule(m::Validator().validate(mod), "ST4"));
}

TEST(Validator, RelayFanoutMinimum) {
    auto mod = goodModel();
    mod.streamers[2].relays[0].fanout = 1;
    EXPECT_TRUE(hasRule(m::Validator().validate(mod), "RL1"));
}

TEST(Validator, DoubleFeedFlagged) {
    auto mod = goodModel();
    mod.streamers[2].flows.push_back({"r.out1", "filter.in"}); // second feeder
    EXPECT_TRUE(hasRule(m::Validator().validate(mod), "FL3"));
}

TEST(Validator, FanOutWithoutRelayFlagged) {
    auto mod = goodModel();
    mod.streamers[2].flows.push_back({"plant.y", "y"}); // plant.y used twice
    EXPECT_TRUE(hasRule(m::Validator().validate(mod), "FL3"));
}

TEST(Validator, IllegalFlowShapeFlagged) {
    auto mod = goodModel();
    mod.streamers[2].flows.push_back({"y", "plant.u"}); // boundary OUT as source of forward-in
    EXPECT_TRUE(hasRule(m::Validator().validate(mod), "FL2"));
}

TEST(Validator, DanglingFlowEndpointFlagged) {
    auto mod = goodModel();
    mod.streamers[2].flows.push_back({"plant.nonexistent", "y"});
    EXPECT_TRUE(hasRule(m::Validator().validate(mod), "FL2"));
}

TEST(Validator, UnknownPartClassFlagged) {
    auto mod = goodModel();
    mod.capsules[0].parts.push_back({"ghost", "Phantom", m::PartDecl::Kind::Capsule});
    EXPECT_TRUE(hasRule(m::Validator().validate(mod), "CP2"));
}

TEST(Validator, DuplicateNamesFlagged) {
    auto mod = goodModel();
    mod.streamers[2].ports.push_back(
        {"u", m::PortDecl::Kind::Data, "", false, false, "Scalar", "in"});
    EXPECT_TRUE(hasRule(m::Validator().validate(mod), "UQ1"));

    auto mod2 = goodModel();
    mod2.capsules.push_back(mod2.capsules[0]);
    EXPECT_TRUE(hasRule(m::Validator().validate(mod2), "UQ2"));
}

TEST(Validator, BadSignalDirectionFlagged) {
    auto mod = goodModel();
    mod.protocols[0].signals.push_back({"weird", "sideways"});
    EXPECT_TRUE(hasRule(m::Validator().validate(mod), "PR1"));
}

TEST(Validator, TransitionsToUnknownStatesFlagged) {
    auto mod = goodModel();
    mod.capsules[0].transitions.push_back({"Idle", "Nowhere", "x", "", ""});
    EXPECT_TRUE(hasRule(m::Validator().validate(mod), "SM1"));
}

TEST(Validator, MissingTopCapsuleFlagged) {
    auto mod = goodModel();
    mod.topCapsule = "Ghost";
    EXPECT_TRUE(hasRule(m::Validator().validate(mod), "TP1"));
}

TEST(Validator, RenderListsDiagnostics) {
    auto mod = goodModel();
    mod.topCapsule = "Ghost";
    const auto diags = m::Validator().validate(mod);
    const std::string text = m::Validator::render(diags);
    EXPECT_NE(text.find("TP1"), std::string::npos);
    EXPECT_NE(text.find("error"), std::string::npos);
}

// ------------------------------ CP3: capsule signal connections -------------

namespace {

/// Model with a composite capsule wiring two sub-capsules plus a relay.
m::Model wiredModel() {
    m::Model mod;
    mod.protocols.push_back({"Link", {{"req", "out"}, {"rsp", "in"}}});

    m::CapsuleClassDecl client;
    client.name = "Client";
    client.ports.push_back({"p", m::PortDecl::Kind::Signal, "Link", false, false, "", ""});
    mod.capsules.push_back(client);

    m::CapsuleClassDecl server;
    server.name = "Server";
    server.ports.push_back({"p", m::PortDecl::Kind::Signal, "Link", true, false, "", ""});
    mod.capsules.push_back(server);

    m::CapsuleClassDecl system;
    system.name = "System";
    system.parts.push_back({"c", "Client", m::PartDecl::Kind::Capsule});
    system.parts.push_back({"s", "Server", m::PartDecl::Kind::Capsule});
    system.connections.push_back({"c.p", "s.p"});
    mod.capsules.push_back(system);
    return mod;
}

} // namespace

TEST(Validator, Cp3GoodWiringPasses) {
    const auto diags = m::Validator().validate(wiredModel());
    EXPECT_TRUE(m::Validator::ok(diags)) << m::Validator::render(diags);
}

TEST(Validator, Cp3DanglingEndpointFlagged) {
    auto mod = wiredModel();
    mod.capsules[2].connections.push_back({"c.p", "ghost.p"});
    EXPECT_TRUE(hasRule(m::Validator().validate(mod), "CP3"));
}

TEST(Validator, Cp3ProtocolMismatchFlagged) {
    auto mod = wiredModel();
    mod.protocols.push_back({"Other", {{"x", "out"}}});
    mod.capsules[1].ports[0].protocol = "Other";
    EXPECT_TRUE(hasRule(m::Validator().validate(mod), "CP3"));
}

TEST(Validator, Cp3SameConjugationPeersFlagged) {
    auto mod = wiredModel();
    mod.capsules[1].ports[0].conjugated = false; // both base now
    EXPECT_TRUE(hasRule(m::Validator().validate(mod), "CP3"));
}

TEST(Validator, Cp3DoubleWiringFlagged) {
    auto mod = wiredModel();
    mod.capsules[2].parts.push_back({"s2", "Server", m::PartDecl::Kind::Capsule});
    mod.capsules[2].connections.push_back({"c.p", "s2.p"});
    EXPECT_TRUE(hasRule(m::Validator().validate(mod), "CP3"));
}

TEST(Validator, Cp3RelayExportSameConjugationOk) {
    auto mod = wiredModel();
    // Boundary relay on System exports the client role outward.
    mod.capsules[2].ports.push_back(
        {"ext", m::PortDecl::Kind::Signal, "Link", false, true, "", ""});
    mod.capsules[2].connections.clear();
    mod.capsules[2].connections.push_back({"ext", "c.p"}); // same conj through relay
    const auto diags = m::Validator().validate(mod);
    EXPECT_TRUE(m::Validator::ok(diags)) << m::Validator::render(diags);
}

TEST(Validator, Cp3DPortEndpointInConnectFlagged) {
    auto mod = wiredModel();
    mod.flowTypes.push_back({"Scalar", f::FlowType::real()});
    mod.capsules[0].ports.push_back(
        {"d", m::PortDecl::Kind::Data, "", false, true, "Scalar", "in"});
    mod.capsules[2].connections.push_back({"c.d", "s.p"});
    EXPECT_TRUE(hasRule(m::Validator().validate(mod), "CP3"));
}
