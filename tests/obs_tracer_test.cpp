#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <set>
#include <sstream>
#include <string_view>
#include <thread>
#include <vector>

#include "json_lint.hpp"
#include "obs/tracer.hpp"

namespace obs = urtx::obs;

namespace {

/// The global tracer is process-wide; each test starts from a clean slate.
struct TracerTest : ::testing::Test {
    void SetUp() override {
        obs::Tracer::global().clear();
        obs::Tracer::global().setEnabled(true);
    }
    void TearDown() override {
        obs::Tracer::global().setEnabled(false);
        obs::Tracer::global().clear();
    }
};

} // namespace

TEST_F(TracerTest, SpanRecordsCompleteEvent) {
    {
        obs::Span span("test", "unit.work");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const auto events = obs::Tracer::global().collect();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "unit.work");
    EXPECT_STREQ(events[0].cat, "test");
    EXPECT_EQ(events[0].phase, 'X');
    EXPECT_GE(events[0].dur, 1000000u) << "span must cover the 1ms sleep";
}

TEST_F(TracerTest, DisabledTracerRecordsNothing) {
    obs::Tracer::global().setEnabled(false);
    {
        obs::Span span("test", "ignored");
    }
    obs::Tracer::global().instant("test", "ignored");
    EXPECT_EQ(obs::Tracer::global().eventCount(), 0u);
}

TEST_F(TracerTest, SpanStartedWhileEnabledStillCompletes) {
    // Disabling mid-span must not lose the already-started span.
    {
        obs::Span span("test", "crossing");
        obs::Tracer::global().setEnabled(false);
    }
    EXPECT_EQ(obs::Tracer::global().collect().size(), 1u);
}

TEST_F(TracerTest, InstantEventsAreTimestampedAndOrdered) {
    obs::Tracer::global().instant("test", "first");
    obs::Tracer::global().instant("test", "second");
    const auto events = obs::Tracer::global().collect();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_STREQ(events[0].name, "first");
    EXPECT_STREQ(events[1].name, "second");
    EXPECT_LE(events[0].ts, events[1].ts);
    EXPECT_EQ(events[0].phase, 'i');
}

TEST_F(TracerTest, RingWrapsKeepingNewestEvents) {
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.setRingCapacity(8);
    // A fresh thread gets a fresh ring with the small capacity.
    std::thread writer([&tracer] {
        for (int i = 0; i < 20; ++i) tracer.instant("wrap", "evt");
    });
    writer.join();
    tracer.setRingCapacity(1u << 16);

    std::size_t wrapped = 0;
    std::uint64_t lastTs = 0;
    bool ordered = true;
    for (const auto& ev : tracer.collect()) {
        if (std::string_view(ev.cat ? ev.cat : "") != "wrap") continue;
        ++wrapped;
        if (ev.ts < lastTs) ordered = false;
        lastTs = ev.ts;
    }
    EXPECT_EQ(wrapped, 8u) << "ring must retain exactly its capacity";
    EXPECT_TRUE(ordered) << "retained events must be the newest, in order";
    EXPECT_GE(tracer.droppedCount(), 12u);
}

TEST_F(TracerTest, ChromeTraceJsonIsWellFormed) {
    {
        obs::Span outer("test", "outer");
        obs::Span inner("test", "inner");
    }
    obs::Tracer::global().instant("test", "marker");

    std::ostringstream os;
    obs::Tracer::global().writeChromeTrace(os);
    const std::string json = os.str();

    std::string err;
    ASSERT_TRUE(urtx::testjson::wellFormed(json, &err)) << err << "\n" << json;
    // Golden structural facts every Chrome trace viewer relies on.
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":"), std::string::npos);
    EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
}

TEST_F(TracerTest, ChromeTraceFileRoundTrip) {
    obs::Tracer::global().instant("test", "filed");
    const std::string path = "/tmp/urtx_tracer_test.json";
    obs::Tracer::global().writeChromeTrace(path);
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    std::string err;
    EXPECT_TRUE(urtx::testjson::wellFormed(ss.str(), &err)) << err;
    EXPECT_THROW(obs::Tracer::global().writeChromeTrace("/no/such/dir/x.json"),
                 std::runtime_error);
}

TEST_F(TracerTest, ClearDropsEventsKeepsRings) {
    obs::Tracer::global().instant("test", "gone");
    EXPECT_GE(obs::Tracer::global().eventCount(), 1u);
    obs::Tracer::global().clear();
    EXPECT_EQ(obs::Tracer::global().eventCount(), 0u);
    obs::Tracer::global().instant("test", "back");
    EXPECT_EQ(obs::Tracer::global().eventCount(), 1u);
}

TEST_F(TracerTest, CollectLastNSlicesNewestEvents) {
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.instant("slice", "a");
    tracer.instant("slice", "b");
    tracer.instant("slice", "c");
    tracer.instant("slice", "d");

    const auto all = tracer.collect();
    ASSERT_EQ(all.size(), 4u);
    const auto last2 = tracer.collect(2);
    ASSERT_EQ(last2.size(), 2u);
    EXPECT_STREQ(last2[0].name, "c");
    EXPECT_STREQ(last2[1].name, "d");
    EXPECT_EQ(tracer.collect(100).size(), 4u) << "lastN beyond the total is a no-op";

    std::ostringstream os;
    tracer.writeChromeTrace(os, 1);
    const std::string json = os.str();
    std::string err;
    ASSERT_TRUE(urtx::testjson::wellFormed(json, &err)) << err;
    EXPECT_NE(json.find("\"name\":\"d\""), std::string::npos);
    EXPECT_EQ(json.find("\"name\":\"c\""), std::string::npos)
        << "writeChromeTrace(os, 1) must slice to the newest event";
}

TEST_F(TracerTest, MultiThreadedSpansLandInSeparateRings) {
    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < 10; ++i) {
                obs::Span span("mt", "worker.op");
            }
        });
    }
    for (auto& t : threads) t.join();

    std::size_t mine = 0;
    std::set<std::uint32_t> tids;
    for (const auto& ev : obs::Tracer::global().collect()) {
        if (std::string_view(ev.cat ? ev.cat : "") != "mt") continue;
        ++mine;
        tids.insert(ev.tid);
    }
    EXPECT_EQ(mine, static_cast<std::size_t>(kThreads) * 10);
    EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}
