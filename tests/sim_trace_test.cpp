#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>

#include "control/control.hpp"
#include "flow/flow.hpp"
#include "sim/sim.hpp"

namespace f = urtx::flow;
namespace c = urtx::control;
namespace s = urtx::solver;
namespace sim = urtx::sim;

namespace {

struct Plain : f::Streamer {
    using f::Streamer::Streamer;
};

} // namespace

TEST(Trace, ChannelsRegisterAndSample) {
    sim::Trace tr;
    double v = 1.0;
    const auto a = tr.channel("a", [&] { return v; });
    const auto b = tr.channel("b", [&] { return 2.0 * v; });
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(tr.channelCount(), 2u);

    tr.sample(0.0);
    v = 3.0;
    tr.sample(0.5);
    EXPECT_EQ(tr.rows(), 2u);
    EXPECT_DOUBLE_EQ(tr.timeAt(1), 0.5);
    EXPECT_DOUBLE_EQ(tr.valueAt(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(tr.valueAt(1, 1), 6.0);
    EXPECT_EQ(tr.series("a"), (std::vector<double>{1.0, 3.0}));
}

TEST(Trace, AddChannelAfterSamplingThrows) {
    sim::Trace tr;
    tr.channel("a", [] { return 0.0; });
    tr.sample(0.0);
    EXPECT_THROW(tr.channel("b", [] { return 0.0; }), std::logic_error);
}

TEST(Trace, ClearResetsRowsKeepsChannels) {
    sim::Trace tr;
    tr.channel("a", [] { return 1.0; });
    tr.sample(0.0);
    tr.clear();
    EXPECT_EQ(tr.rows(), 0u);
    EXPECT_EQ(tr.channelCount(), 1u);
    tr.sample(1.0);
    EXPECT_EQ(tr.rows(), 1u);
}

TEST(Trace, CsvOutputWellFormed) {
    sim::Trace tr;
    double v = 0;
    tr.channel("x", [&] { return v; });
    tr.channel("y", [&] { return -v; });
    for (int i = 0; i < 3; ++i) {
        v = i;
        tr.sample(0.1 * i);
    }
    const std::string path = "/tmp/urtx_trace_test.csv";
    tr.writeCsv(path);

    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "t,x,y");
    int rows = 0;
    while (std::getline(in, line)) ++rows;
    EXPECT_EQ(rows, 3);
    EXPECT_THROW(tr.writeCsv("/nonexistent/dir/file.csv"), std::runtime_error);
}

TEST(Trace, UnknownSeriesThrows) {
    sim::Trace tr;
    tr.channel("a", [] { return 0.0; });
    EXPECT_THROW(tr.series("zzz"), std::invalid_argument);
    EXPECT_NO_THROW(tr.series(0u));
}

TEST(Trace, CsvRoundTripsFullDoublePrecision) {
    sim::Trace tr;
    const double value = 1.0 / 3.0; // not representable in few digits
    tr.channel("x", [&] { return value; });
    tr.sample(0.1); // 0.1 is inexact in binary; must survive the round trip
    const std::string path = "/tmp/urtx_trace_precision.csv";
    tr.writeCsv(path);

    std::ifstream in(path);
    std::string header, row;
    std::getline(in, header);
    std::getline(in, row);
    const auto comma = row.find(',');
    ASSERT_NE(comma, std::string::npos);
    EXPECT_EQ(std::stod(row.substr(0, comma)), 0.1) << "time must round-trip exactly";
    EXPECT_EQ(std::stod(row.substr(comma + 1)), value) << "value must round-trip exactly";
}

TEST(Trace, MergeInterleavesRowsByTime) {
    double v = 0;
    sim::Trace a, b;
    a.channel("x", [&] { return v; });
    b.channel("x", [&] { return v; });
    v = 1.0;
    a.sample(0.0);
    v = 3.0;
    a.sample(0.2);
    v = 2.0;
    b.sample(0.1);
    v = 4.0;
    b.sample(0.3);

    a.merge(b);
    ASSERT_EQ(a.rows(), 4u);
    EXPECT_DOUBLE_EQ(a.timeAt(0), 0.0);
    EXPECT_DOUBLE_EQ(a.timeAt(1), 0.1);
    EXPECT_DOUBLE_EQ(a.timeAt(2), 0.2);
    EXPECT_DOUBLE_EQ(a.timeAt(3), 0.3);
    EXPECT_EQ(a.series("x"), (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

TEST(Trace, MergeKeepsSelfFirstOnTies) {
    sim::Trace a, b;
    a.channel("x", [] { return 1.0; });
    b.channel("x", [] { return 2.0; });
    a.sample(0.5);
    b.sample(0.5);
    a.merge(b);
    ASSERT_EQ(a.rows(), 2u);
    EXPECT_DOUBLE_EQ(a.valueAt(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(a.valueAt(1, 0), 2.0);
}

TEST(Trace, MergeChannelMismatchThrows) {
    sim::Trace a, b;
    a.channel("x", [] { return 0.0; });
    b.channel("y", [] { return 0.0; });
    EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Trace, SampleEveryDecimates) {
    sim::Trace tr;
    tr.channel("x", [] { return 1.0; });
    tr.sampleEvery(3);
    EXPECT_EQ(tr.decimation(), 3u);
    for (int i = 0; i < 10; ++i) tr.sample(0.1 * i);
    // Calls 0, 3, 6, 9 are recorded.
    ASSERT_EQ(tr.rows(), 4u);
    EXPECT_DOUBLE_EQ(tr.timeAt(0), 0.0);
    EXPECT_DOUBLE_EQ(tr.timeAt(1), 0.3);
    EXPECT_DOUBLE_EQ(tr.timeAt(2), 0.6);
    EXPECT_DOUBLE_EQ(tr.timeAt(3), 0.9);
    EXPECT_THROW(tr.sampleEvery(0), std::invalid_argument);
}

TEST(Trace, ClearResetsDecimationPhase) {
    sim::Trace tr;
    tr.channel("x", [] { return 1.0; });
    tr.sampleEvery(2);
    tr.sample(0.0); // recorded (call 0)
    tr.sample(0.1); // skipped
    tr.clear();
    tr.sample(0.2); // call counter reset: recorded again
    ASSERT_EQ(tr.rows(), 1u);
    EXPECT_DOUBLE_EQ(tr.timeAt(0), 0.2);
}

TEST(CsvSink, WritesRowsDuringSimulation) {
    const std::string path = "/tmp/urtx_csvsink_test.csv";
    {
        Plain top{"top"};
        c::Ramp u("u", &top, 2.0);
        c::CsvSink sinkBlock("csv", &top, path, "t,ramp");
        f::flow(u.out(), sinkBlock.in());
        f::SolverRunner runner(top, s::makeIntegrator("Euler"), 0.1);
        runner.initialize(0.0);
        runner.advanceTo(1.0);
        EXPECT_EQ(sinkBlock.rows(), 10u);
    }
    std::ifstream in(path);
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header, "t,ramp");
    std::string lastLine, line;
    int rows = 0;
    while (std::getline(in, line)) {
        if (!line.empty()) {
            lastLine = line;
            ++rows;
        }
    }
    EXPECT_EQ(rows, 10);
    // Last row: t=1.0, ramp=2.0.
    std::istringstream ss(lastLine);
    std::string tStr, vStr;
    std::getline(ss, tStr, ',');
    std::getline(ss, vStr, ',');
    EXPECT_NEAR(std::stod(tStr), 1.0, 1e-9);
    EXPECT_NEAR(std::stod(vStr), 2.0, 1e-9);
}

TEST(CsvSink, BadPathThrows) {
    Plain top{"top"};
    EXPECT_THROW(c::CsvSink("csv", &top, "/no/such/dir/file.csv"), std::runtime_error);
}

TEST(SimDeterminism, SingleThreadRunsAreBitIdentical) {
    auto runTrace = [] {
        sim::HybridSystem sys;
        Plain top{"top"};
        c::Noise noise("n", &top, 1.0, 0.01, 1234);
        c::Integrator integ("x", &top, 0.0);
        f::flow(noise.out(), integ.in());
        auto& runner = sys.addStreamerGroup(top, s::makeIntegrator("RK4"), 0.01);
        sys.trace().channel("x", [&runner] { return runner.state()[0]; });
        sys.run(1.0);
        return sys.trace().series("x");
    };
    const auto first = runTrace();
    const auto second = runTrace();
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i], second[i]) << "row " << i << ": simulation must be deterministic";
    }
}

TEST(Realtime, PacingBoundsSimulationRate) {
    sim::HybridSystem sys;
    Plain top{"top"};
    c::Constant u("u", &top, 0.0);
    sys.addStreamerGroup(top, s::makeIntegrator("Euler"), 0.01);
    sys.setRealtimeFactor(10.0); // 10x real time: 0.2 sim s >= 20 ms wall
    EXPECT_DOUBLE_EQ(sys.realtimeFactor(), 10.0);
    const auto start = std::chrono::steady_clock::now();
    sys.run(0.2);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    EXPECT_GE(wall, 0.018) << "pacing must throttle the engine";
}

TEST(Realtime, ZeroFactorRunsUnthrottled) {
    sim::HybridSystem sys;
    Plain top{"top"};
    c::Constant u("u", &top, 0.0);
    sys.addStreamerGroup(top, s::makeIntegrator("Euler"), 0.001);
    const auto start = std::chrono::steady_clock::now();
    sys.run(1.0); // 1000 tiny steps
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    EXPECT_LT(wall, 0.5) << "no pacing: must run far faster than real time";
}
