#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "json_lint.hpp"
#include "obs/metrics.hpp"

namespace obs = urtx::obs;

TEST(Counter, ConcurrentWritersSumExactly) {
    obs::Counter c;
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 100000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(c.value(), kThreads * kPerThread);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, MaxKeepsHighWaterMark) {
    obs::Gauge g;
    g.max(3.0);
    g.max(1.0);
    EXPECT_DOUBLE_EQ(g.value(), 3.0);
    g.max(7.5);
    EXPECT_DOUBLE_EQ(g.value(), 7.5);
    g.set(2.0);
    EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(Gauge, ConcurrentMaxConverges) {
    obs::Gauge g;
    std::vector<std::thread> threads;
    for (int t = 1; t <= 8; ++t) {
        threads.emplace_back([&g, t] {
            for (int i = 0; i < 10000; ++i) g.max(static_cast<double>(t * 10000 + i));
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_DOUBLE_EQ(g.value(), 89999.0);
}

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
    obs::Histogram h({1.0, 2.0, 3.0});
    for (double v : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 99.0}) h.observe(v);
    const auto counts = h.counts();
    ASSERT_EQ(counts.size(), 4u);
    EXPECT_EQ(counts[0], 2u); // 0.5, 1.0  (le="1")
    EXPECT_EQ(counts[1], 2u); // 1.5, 2.0
    EXPECT_EQ(counts[2], 2u); // 2.5, 3.0
    EXPECT_EQ(counts[3], 1u); // 99 -> +Inf
    EXPECT_EQ(h.count(), 7u);
    EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 2.5 + 3.0 + 99.0, 1e-12);
}

TEST(Histogram, UnsortedBoundsThrow) {
    EXPECT_THROW(obs::Histogram({2.0, 1.0}), std::invalid_argument);
    EXPECT_THROW(obs::Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, ConcurrentObserversCountExactly) {
    obs::Histogram h({0.25, 0.5, 0.75});
    constexpr int kThreads = 8;
    constexpr int kPerThread = 50000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h] {
            for (int i = 0; i < kPerThread; ++i) {
                h.observe(static_cast<double>(i % 100) / 100.0);
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
    std::uint64_t bucketTotal = 0;
    for (auto c : h.counts()) bucketTotal += c;
    EXPECT_EQ(bucketTotal, h.count());
}

TEST(Registry, FindOrCreateAndKindMismatch) {
    obs::Registry r;
    obs::Counter& a = r.counter("x.count");
    obs::Counter& b = r.counter("x.count");
    EXPECT_EQ(&a, &b);
    EXPECT_THROW(r.gauge("x.count"), std::logic_error);
    EXPECT_THROW(r.histogram("x.count", {1.0}), std::logic_error);
    r.histogram("x.hist", {1.0, 2.0});
    EXPECT_THROW(r.histogram("x.hist", {1.0, 3.0}), std::logic_error);
    EXPECT_NO_THROW(r.histogram("x.hist", {1.0, 2.0}));
}

TEST(Registry, SnapshotUnderConcurrentWriters) {
    obs::Registry r;
    obs::Counter& c = r.counter("writes");
    obs::Histogram& h = r.histogram("values", {10.0, 20.0});
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t) {
        writers.emplace_back([&] {
            while (!stop.load()) {
                c.inc();
                h.observe(15.0);
            }
        });
    }
    // Snapshots race with the writers: totals must be consistent within
    // each metric and monotone across snapshots.
    std::uint64_t last = 0;
    for (int i = 0; i < 50; ++i) {
        const obs::Snapshot snap = r.snapshot();
        const auto* cs = snap.counter("writes");
        ASSERT_NE(cs, nullptr);
        EXPECT_GE(cs->value, last);
        last = cs->value;
    }
    stop.store(true);
    for (auto& t : writers) t.join();
    const obs::Snapshot fin = r.snapshot();
    EXPECT_EQ(fin.counter("writes")->value, c.value());
    EXPECT_EQ(fin.histogram("values")->count, h.count());
}

TEST(Snapshot, MergeAddsCountersAndHistogramsMaxesGauges) {
    obs::Registry r1, r2;
    r1.counter("n").add(5);
    r2.counter("n").add(7);
    r2.counter("only2").add(3);
    r1.gauge("depth").max(4.0);
    r2.gauge("depth").max(9.0);
    r1.histogram("lat", {1.0, 2.0}).observe(0.5);
    r2.histogram("lat", {1.0, 2.0}).observe(1.5);

    obs::Snapshot a = r1.snapshot();
    const obs::Snapshot b = r2.snapshot();
    a.merge(b);

    EXPECT_EQ(a.counter("n")->value, 12u);
    EXPECT_EQ(a.counter("only2")->value, 3u);
    EXPECT_DOUBLE_EQ(a.gauge("depth")->value, 9.0);
    const auto* h = a.histogram("lat");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 2u);
    EXPECT_EQ(h->counts[0], 1u);
    EXPECT_EQ(h->counts[1], 1u);
    EXPECT_NEAR(h->sum, 2.0, 1e-12);
}

TEST(Snapshot, MergeMismatchedHistogramBoundsThrows) {
    obs::Registry r1, r2;
    r1.histogram("h", {1.0}).observe(0.5);
    r2.histogram("h", {2.0}).observe(0.5);
    obs::Snapshot a = r1.snapshot();
    EXPECT_THROW(a.merge(r2.snapshot()), std::logic_error);
}

TEST(Snapshot, PrometheusTextHasCumulativeBuckets) {
    obs::Registry r;
    r.counter("rt.dispatched").add(42);
    r.gauge("rt.queue_depth_hwm").max(17.0);
    obs::Histogram& h = r.histogram("rt.latency", {1.0, 2.0});
    h.observe(0.5);
    h.observe(0.7);
    h.observe(1.5);
    h.observe(9.0);
    const std::string text = r.snapshot().toPrometheus();

    EXPECT_NE(text.find("# TYPE urtx_rt_dispatched counter"), std::string::npos);
    EXPECT_NE(text.find("urtx_rt_dispatched 42"), std::string::npos);
    EXPECT_NE(text.find("# TYPE urtx_rt_queue_depth_hwm gauge"), std::string::npos);
    EXPECT_NE(text.find("urtx_rt_queue_depth_hwm 17"), std::string::npos);
    EXPECT_NE(text.find("# TYPE urtx_rt_latency histogram"), std::string::npos);
    // Buckets must be cumulative per the Prometheus exposition format.
    EXPECT_NE(text.find("urtx_rt_latency_bucket{le=\"1\"} 2"), std::string::npos);
    EXPECT_NE(text.find("urtx_rt_latency_bucket{le=\"2\"} 3"), std::string::npos);
    EXPECT_NE(text.find("urtx_rt_latency_bucket{le=\"+Inf\"} 4"), std::string::npos);
    EXPECT_NE(text.find("urtx_rt_latency_count 4"), std::string::npos);
}

namespace {

/// Minimal exposition-format linter: every line is a comment or
/// `name[{labels}] value` with a legal metric name and a parseable value,
/// and every metric name is introduced by exactly one TYPE line.
void lintPrometheus(const std::string& text) {
    const auto legalName = [](const std::string& n) {
        if (n.empty()) return false;
        for (char c : n) {
            const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                            (c >= '0' && c <= '9') || c == '_' || c == ':';
            if (!ok) return false;
        }
        return !(n[0] >= '0' && n[0] <= '9');
    };
    std::map<std::string, int> typeLines;
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t nl = text.find('\n', start);
        if (nl == std::string::npos) nl = text.size();
        const std::string line = text.substr(start, nl - start);
        start = nl + 1;
        if (line.empty()) continue;
        if (line.rfind("# TYPE ", 0) == 0) {
            const std::size_t sp = line.find(' ', 7);
            ASSERT_NE(sp, std::string::npos) << line;
            ++typeLines[line.substr(7, sp - 7)];
            continue;
        }
        ASSERT_NE(line[0], '#') << "only TYPE comments are emitted: " << line;
        std::size_t nameEnd = line.find_first_of("{ ");
        ASSERT_NE(nameEnd, std::string::npos) << line;
        EXPECT_TRUE(legalName(line.substr(0, nameEnd))) << line;
        std::size_t valueAt = nameEnd;
        if (line[nameEnd] == '{') {
            // Skip the label set; '}' inside quoted values is escaped away.
            bool inStr = false;
            std::size_t i = nameEnd + 1;
            for (; i < line.size(); ++i) {
                if (inStr && line[i] == '\\') {
                    ++i;
                } else if (line[i] == '"') {
                    inStr = !inStr;
                } else if (!inStr && line[i] == '}') {
                    break;
                }
            }
            ASSERT_LT(i, line.size()) << "unterminated label set: " << line;
            valueAt = i + 1;
        }
        ASSERT_LT(valueAt, line.size()) << line;
        ASSERT_EQ(line[valueAt], ' ') << line;
        char* end = nullptr;
        (void)std::strtod(line.c_str() + valueAt + 1, &end);
        EXPECT_EQ(*end, '\0') << "unparseable sample value: " << line;
    }
    for (const auto& [name, n] : typeLines) {
        EXPECT_EQ(n, 1) << "metric '" << name << "' must have exactly one TYPE block";
    }
}

/// Undo promEscapeLabel: the inverse the round-trip test closes over.
std::string unescapeLabel(const std::string& v) {
    std::string out;
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (v[i] == '\\' && i + 1 < v.size()) {
            const char c = v[++i];
            out.push_back(c == 'n' ? '\n' : c);
        } else {
            out.push_back(v[i]);
        }
    }
    return out;
}

} // namespace

TEST(Snapshot, PrometheusLabeledFamiliesShareOneTypeBlock) {
    obs::Registry r;
    r.counter("rt.deadline_miss").add(3);
    r.counter("rt.deadline_miss.brake").add(2);
    r.counter("srvd.jobs_received").add(1); // interleaves between the children
    r.counter("rt.deadline_miss.throttle").add(1);
    obs::Histogram& agg = r.histogram("rt.hop_latency_seconds", {1.0});
    agg.observe(0.5);
    r.histogram("rt.hop_latency_seconds.brake", {1.0}).observe(0.5);
    const std::string text = r.snapshot().toPrometheus();
    lintPrometheus(text);

    // srvd.* dots mangle to underscores; per-signal children become labels.
    EXPECT_NE(text.find("urtx_srvd_jobs_received 1"), std::string::npos);
    EXPECT_NE(text.find("urtx_rt_deadline_miss 3"), std::string::npos);
    EXPECT_NE(text.find("urtx_rt_deadline_miss{signal=\"brake\"} 2"), std::string::npos);
    EXPECT_NE(text.find("urtx_rt_deadline_miss{signal=\"throttle\"} 1"), std::string::npos);
    EXPECT_NE(text.find("urtx_rt_hop_latency_seconds_bucket{signal=\"brake\",le=\"1\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("urtx_rt_hop_latency_seconds_count{signal=\"brake\"} 1"),
              std::string::npos);
    // Registration interleaved other metrics between the children, yet all
    // series of one name must sit under a single TYPE line (lint checks
    // uniqueness; this checks the children didn't fork a second name).
    EXPECT_EQ(text.find("urtx_rt_deadline_miss_signal"), std::string::npos)
        << "children must become labels, not mangled standalone names";
}

TEST(Snapshot, PrometheusLabelValuesRoundTripHostileSignalNames) {
    obs::Registry r;
    const std::string nasty = "we\"ird\\sig\nnal.v2";
    r.counter("rt.deadline_miss." + nasty).add(5);
    const std::string text = r.snapshot().toPrometheus();
    lintPrometheus(text);

    const std::string needle = "urtx_rt_deadline_miss{signal=\"";
    const std::size_t at = text.find(needle);
    ASSERT_NE(at, std::string::npos) << text;
    // Scan the escaped value to its true closing quote, then invert the
    // escaping: the original signal name must come back byte-for-byte.
    std::size_t i = at + needle.size();
    std::string escaped;
    while (i < text.size() && text[i] != '"') {
        escaped.push_back(text[i]);
        if (text[i] == '\\') escaped.push_back(text[++i]);
        ++i;
    }
    EXPECT_EQ(unescapeLabel(escaped), nasty);
    EXPECT_EQ(text.find('\n', at), text.find("\"} 5", at) + 4)
        << "a raw newline inside a label value would split the sample line";
}

TEST(Snapshot, JsonExportIsWellFormed) {
    obs::Registry r;
    r.counter("a.b").add(1);
    r.gauge("c.d").set(2.5);
    r.histogram("e.f", {1.0, 2.0}).observe(1.5);
    const std::string json = r.snapshot().toJson();
    std::string err;
    EXPECT_TRUE(urtx::testjson::wellFormed(json, &err)) << err << "\n" << json;
    EXPECT_NE(json.find("\"a.b\":1"), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(Wellknown, RegistersEveryRuntimeMetricEagerly) {
    const obs::Wellknown& wk = obs::wellknown();
    ASSERT_NE(wk.rtDispatched, nullptr);
    const obs::Snapshot snap = obs::Registry::global().snapshot();
    // The acceptance-critical metrics must appear in exports even when 0.
    EXPECT_NE(snap.gauge("rt.queue_depth_hwm"), nullptr);
    EXPECT_NE(snap.histogram("rt.dispatch_latency_seconds.general"), nullptr);
    EXPECT_NE(snap.histogram("flow.solver_step_seconds"), nullptr);
    EXPECT_NE(snap.counter("sim.zero_crossings"), nullptr);
    const std::string prom = snap.toPrometheus();
    EXPECT_NE(prom.find("urtx_rt_queue_depth_hwm"), std::string::npos);
    EXPECT_NE(prom.find("urtx_flow_solver_step_seconds_bucket"), std::string::npos);
    EXPECT_NE(prom.find("urtx_sim_zero_crossings"), std::string::npos);
}

TEST(RuntimeSwitch, DefaultsOffAndToggles) {
    EXPECT_FALSE(obs::metricsOn());
#if !URTX_OBS
    GTEST_SKIP() << "observability compiled out (URTX_OBS=0): switch is a no-op";
#endif
    obs::setMetricsEnabled(true);
    EXPECT_TRUE(obs::metricsOn());
    obs::setMetricsEnabled(false);
    EXPECT_FALSE(obs::metricsOn());
}
