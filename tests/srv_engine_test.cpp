/// \file srv_engine_test.cpp
/// The scenario-serving engine: scheduling determinism, crash isolation,
/// admission control, watchdog enforcement, work stealing, report output.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "json_lint.hpp"
#include "obs/metrics.hpp"
#include "srv/batch_io.hpp"
#include "srv/engine.hpp"
#include "srv/scenarios/scenarios.hpp"

namespace srv = urtx::srv;
namespace scen = urtx::srv::scenarios;

namespace {

srv::ScenarioLibrary& lib() {
    static srv::ScenarioLibrary l;
    static const bool registered = (scen::registerBuiltins(l), true);
    (void)registered;
    return l;
}

/// A 32-job mixed batch with per-job parameter variation — every job is a
/// SingleThread simulation, so its trajectory must not depend on which
/// worker runs it or in what order.
std::vector<srv::ScenarioSpec> mixedBatch() {
    std::vector<srv::ScenarioSpec> specs;
    for (int i = 0; i < 8; ++i) {
        srv::ScenarioSpec s;
        s.scenario = "tank";
        s.name = "tank" + std::to_string(i);
        s.horizon = 4.0;
        s.params.set("qin", 0.5 + 0.05 * i);
        specs.push_back(std::move(s));
    }
    for (int i = 0; i < 8; ++i) {
        srv::ScenarioSpec s;
        s.scenario = "cruise";
        s.name = "cruise" + std::to_string(i);
        s.horizon = 3.0;
        s.params.set("v0", 10.0 + i);
        specs.push_back(std::move(s));
    }
    for (int i = 0; i < 8; ++i) {
        srv::ScenarioSpec s;
        s.scenario = "pendulum";
        s.name = "pend" + std::to_string(i);
        s.horizon = 1.0;
        s.params.set("theta0", 0.05 + 0.01 * i);
        s.params.set("dt", 0.005);
        s.params.set("integrator", std::string("RK4"));
        specs.push_back(std::move(s));
    }
    for (int i = 0; i < 8; ++i) {
        srv::ScenarioSpec s;
        s.scenario = "faulty";
        s.name = "benign" + std::to_string(i);
        s.horizon = 0.5;
        s.params.set("throwAt", 1e18);
        s.params.set("dt", 0.01 + 0.001 * i);
        specs.push_back(std::move(s));
    }
    return specs;
}

} // namespace

TEST(SrvEngine, EmptyBatch) {
    srv::ServeEngine engine;
    const srv::BatchResult r = engine.run({}, lib());
    EXPECT_TRUE(r.results.empty());
    EXPECT_DOUBLE_EQ(r.wallSeconds, 0.0);
}

TEST(SrvEngine, DeterminismAcrossWorkerCounts) {
    const auto specs = mixedBatch();

    srv::EngineConfig one;
    one.workers = 1;
    srv::ServeEngine e1(one);
    const srv::BatchResult r1 = e1.run(specs, lib());

    srv::EngineConfig four;
    four.workers = 4;
    srv::ServeEngine e4(four);
    const srv::BatchResult r4 = e4.run(specs, lib());

    ASSERT_EQ(r1.results.size(), 32u);
    ASSERT_EQ(r4.results.size(), 32u);
    EXPECT_EQ(r1.count(srv::ScenarioStatus::Succeeded), 32u);
    EXPECT_EQ(r4.count(srv::ScenarioStatus::Succeeded), 32u);
    for (std::size_t i = 0; i < 32; ++i) {
        const srv::ScenarioResult& a = r1.results[i];
        const srv::ScenarioResult& b = r4.results[i];
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.steps, b.steps) << a.name;
        EXPECT_EQ(a.trace.rows(), b.trace.rows()) << a.name;
        EXPECT_EQ(a.trace.hash(), b.trace.hash())
            << a.name << ": trajectory depends on worker count";
        EXPECT_TRUE(b.passed) << a.name << ": " << b.verdictDetail;
    }
    // Same spec list, different params per job -> distinct trajectories.
    EXPECT_NE(r1.results[0].trace.hash(), r1.results[1].trace.hash());
}

TEST(SrvEngine, CrashIsolation) {
    std::vector<srv::ScenarioSpec> specs;
    for (int i = 0; i < 6; ++i) {
        srv::ScenarioSpec s;
        s.scenario = "tank";
        s.name = "ok" + std::to_string(i);
        s.horizon = 3.0;
        specs.push_back(std::move(s));
    }
    srv::ScenarioSpec bad;
    bad.scenario = "faulty";
    bad.name = "bomb";
    bad.horizon = 1.0;
    bad.params.set("throwAt", 0.05);
    specs.insert(specs.begin() + 3, std::move(bad)); // in the middle

    srv::EngineConfig cfg;
    cfg.workers = 4;
    srv::ServeEngine engine(cfg);
    const srv::BatchResult r = engine.run(specs, lib());

    ASSERT_EQ(r.results.size(), 7u);
    EXPECT_EQ(r.count(srv::ScenarioStatus::Succeeded), 6u);
    EXPECT_EQ(r.count(srv::ScenarioStatus::Failed), 1u);
    for (const srv::ScenarioResult& res : r.results) {
        if (res.name == "bomb") {
            EXPECT_EQ(res.status, srv::ScenarioStatus::Failed);
            EXPECT_NE(res.error.find("injected failure"), std::string::npos) << res.error;
            // The post-mortem rides along as well-formed JSON.
            ASSERT_FALSE(res.postmortemJson.empty());
            std::string err;
            EXPECT_TRUE(urtx::testjson::wellFormed(res.postmortemJson, &err)) << err;
        } else {
            EXPECT_EQ(res.status, srv::ScenarioStatus::Succeeded) << res.name << ": "
                                                                  << res.error;
            EXPECT_TRUE(res.passed) << res.name;
        }
    }
}

TEST(SrvEngine, AdmissionRejectsAtPlanningTime) {
    std::vector<srv::ScenarioSpec> specs;
    srv::ScenarioSpec impossible;
    impossible.scenario = "faulty";
    impossible.name = "impossible";
    impossible.horizon = 0.01;
    impossible.params.set("throwAt", 1e18);
    impossible.costSeconds = 50.0; // estimate alone blows the deadline
    impossible.deadlineSeconds = 10.0;
    specs.push_back(impossible);

    srv::ScenarioSpec fine;
    fine.scenario = "faulty";
    fine.name = "fine";
    fine.horizon = 0.01;
    fine.params.set("throwAt", 1e18);
    fine.costSeconds = 0.01;
    fine.deadlineSeconds = 100.0;
    specs.push_back(fine);

    srv::EngineConfig cfg;
    cfg.workers = 1;
    srv::ServeEngine engine(cfg);
    const srv::BatchResult r = engine.run(specs, lib());

    ASSERT_EQ(r.results.size(), 2u);
    EXPECT_EQ(r.results[0].status, srv::ScenarioStatus::Rejected);
    EXPECT_NE(r.results[0].error.find("admission control"), std::string::npos);
    EXPECT_FALSE(r.results[0].deadlineMet);
    EXPECT_EQ(r.results[0].worker, SIZE_MAX); // never dispatched, never built
    EXPECT_EQ(r.results[1].status, srv::ScenarioStatus::Succeeded);
    EXPECT_TRUE(r.results[1].deadlineMet);
}

TEST(SrvEngine, AdmissionRejectsAtDispatchTime) {
    // One worker; the EDF-first job underestimates its cost and runs long,
    // so the second job's deadline is already blown when it is dispatched.
    std::vector<srv::ScenarioSpec> specs;
    srv::ScenarioSpec slow;
    slow.scenario = "pendulum";
    slow.name = "slow";
    slow.horizon = 60.0; // tens of milliseconds of wall time
    slow.costSeconds = 0.001;
    slow.deadlineSeconds = 0.02;
    specs.push_back(slow);

    srv::ScenarioSpec late;
    late.scenario = "faulty";
    late.name = "late";
    late.horizon = 0.01;
    late.params.set("throwAt", 1e18);
    late.costSeconds = 0.001;
    late.deadlineSeconds = 0.03;
    specs.push_back(late);

    srv::EngineConfig cfg;
    cfg.workers = 1;
    srv::ServeEngine engine(cfg);
    const srv::BatchResult r = engine.run(specs, lib());

    ASSERT_EQ(r.results.size(), 2u);
    // "slow" ran (EDF put it first) but missed its own deadline.
    EXPECT_EQ(r.results[0].status, srv::ScenarioStatus::Succeeded);
    EXPECT_FALSE(r.results[0].deadlineMet);
    // "late" was rejected at dispatch: elapsed + estimate past its deadline.
    EXPECT_EQ(r.results[1].status, srv::ScenarioStatus::Rejected);
    EXPECT_NE(r.results[1].error.find("dispatched at"), std::string::npos)
        << r.results[1].error;
}

TEST(SrvEngine, WatchdogStopsRunawayJob) {
    srv::ScenarioSpec runaway;
    runaway.scenario = "faulty";
    runaway.name = "runaway";
    runaway.horizon = 1e4; // ~1e6 grid steps: far longer than the budget
    runaway.params.set("throwAt", 1e18);
    runaway.wallBudgetSeconds = 0.05;

    srv::ScenarioSpec sibling;
    sibling.scenario = "tank";
    sibling.name = "sibling";
    sibling.horizon = 2.0;

    srv::EngineConfig cfg;
    cfg.workers = 2;
    srv::ServeEngine engine(cfg);
    const srv::BatchResult r = engine.run({runaway, sibling}, lib());

    ASSERT_EQ(r.results.size(), 2u);
    const srv::ScenarioResult& res = r.results[0];
    EXPECT_EQ(res.status, srv::ScenarioStatus::Failed);
    EXPECT_TRUE(res.watchdogTripped);
    EXPECT_NE(res.error.find("watchdog"), std::string::npos) << res.error;
    EXPECT_GE(r.watchdogTrips, 1u);
    EXPECT_EQ(r.results[1].status, srv::ScenarioStatus::Succeeded);
}

TEST(SrvEngine, WorkStealingBalancesSkewedEstimates) {
    // Equal estimates, skewed real costs: worker 0 gets {slow, fast},
    // worker 1 gets {fast, fast}; worker 1 drains in microseconds and must
    // steal worker 0's queued job instead of idling.
    std::vector<srv::ScenarioSpec> specs;
    srv::ScenarioSpec slow;
    slow.scenario = "pendulum";
    slow.name = "slow";
    slow.horizon = 40.0;
    specs.push_back(slow);
    for (int i = 0; i < 3; ++i) {
        srv::ScenarioSpec fast;
        fast.scenario = "faulty";
        fast.name = "fast" + std::to_string(i);
        fast.horizon = 0.01;
        fast.params.set("throwAt", 1e18);
        specs.push_back(std::move(fast));
    }

    srv::EngineConfig cfg;
    cfg.workers = 2;
    srv::ServeEngine engine(cfg);
    const srv::BatchResult r = engine.run(specs, lib());

    EXPECT_EQ(r.count(srv::ScenarioStatus::Succeeded), 4u);
    EXPECT_GE(r.steals, 1u);
    bool sawStolen = false;
    for (const srv::ScenarioResult& res : r.results) sawStolen |= res.stolen;
    EXPECT_TRUE(sawStolen);
}

TEST(SrvEngine, ScopedMetricsLandInResult) {
    srv::ScenarioSpec s;
    s.scenario = "tank";
    s.name = "metrics";
    s.horizon = 3.0;

    srv::EngineConfig cfg;
    cfg.workers = 1;
    srv::ServeEngine engine(cfg);
    const std::uint64_t processSteps =
        urtx::obs::Registry::process().counter("sim.grid_steps").value();
    const srv::BatchResult r = engine.run({s}, lib());

    ASSERT_EQ(r.results.size(), 1u);
    const srv::ScenarioResult& res = r.results[0];
    EXPECT_EQ(res.status, srv::ScenarioStatus::Succeeded);
#if !defined(URTX_OBS) || URTX_OBS
    // The scenario's sim.grid_steps landed in its private snapshot...
    const auto* steps = res.metrics.counter("sim.grid_steps");
    ASSERT_NE(steps, nullptr);
    EXPECT_EQ(steps->value, res.steps);
    // ...and NOT in the process registry.
    EXPECT_EQ(urtx::obs::Registry::process().counter("sim.grid_steps").value(), processSteps);
#endif
}

TEST(SrvEngine, ReportJsonIsWellFormed) {
    auto specs = mixedBatch();
    specs.resize(6);
    srv::ScenarioSpec bad;
    bad.scenario = "faulty";
    bad.name = "bomb";
    bad.horizon = 1.0;
    bad.params.set("throwAt", 0.02);
    specs.push_back(std::move(bad));
    srv::ScenarioSpec unknown;
    unknown.scenario = "no-such-scenario";
    unknown.name = "unknown";
    specs.push_back(std::move(unknown));

    srv::EngineConfig cfg;
    cfg.workers = 2;
    srv::ServeEngine engine(cfg);
    const srv::BatchResult r = engine.run(specs, lib());

    const std::string report = srv::reportJson(r, /*includeMetrics=*/true);
    std::string err;
    ASSERT_TRUE(urtx::testjson::wellFormed(report, &err)) << err << "\n" << report;
    EXPECT_NE(report.find("\"trace_hash\""), std::string::npos);
    EXPECT_NE(report.find("\"postmortem\""), std::string::npos);
    EXPECT_NE(report.find("no-such-scenario"), std::string::npos);
}

TEST(SrvEngine, ParseBatchFileRoundTrip) {
    const std::string text = R"({
        "workers": 3,
        "default_cost_seconds": 0.1,
        "admission_control": false,
        "jobs": [
            {"scenario": "tank", "horizon": 12, "mode": "multi",
             "deadline_seconds": 5, "params": {"qin": 0.7, "verbose": false}},
            {"scenario": "cruise", "name": "sweep", "repeat": 3,
             "sweep": {"param": "v0", "from": 10, "to": 20}}
        ]
    })";
    const srv::BatchFile f = srv::parseBatchFile(text);
    EXPECT_EQ(f.config.workers, 3u);
    EXPECT_DOUBLE_EQ(f.config.defaultCostSeconds, 0.1);
    EXPECT_FALSE(f.config.admissionControl);
    ASSERT_EQ(f.jobs.size(), 4u);
    EXPECT_EQ(f.jobs[0].scenario, "tank");
    EXPECT_EQ(f.jobs[0].mode, urtx::sim::ExecutionMode::MultiThread);
    EXPECT_DOUBLE_EQ(f.jobs[0].deadlineSeconds, 5.0);
    EXPECT_DOUBLE_EQ(f.jobs[0].params.num("qin", 0), 0.7);
    EXPECT_DOUBLE_EQ(f.jobs[0].params.num("verbose", 1), 0.0); // bool -> 0/1
    EXPECT_EQ(f.jobs[1].name, "sweep#0");
    EXPECT_DOUBLE_EQ(f.jobs[1].params.num("v0", 0), 10.0);
    EXPECT_DOUBLE_EQ(f.jobs[2].params.num("v0", 0), 15.0);
    EXPECT_DOUBLE_EQ(f.jobs[3].params.num("v0", 0), 20.0);

    EXPECT_THROW(srv::parseBatchFile("{}"), std::runtime_error);
    EXPECT_THROW(srv::parseBatchFile("not json"), std::runtime_error);
    EXPECT_THROW(srv::parseBatchFile(R"({"jobs": [{"horizon": 1}]})"), std::runtime_error);
    EXPECT_THROW(srv::parseBatchFile(R"({"jobs": [{"scenario": "t", "mode": "warp"}]})"),
                 std::runtime_error);
}

TEST(SrvEngine, UnknownScenarioFailsAloneWithoutAborting) {
    std::vector<srv::ScenarioSpec> specs;
    srv::ScenarioSpec unknown;
    unknown.scenario = "no-such-scenario";
    unknown.name = "unknown";
    specs.push_back(std::move(unknown));
    srv::ScenarioSpec ok;
    ok.scenario = "faulty";
    ok.name = "ok";
    ok.horizon = 0.01;
    ok.params.set("throwAt", 1e18);
    specs.push_back(std::move(ok));

    srv::ServeEngine engine;
    const srv::BatchResult r = engine.run(specs, lib());
    ASSERT_EQ(r.results.size(), 2u);
    EXPECT_EQ(r.results[0].status, srv::ScenarioStatus::Failed);
    EXPECT_NE(r.results[0].error.find("unknown scenario"), std::string::npos);
    EXPECT_EQ(r.results[1].status, srv::ScenarioStatus::Succeeded);
}
