#include <gtest/gtest.h>

#include <cmath>

#include "rt/capsule.hpp"
#include "rt/queue.hpp"
#include "rt/timer_service.hpp"

namespace rt = urtx::rt;

namespace {

struct Fixture : ::testing::Test {
    rt::Capsule cap{"target"};
    rt::TimerService ts;
    rt::MessageQueue q;
};

} // namespace

using TimerTest = Fixture;

TEST_F(TimerTest, OneShotFiresAtDueTime) {
    ts.informIn(cap, /*now=*/0.0, /*delay=*/1.5, rt::signal("tick"));
    EXPECT_EQ(ts.fireDue(q, 1.0), 0u);
    EXPECT_EQ(ts.fireDue(q, 1.5), 1u);
    auto m = q.tryPop();
    ASSERT_TRUE(m);
    EXPECT_EQ(m->signalName(), "tick");
    EXPECT_EQ(m->receiver, &cap);
    EXPECT_EQ(ts.pending(), 0u);
}

TEST_F(TimerTest, OneShotFiresOnlyOnce) {
    ts.informIn(cap, 0.0, 1.0, rt::signal("tick"));
    EXPECT_EQ(ts.fireDue(q, 2.0), 1u);
    EXPECT_EQ(ts.fireDue(q, 3.0), 0u);
}

TEST_F(TimerTest, NegativeDelayClampsToNow) {
    ts.informIn(cap, 5.0, -1.0, rt::signal("tick"));
    EXPECT_EQ(ts.fireDue(q, 5.0), 1u);
}

TEST_F(TimerTest, PeriodicReschedules) {
    ts.informEvery(cap, 0.0, 0.5, rt::signal("tick"));
    EXPECT_EQ(ts.fireDue(q, 0.5), 1u);
    EXPECT_EQ(ts.fireDue(q, 1.0), 1u);
    EXPECT_EQ(ts.fireDue(q, 2.0), 2u); // catches up: 1.5 and 2.0
    EXPECT_EQ(ts.pending(), 1u);
}

TEST_F(TimerTest, ZeroPeriodRejected) {
    EXPECT_EQ(ts.informEvery(cap, 0.0, 0.0, rt::signal("tick")), rt::kInvalidTimer);
    EXPECT_EQ(ts.pending(), 0u);
}

TEST_F(TimerTest, CancelPreventsFiring) {
    auto id = ts.informIn(cap, 0.0, 1.0, rt::signal("tick"));
    EXPECT_TRUE(ts.cancel(id));
    EXPECT_EQ(ts.fireDue(q, 10.0), 0u);
    EXPECT_EQ(ts.pending(), 0u);
}

TEST_F(TimerTest, CancelUnknownIdFails) {
    EXPECT_FALSE(ts.cancel(rt::kInvalidTimer));
    EXPECT_FALSE(ts.cancel(12345));
}

TEST_F(TimerTest, DoubleCancelFails) {
    auto id = ts.informIn(cap, 0.0, 1.0, rt::signal("tick"));
    EXPECT_TRUE(ts.cancel(id));
    EXPECT_FALSE(ts.cancel(id));
}

TEST_F(TimerTest, CancelPeriodicStopsIt) {
    auto id = ts.informEvery(cap, 0.0, 1.0, rt::signal("tick"));
    EXPECT_EQ(ts.fireDue(q, 1.0), 1u);
    EXPECT_TRUE(ts.cancel(id));
    EXPECT_EQ(ts.fireDue(q, 5.0), 0u);
}

TEST_F(TimerTest, NextDueReportsEarliest) {
    EXPECT_TRUE(std::isinf(ts.nextDue()));
    ts.informIn(cap, 0.0, 3.0, rt::signal("a"));
    ts.informIn(cap, 0.0, 1.0, rt::signal("b"));
    EXPECT_DOUBLE_EQ(ts.nextDue(), 1.0);
}

TEST_F(TimerTest, FiringOrderFollowsDueTime) {
    ts.informIn(cap, 0.0, 2.0, rt::signal("second"));
    ts.informIn(cap, 0.0, 1.0, rt::signal("first"));
    ts.fireDue(q, 3.0);
    EXPECT_EQ(q.tryPop()->signalName(), "first");
    EXPECT_EQ(q.tryPop()->signalName(), "second");
}

TEST_F(TimerTest, PayloadAndPriorityPropagate) {
    ts.informIn(cap, 0.0, 1.0, rt::signal("tick"), 7, rt::Priority::High);
    ts.fireDue(q, 1.0);
    auto m = q.tryPop();
    ASSERT_TRUE(m);
    EXPECT_EQ(m->priority, rt::Priority::High);
    EXPECT_EQ(m->dataOr<int>(0), 7);
}
