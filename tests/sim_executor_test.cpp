/// \file sim_executor_test.cpp
/// Executor-hardening regression tests: grid clamping on non-commensurate
/// horizons, worker exception propagation through the epoch-barrier solver
/// pool, the bounded inter-controller drain, macro-stepping, and
/// SingleThread == MultiThread equivalence (multi-rate and fig3-shaped
/// topologies).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>

#include "control/control.hpp"
#include "flow/sport.hpp"
#include "obs/obs.hpp"
#include "sim/sim.hpp"

namespace f = urtx::flow;
namespace c = urtx::control;
namespace s = urtx::solver;
namespace rt = urtx::rt;
namespace sim = urtx::sim;
namespace obs = urtx::obs;

namespace {

struct Plain : f::Streamer {
    using f::Streamer::Streamer;
};

/// dx/dt = 1 until t passes failAt, then the model "diverges" (throws).
struct Throwing : f::Streamer {
    Throwing(std::string n, f::Streamer* parent, double failAt)
        : f::Streamer(std::move(n), parent), failAt_(failAt) {}
    double failAt_;
    std::size_t stateSize() const override { return 1; }
    void derivatives(double t, std::span<const double>, std::span<double> dx) override {
        if (t > failAt_) throw std::runtime_error("solver diverged");
        dx[0] = 1.0;
    }
    bool directFeedthrough() const override { return false; }
};

rt::Protocol& pingPongProto() {
    static rt::Protocol p = [] {
        rt::Protocol q{"ExecPingPong"};
        q.out("ping").in("pong");
        return q;
    }();
    return p;
}

/// Replies to every pong with a ping, forever.
struct Pinger : rt::Capsule {
    Pinger() : rt::Capsule("pinger"), port(*this, "p", pingPongProto(), false) {}
    rt::Port port;

    void kickoff() { port.send("ping"); }

protected:
    void onMessage(const rt::Message& m) override {
        if (m.signal == rt::signal("pong")) port.send("ping");
    }
};

/// Replies to every ping with a pong, forever.
struct Ponger : rt::Capsule {
    Ponger() : rt::Capsule("ponger"), port(*this, "p", pingPongProto(), true) {}
    rt::Port port;

protected:
    void onMessage(const rt::Message& m) override {
        if (m.signal == rt::signal("ping")) port.send("pong");
    }
};

struct Ticker : rt::Capsule {
    Ticker(std::string n, double period) : rt::Capsule(std::move(n)), period_(period) {}
    double period_;
    std::atomic<int> ticks{0};

protected:
    void onInit() override { informEvery(period_, "tick"); }
    void onMessage(const rt::Message& m) override {
        if (m.signal == rt::signal("tick")) ++ticks;
    }
};

} // namespace

// --- bugfix 1: non-commensurate tEnd/dt ------------------------------------

TEST(ExecutorGrid, FinalStepClampsToHorizonSingleThread) {
    sim::HybridSystem sys;
    Plain top{"top"};
    c::Constant u("u", &top, 1.0);
    c::Integrator xi("x", &top, 0.0);
    f::flow(u.out(), xi.in());
    auto& runner = sys.addStreamerGroup(top, s::makeIntegrator("RK4"), 0.3);
    sys.run(1.0, sim::ExecutionMode::SingleThread);
    // Pre-fix: llround(1.0/0.3) == 3 grid steps -> the run stopped at 0.9.
    EXPECT_NEAR(sys.now(), 1.0, 1e-12);
    EXPECT_NEAR(runner.time(), 1.0, 1e-9);
    EXPECT_NEAR(runner.state()[0], 1.0, 1e-9);
    EXPECT_EQ(sys.steps(), 4u); // 0.3, 0.6, 0.9, then the clamped 1.0
}

TEST(ExecutorGrid, FinalStepClampsToHorizonMultiThread) {
    sim::HybridSystem sys;
    Plain top{"top"};
    c::Constant u("u", &top, 1.0);
    c::Integrator xi("x", &top, 0.0);
    f::flow(u.out(), xi.in());
    auto& runner = sys.addStreamerGroup(top, s::makeIntegrator("RK4"), 0.3);
    sys.run(1.0, sim::ExecutionMode::MultiThread);
    EXPECT_NEAR(sys.now(), 1.0, 1e-12);
    EXPECT_NEAR(runner.time(), 1.0, 1e-9);
    EXPECT_NEAR(runner.state()[0], 1.0, 1e-9);
    EXPECT_EQ(sys.steps(), 4u);
}

TEST(ExecutorGrid, TimerInsideClampedTailStillFires) {
    sim::HybridSystem sys;
    struct Once : rt::Capsule {
        using rt::Capsule::Capsule;
        int fired = 0;

    protected:
        void onInit() override { informIn(0.95, "late"); }
        void onMessage(const rt::Message& m) override {
            if (m.signal == rt::signal("late")) ++fired;
        }
    } cap{"cap"};
    sys.addCapsule(cap);
    Plain top{"top"};
    c::Constant u("u", &top, 0.0);
    sys.addStreamerGroup(top, s::makeIntegrator("Euler"), 0.3);
    sys.run(1.0);
    // Pre-fix the run ended at 0.9 and the 0.95 timer was silently lost.
    EXPECT_EQ(cap.fired, 1);
}

TEST(ExecutorGrid, CommensurateGridIsUnchanged) {
    sim::HybridSystem sys;
    Plain top{"top"};
    c::Constant u("u", &top, 1.0);
    c::Integrator xi("x", &top, 0.0);
    f::flow(u.out(), xi.in());
    sys.addStreamerGroup(top, s::makeIntegrator("RK4"), 0.01);
    sys.run(1.0);
    EXPECT_EQ(sys.steps(), 100u); // no spurious 101st sliver step
    EXPECT_NEAR(sys.now(), 1.0, 1e-12);
}

// --- bugfix 2: worker exception propagation ---------------------------------

TEST(ExecutorExceptions, SolverThrowPropagatesFromMultiThreadRun) {
    sim::HybridSystem sys;
    Plain top{"top"};
    Throwing bad("bad", &top, 0.05);
    sys.addStreamerGroup(top, s::makeIntegrator("RK4"), 0.01);
    // Pre-fix the exception hit the SolverWorker thread boundary and
    // std::terminate'd the whole process.
    EXPECT_THROW(sys.run(0.2, sim::ExecutionMode::MultiThread), std::runtime_error);
    // The pool and the controller threads were shut down cleanly.
    for (const auto& c : sys.controllers()) EXPECT_FALSE(c->running());
}

TEST(ExecutorExceptions, SolverThrowPropagatesFromSingleThreadRun) {
    sim::HybridSystem sys;
    Plain top{"top"};
    Throwing bad("bad", &top, 0.05);
    sys.addStreamerGroup(top, s::makeIntegrator("RK4"), 0.01);
    EXPECT_THROW(sys.run(0.2, sim::ExecutionMode::SingleThread), std::runtime_error);
}

TEST(ExecutorExceptions, PoolRejectsUseAfterFailure) {
    Plain top{"top"};
    Throwing bad("bad", &top, 0.05);
    f::SolverRunner runner(top, s::makeIntegrator("RK4"), 0.01);
    runner.initialize(0.0);
    sim::SolverPool pool({&runner});
    EXPECT_THROW(pool.advanceAllTo(0.2, 0.2), std::runtime_error);
    EXPECT_THROW(pool.advanceAllTo(0.3, 0.3), std::logic_error);
}

TEST(ExecutorExceptions, PoolAdvancesAllRunners) {
    Plain a{"a"}, b{"b"};
    c::Constant ua("u", &a, 1.0);
    c::Integrator xa("x", &a, 0.0);
    f::flow(ua.out(), xa.in());
    c::Constant ub("u", &b, -2.0);
    c::Integrator xb("x", &b, 0.0);
    f::flow(ub.out(), xb.in());
    f::SolverRunner ra(a, s::makeIntegrator("RK4"), 0.01);
    f::SolverRunner rb(b, s::makeIntegrator("RK4"), 0.01);
    ra.initialize(0.0);
    rb.initialize(0.0);
    sim::SolverPool pool({&ra, &rb});
    for (int i = 1; i <= 10; ++i) pool.advanceAllTo(0.05 * i, 0.5);
    pool.shutdown();
    EXPECT_NEAR(ra.state()[0], 0.5, 1e-9);
    EXPECT_NEAR(rb.state()[0], -1.0, 1e-9);
    EXPECT_NEAR(ra.time(), 0.5, 1e-9);
}

// --- bugfix 3: bounded inter-controller drain --------------------------------

TEST(ExecutorDrain, PingPongLivelockThrowsInsteadOfHanging) {
    sim::HybridSystem sys;
    auto& other = sys.addController("second");
    Pinger pinger;
    Ponger ponger;
    rt::connect(pinger.port, ponger.port);
    sys.addCapsule(pinger);
    sys.addCapsule(ponger, &other);
    sys.initialize();
    pinger.kickoff();
    // Pre-fix drainControllersInline iterated to a fixed point that never
    // comes: the simulator livelocked inside the first grid step.
    EXPECT_THROW(sys.run(0.1, sim::ExecutionMode::SingleThread), std::runtime_error);
}

TEST(ExecutorDrain, DrainRoundLimitIsConfigurable) {
    sim::HybridSystem sys;
    EXPECT_EQ(sys.drainRoundLimit(), 10000u);
    sys.setDrainRoundLimit(17);
    EXPECT_EQ(sys.drainRoundLimit(), 17u);
    EXPECT_THROW(sys.setDrainRoundLimit(0), std::invalid_argument);
    EXPECT_THROW(sys.setMacroStepLimit(0), std::invalid_argument);
}

TEST(ExecutorDrain, BoundedConversationStillCompletes) {
    // A finite burst (ping-pong that stops after 100 exchanges) must be
    // drained fully without tripping the cap.
    struct CountingPinger : rt::Capsule {
        CountingPinger() : rt::Capsule("cp"), port(*this, "p", pingPongProto(), false) {}
        rt::Port port;
        int pongs = 0;

        void kickoff() { port.send("ping"); }

    protected:
        void onMessage(const rt::Message& m) override {
            if (m.signal == rt::signal("pong") && ++pongs < 100) port.send("ping");
        }
    };
    sim::HybridSystem sys;
    auto& other = sys.addController("second");
    CountingPinger pinger;
    Ponger ponger;
    rt::connect(pinger.port, ponger.port);
    sys.addCapsule(pinger);
    sys.addCapsule(ponger, &other);
    sys.initialize();
    pinger.kickoff();
    sys.run(0.1);
    EXPECT_EQ(pinger.pongs, 100);
    EXPECT_NEAR(sys.now(), 0.1, 1e-12);
}

// --- multi-rate runners and mode equivalence ---------------------------------

TEST(ExecutorEquivalence, MultiRateRunnersMatchAcrossModes) {
    // globalDt = 0.01 (runner A); runner B steps internally at 0.025 and is
    // granted grid times it overshoots — its stride pattern must be
    // identical in both executors, and both must land exactly on tEnd.
    auto simulate = [](sim::ExecutionMode mode) {
        sim::HybridSystem sys;
        Plain a{"a"}, b{"b"};
        c::Sine ua("u", &a, 1.0, 2.0);
        c::Integrator xa("x", &a, 0.0);
        f::flow(ua.out(), xa.in());
        c::Sine ub("u", &b, 2.0, 3.0);
        c::Integrator xb("x", &b, 0.0);
        f::flow(ub.out(), xb.in());
        sys.addStreamerGroup(a, s::makeIntegrator("RK4"), 0.01);
        sys.addStreamerGroup(b, s::makeIntegrator("RK4"), 0.025);
        sys.run(1.0, mode);
        struct Out {
            double xa, xb, ta, tb, now;
            std::uint64_t stepsA, stepsB;
        };
        return Out{sys.runners()[0]->state()[0], sys.runners()[1]->state()[0],
                   sys.runners()[0]->time(),     sys.runners()[1]->time(),
                   sys.now(),                    sys.runners()[0]->majorSteps(),
                   sys.runners()[1]->majorSteps()};
    };
    const auto st = simulate(sim::ExecutionMode::SingleThread);
    const auto mt = simulate(sim::ExecutionMode::MultiThread);
    EXPECT_EQ(st.xa, mt.xa) << "same grants, same strides: bitwise-identical state";
    EXPECT_EQ(st.xb, mt.xb);
    EXPECT_EQ(st.ta, mt.ta);
    EXPECT_EQ(st.tb, mt.tb);
    EXPECT_EQ(st.stepsA, mt.stepsA);
    EXPECT_EQ(st.stepsB, mt.stepsB);
    EXPECT_NEAR(st.ta, 1.0, 1e-9);
    EXPECT_NEAR(st.tb, 1.0, 1e-9) << "coarse runner must also land on tEnd";
    // Analytic check: d(xa)/dt = sin(2t) -> (1 - cos(2))/2 at t=1.
    EXPECT_NEAR(st.xa, (1.0 - std::cos(2.0)) / 2.0, 1e-6);
}

TEST(ExecutorEquivalence, Fig3TopologyTraceIdenticalAcrossModes) {
    // Fig3 shape: periodic-timer supervisor capsule + continuous plant,
    // with a trace channel on the plant state. The channel forces per-step
    // sampling (macro-stepping disengages), and the series must match
    // bitwise between the executors.
    auto simulate = [](sim::ExecutionMode mode) {
        sim::HybridSystem sys;
        Ticker sup("supervisor", 0.01);
        sys.addCapsule(sup);
        Plain top{"top"};
        c::Sine u("u", &top, 1.0, 2.0);
        c::Integrator xi("x", &top, 0.0);
        f::flow(u.out(), xi.in());
        auto& runner = sys.addStreamerGroup(top, s::makeIntegrator("RK4"), 0.01);
        sys.trace().channel("x", [&runner] { return runner.state()[0]; });
        sys.run(0.5, mode);
        struct Out {
            std::vector<double> xs;
            std::uint64_t macroGrants;
            int ticks;
        };
        return Out{sys.trace().series("x"), sys.macroGrants(), sup.ticks.load()};
    };
    const auto st = simulate(sim::ExecutionMode::SingleThread);
    const auto mt = simulate(sim::ExecutionMode::MultiThread);
    EXPECT_EQ(st.macroGrants, 0u) << "trace channels must disable macro-stepping";
    EXPECT_EQ(mt.macroGrants, 0u);
    ASSERT_EQ(st.xs.size(), 50u);
    ASSERT_EQ(mt.xs.size(), st.xs.size());
    for (std::size_t i = 0; i < st.xs.size(); ++i) {
        EXPECT_EQ(st.xs[i], mt.xs[i]) << "trace row " << i;
    }
    EXPECT_EQ(st.ticks, mt.ticks);
    EXPECT_GE(st.ticks, 49); // 50th due time can land just past tEnd (FP accumulation)
}

// --- macro-stepping ----------------------------------------------------------

TEST(MacroStepping, EngagesOnQuietRunsAndPreservesResults) {
    auto simulate = [](std::uint64_t limit, sim::ExecutionMode mode) {
        sim::HybridSystem sys;
        sys.setMacroStepLimit(limit);
        Plain top{"top"};
        c::Sine u("u", &top, 1.0, 2.0);
        c::Integrator xi("x", &top, 0.0);
        f::flow(u.out(), xi.in());
        sys.addStreamerGroup(top, s::makeIntegrator("RK4"), 0.01);
        sys.run(2.0, mode);
        struct Out {
            double x;
            std::uint64_t steps, grants, coalesced;
        };
        return Out{sys.runners()[0]->state()[0], sys.steps(), sys.macroGrants(),
                   sys.macroStepsCoalesced()};
    };
    for (auto mode : {sim::ExecutionMode::SingleThread, sim::ExecutionMode::MultiThread}) {
        const auto plain = simulate(1, mode);
        const auto macro = simulate(32, mode);
        EXPECT_EQ(plain.grants, 0u);
        EXPECT_GT(macro.grants, 0u) << "quiet timer-free run must coalesce";
        EXPECT_GT(macro.coalesced, 100u);
        EXPECT_EQ(plain.steps, macro.steps) << "steps() still counts grid steps";
        EXPECT_EQ(plain.x, macro.x) << "identical stride sequence -> identical state";
    }
}

TEST(MacroStepping, BoundedByTimerDeadlines) {
    // Ticks every 5 grid steps: grants must stop exactly at each deadline,
    // so the tick count matches fine stepping and no tick fires late.
    auto simulate = [](std::uint64_t limit) {
        sim::HybridSystem sys;
        sys.setMacroStepLimit(limit);
        Ticker cap("cap", 0.05);
        sys.addCapsule(cap);
        Plain top{"top"};
        c::Constant u("u", &top, 1.0);
        c::Integrator xi("x", &top, 0.0);
        f::flow(u.out(), xi.in());
        sys.addStreamerGroup(top, s::makeIntegrator("RK4"), 0.01);
        sys.run(1.0);
        struct Out {
            int ticks;
            std::uint64_t steps, grants;
            double x;
        };
        return Out{cap.ticks.load(), sys.steps(), sys.macroGrants(),
                   sys.runners()[0]->state()[0]};
    };
    const auto fine = simulate(1);
    const auto macro = simulate(32);
    EXPECT_GE(fine.ticks, 19); // 20th due time can land just past tEnd (FP accumulation)
    EXPECT_EQ(macro.ticks, fine.ticks) << "every timer deadline hit on its own grid point";
    EXPECT_EQ(macro.steps, 100u);
    EXPECT_GT(macro.grants, 0u);
    EXPECT_EQ(fine.x, macro.x);
}

TEST(MacroStepping, MetricsCountCoalescedStepsAndBarrierWaits) {
#if !URTX_OBS
    GTEST_SKIP() << "observability compiled out (URTX_OBS=0)";
#endif
    obs::wellknown();
    obs::Registry::global().reset();
    obs::setMetricsEnabled(true);
    sim::HybridSystem sys;
    Plain top{"top"};
    c::Constant u("u", &top, 1.0);
    c::Integrator xi("x", &top, 0.0);
    f::flow(u.out(), xi.in());
    sys.addStreamerGroup(top, s::makeIntegrator("RK4"), 0.01);
    sys.run(1.0, sim::ExecutionMode::MultiThread);
    obs::setMetricsEnabled(false);
    const obs::Snapshot snap = obs::Registry::global().snapshot();
    EXPECT_EQ(snap.counter("sim.grid_steps")->value, 100u);
    EXPECT_EQ(snap.counter("sim.macro_steps_coalesced")->value, sys.macroStepsCoalesced());
    EXPECT_GT(sys.macroStepsCoalesced(), 0u);
    const auto* bw = snap.histogram("sim.barrier_wait_seconds");
    ASSERT_NE(bw, nullptr);
    EXPECT_EQ(bw->count, sys.steps() - sys.macroStepsCoalesced())
        << "one barrier wait per solver grant";
    EXPECT_GT(bw->sum, 0.0);
    obs::Registry::global().reset();
}

// --- macro-stepping vs. mid-span emissions (event surfaces / SPorts) --------

namespace {

rt::Protocol& brakeProto() {
    static rt::Protocol p = [] {
        rt::Protocol q{"ExecBrake"};
        q.out("cross").in("brake");
        return q;
    }();
    return p;
}

/// x' = rate; a rising crossing of x = 0.505 notifies the capsule world,
/// which replies "brake" -> rate = -1 at the next step boundary.
struct Brakeable : f::Streamer {
    Brakeable(std::string n, f::Streamer* parent)
        : f::Streamer(std::move(n), parent), ctl(*this, "ctl", brakeProto(), false) {
        setParam("rate", 1.0);
    }
    f::SPort ctl;
    std::size_t stateSize() const override { return 1; }
    void initState(double, std::span<double> x) override { x[0] = 0.0; }
    void derivatives(double, std::span<const double>, std::span<double> dx) override {
        dx[0] = param("rate");
    }
    bool directFeedthrough() const override { return false; }
    bool hasEvent() const override { return true; }
    double eventFunction(double, std::span<const double> x) const override {
        return x[0] - 0.505;
    }
    void onEvent(double t, bool rising) override {
        if (rising) ctl.send("cross", t);
    }
    void onSignal(f::SPort&, const rt::Message& m) override {
        if (m.signal == rt::signal("brake")) setParam("rate", -1.0);
    }
};

struct BrakeSupervisor : rt::Capsule {
    BrakeSupervisor() : rt::Capsule("sup"), plant(*this, "plant", brakeProto(), true) {}
    rt::Port plant;
    std::atomic<int> crossings{0};

protected:
    void onMessage(const rt::Message& m) override {
        if (m.signal == rt::signal("cross")) {
            ++crossings;
            plant.send("brake");
        }
    }
};

} // namespace

TEST(MacroStepping, CanEmitMidSpanIsStructural) {
    // Pure dataflow network: no event surfaces, no SPorts -> may coalesce.
    Plain pure{"pure"};
    c::Constant u("u", &pure, 1.0);
    c::Integrator xi("x", &pure, 0.0);
    f::flow(u.out(), xi.in());
    f::SolverRunner rPure(pure, s::makeIntegrator("Euler"), 0.01);
    EXPECT_FALSE(rPure.canEmitMidSpan());

    // An SPort alone (update() could send through it) already vetoes.
    Plain sigTop{"sig"};
    c::Constant u2("u", &sigTop, 1.0);
    f::SPort sp(sigTop, "ctl", brakeProto());
    f::SolverRunner rSig(sigTop, s::makeIntegrator("Euler"), 0.01);
    EXPECT_TRUE(rSig.canEmitMidSpan());

    // Event surface + SPort (the tank/pendulum example shape).
    Plain evTop{"ev"};
    Brakeable ev("plant", &evTop);
    f::SolverRunner rEv(evTop, s::makeIntegrator("Euler"), 0.01);
    EXPECT_TRUE(rEv.canEmitMidSpan());
}

TEST(MacroStepping, EventEmittingStreamerNeverCoalesces) {
    auto simulate = [](std::uint64_t limit) {
        sim::HybridSystem sys;
        sys.setMacroStepLimit(limit);
        BrakeSupervisor sup;
        sys.addCapsule(sup);
        Plain top{"top"};
        Brakeable plant("plant", &top);
        rt::connect(sup.plant, plant.ctl.rtPort());
        sys.addStreamerGroup(top, s::makeIntegrator("RK4"), 0.01);
        sys.run(1.0, sim::ExecutionMode::SingleThread);
        struct Out {
            double x, rate;
            std::uint64_t grants;
            int crossings;
        };
        return Out{sys.runners()[0]->state()[0], plant.param("rate"), sys.macroGrants(),
                   sup.crossings.load()};
    };
    // Pre-fix, macroSpan only looked at pre-grant discrete state: the
    // default limit (32) coalesced straight over the zero crossing at
    // t = 0.505, so the capsule's braking reply was deferred to the end of
    // the coalesced grant (t = 0.64) and the trajectory bent late.
    const auto fine = simulate(1);
    const auto macro = simulate(32);
    EXPECT_EQ(macro.grants, 0u) << "event/SPort networks must disable macro-stepping";
    EXPECT_EQ(fine.crossings, 1);
    EXPECT_EQ(macro.crossings, fine.crossings);
    EXPECT_EQ(macro.x, fine.x) << "identical grant sequence -> identical trajectory";
    EXPECT_EQ(macro.rate, -1.0);
    // x rises to ~0.51 (brake lands at the next grid boundary after the
    // crossing), then falls for the rest of the run: x(1) ~ 0.51 - 0.49.
    EXPECT_NEAR(fine.x, 0.02, 0.02);
}

TEST(MacroStepping, EventEmittingStreamerMultiThreadStillReacts) {
    sim::HybridSystem sys; // default macro limit: 32
    BrakeSupervisor sup;
    sys.addCapsule(sup);
    Plain top{"top"};
    Brakeable plant("plant", &top);
    rt::connect(sup.plant, plant.ctl.rtPort());
    sys.addStreamerGroup(top, s::makeIntegrator("RK4"), 0.01);
    sys.run(1.0, sim::ExecutionMode::MultiThread);
    EXPECT_EQ(sys.macroGrants(), 0u);
    // Controller::stop() drains the queue, so the crossing notification is
    // handled even if it raced the end of the run.
    EXPECT_EQ(sup.crossings.load(), 1);
}
