#include <gtest/gtest.h>

#include "rt/protocol.hpp"

namespace rt = urtx::rt;

namespace {

rt::Protocol makeHeater() {
    rt::Protocol p{"Heater"};
    p.out("on").out("off").in("ack").in("fault").inout("ping");
    return p;
}

} // namespace

TEST(Protocol, BaseRoleSendsOutSignals) {
    const auto p = makeHeater();
    EXPECT_TRUE(p.sendable(rt::signal("on"), /*conjugated=*/false));
    EXPECT_TRUE(p.sendable(rt::signal("off"), false));
    EXPECT_FALSE(p.sendable(rt::signal("ack"), false));
}

TEST(Protocol, BaseRoleReceivesInSignals) {
    const auto p = makeHeater();
    EXPECT_TRUE(p.receivable(rt::signal("ack"), false));
    EXPECT_TRUE(p.receivable(rt::signal("fault"), false));
    EXPECT_FALSE(p.receivable(rt::signal("on"), false));
}

TEST(Protocol, ConjugatedRoleMirrors) {
    const auto p = makeHeater();
    EXPECT_TRUE(p.sendable(rt::signal("ack"), /*conjugated=*/true));
    EXPECT_TRUE(p.receivable(rt::signal("on"), true));
    EXPECT_FALSE(p.sendable(rt::signal("on"), true));
    EXPECT_FALSE(p.receivable(rt::signal("ack"), true));
}

TEST(Protocol, InOutWorksBothWays) {
    const auto p = makeHeater();
    const auto ping = rt::signal("ping");
    for (bool conj : {false, true}) {
        EXPECT_TRUE(p.sendable(ping, conj));
        EXPECT_TRUE(p.receivable(ping, conj));
    }
}

TEST(Protocol, UnknownSignalIsNeither) {
    const auto p = makeHeater();
    const auto bogus = rt::signal("totally-unknown");
    EXPECT_FALSE(p.sendable(bogus, false));
    EXPECT_FALSE(p.receivable(bogus, false));
    EXPECT_FALSE(p.contains(bogus));
}

TEST(Protocol, DuplicateDeclarationUpgradesToInOut) {
    rt::Protocol p{"Dup"};
    p.in("x").out("x");
    const auto x = rt::signal("x");
    EXPECT_TRUE(p.sendable(x, false));
    EXPECT_TRUE(p.receivable(x, false));
    EXPECT_EQ(p.size(), 1u);
}

TEST(Protocol, SizeCountsDistinctSignals) {
    const auto p = makeHeater();
    EXPECT_EQ(p.size(), 5u);
}
