/// \file paper_claims_test.cpp
/// One test per claim the paper makes in §2 — the traceability suite
/// mapping sentences of the paper to executable checks. Quotes in the test
/// comments are from the paper.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "control/control.hpp"
#include "flow/flow.hpp"
#include "model/stereotype.hpp"
#include "model/validator.hpp"
#include "rt/rt.hpp"
#include "sim/sim.hpp"
#include "solver/solver.hpp"

namespace f = urtx::flow;
namespace c = urtx::control;
namespace s = urtx::solver;
namespace rt = urtx::rt;
namespace m = urtx::model;
namespace sim = urtx::sim;

namespace {

struct Plain : f::Streamer {
    using f::Streamer::Streamer;
};

} // namespace

// "difference equations can be integrated into capsule's actions".
TEST(PaperClaims, DifferenceEquationsRunInCapsuleActions) {
    struct Filtering : rt::Capsule {
        Filtering() : rt::Capsule("filter"), lp(s::makeLowPass(0.5)) {}
        s::DifferenceEquation lp;
        double y = 0;

    protected:
        void onInit() override { informEvery(0.1, "sample"); }
        void onMessage(const rt::Message& msg) override {
            if (msg.signal == rt::signal("sample")) y = lp.step(1.0); // action computes y[n]
        }
    };
    rt::Controller ctl{"main"};
    Filtering cap;
    ctl.attach(cap);
    ctl.initializeAll();
    ctl.virtualClock()->advanceTo(5.0);
    ctl.dispatchAll();
    EXPECT_EQ(cap.lp.samples(), 50u);
    EXPECT_NEAR(cap.y, 1.0, 1e-9) << "low-pass inside the action converges on its input";
}

// "to differential equations, this kind of integration is infeasible,
// because these equations must be continuous computed, and UML-RT has a
// 'run-to-complete' semantic."
TEST(PaperClaims, RunToCompletionForbidsNestedDispatch) {
    rt::StateMachine machine;
    auto& a = machine.state("A");
    auto& b = machine.state("B");
    bool reentrantThrew = false;
    machine.transition(a, b).on("go").act([&](const rt::Message&) {
        // A capsule action cannot re-enter the dispatcher to "keep
        // computing": RTC is enforced.
        try {
            machine.dispatch(rt::Message(rt::signal("go")));
        } catch (const std::logic_error&) {
            reentrantThrew = true;
        }
    });
    machine.start();
    machine.dispatch(rt::Message(rt::signal("go")));
    EXPECT_TRUE(reentrantThrew);
}

// "streamers have ports through which they communicate with other objects,
// and they can contain any number of sub-streamers."
TEST(PaperClaims, StreamersHavePortsAndNestArbitrarily) {
    Plain l0{"l0"};
    Plain l1{"l1", &l0};
    Plain l2{"l2", &l1};
    Plain l3{"l3", &l2};
    f::DPort d(l3, "d", f::DPortDir::Out, f::FlowType::real());
    static rt::Protocol proto = [] {
        rt::Protocol q{"PaperC"};
        q.out("x");
        return q;
    }();
    f::SPort sp(l3, "s", proto, false);
    EXPECT_EQ(l3.fullPath(), "l0/l1/l2/l3");
    EXPECT_EQ(l3.dports().size(), 1u);
    EXPECT_EQ(l3.sports().size(), 1u);
}

// "To connect two DPorts, the output DPorts' flow type must be a subset of
// the input DPorts flow type."
TEST(PaperClaims, FlowTypeSubsetRuleGatesConnections) {
    Plain parent{"p"};
    Plain a{"a", &parent}, b{"b", &parent};
    f::DPort outReal(a, "o", f::DPortDir::Out, f::FlowType::real());
    f::DPort inInt(b, "i", f::DPortDir::In, f::FlowType::integer());
    EXPECT_THROW(f::flow(outReal, inInt), std::logic_error);

    f::DPort outInt(a, "o2", f::DPortDir::Out, f::FlowType::integer());
    f::DPort inReal(b, "i2", f::DPortDir::In, f::FlowType::real());
    EXPECT_NO_THROW(f::flow(outInt, inReal));
}

// "Relay is used as a relay point which generates two similar flows from a
// flow."
TEST(PaperClaims, RelayGeneratesTwoSimilarFlows) {
    Plain top{"top"};
    c::Sine src("src", &top, 2.0, 3.0);
    f::Relay relay("r", &top, f::FlowType::real(), 2);
    c::Recorder r1("r1", &top), r2("r2", &top);
    f::flow(src.out(), relay.in());
    f::flow(relay.out(0), r1.in());
    f::flow(relay.out(1), r2.in());
    f::SolverRunner runner(top, s::makeIntegrator("RK4"), 0.01);
    runner.initialize(0.0);
    runner.advanceTo(1.0);
    ASSERT_EQ(r1.size(), r2.size());
    for (std::size_t i = 0; i < r1.size(); ++i) {
        EXPECT_DOUBLE_EQ(r1.samples()[i].v, r2.samples()[i].v) << "flows must be identical";
    }
}

// "In a streamer, there is a solver responsible for receiving signal from
// SPorts and data from DPorts ..., modifying parameters, computing
// equations, and sending out the results."
TEST(PaperClaims, SolverReceivesSignalsModifiesParametersComputes) {
    static rt::Protocol tune = [] {
        rt::Protocol q{"TuneClaims"};
        q.out("setTau");
        return q;
    }();
    struct Lag : f::Streamer {
        Lag(std::string n, f::Streamer* parent)
            : f::Streamer(std::move(n), parent),
              in(*this, "in", f::DPortDir::In, f::FlowType::real()),
              out(*this, "out", f::DPortDir::Out, f::FlowType::real()),
              sp(*this, "sp", tune, true) {
            setParam("tau", 1.0);
        }
        f::DPort in;
        f::DPort out;
        f::SPort sp;
        std::size_t stateSize() const override { return 1; }
        void derivatives(double, std::span<const double> x, std::span<double> dx) override {
            dx[0] = (in.get() - x[0]) / param("tau");
        }
        void outputs(double, std::span<const double> x) override { out.set(x[0]); }
        bool directFeedthrough() const override { return false; }
        void onSignal(f::SPort&, const rt::Message& msg) override {
            if (msg.signal == rt::signal("setTau")) setParam("tau", msg.dataOr<double>(1.0));
        }
    };

    Plain top{"top"};
    c::Constant u("u", &top, 1.0);
    Lag lag("lag", &top);
    f::flow(u.out(), lag.in);

    rt::Capsule tuner{"tuner"};
    rt::Port tp(tuner, "p", tune, false);
    rt::connect(tp, lag.sp.rtPort());

    f::SolverRunner runner(top, s::makeIntegrator("RK4"), 0.01);
    runner.initialize(0.0);
    runner.advanceTo(1.0);
    const double slowValue = lag.out.get(); // tau=1: 1-e^-1 = 0.632
    EXPECT_NEAR(slowValue, 1.0 - std::exp(-1.0), 1e-4);
    tp.send("setTau", 0.05); // much faster plant from here on
    runner.advanceTo(1.5);
    EXPECT_GT(lag.out.get(), 0.99) << "after retuning, response accelerates";
}

// "capsules can contain streamers, but streamers don't contain any capsule"
// and "in capsules, DPorts are only used as relay ports. No data will be
// processed by capsules."
TEST(PaperClaims, ContainmentAndCapsuleDPortRulesValidated) {
    m::Model mod;
    mod.flowTypes.push_back({"Scalar", f::FlowType::real()});
    m::StreamerClassDecl str;
    str.name = "S";
    str.solver = "RK4";
    mod.streamers.push_back(str);
    m::CapsuleClassDecl cap;
    cap.name = "C";
    cap.parts.push_back({"s", "S", m::PartDecl::Kind::Streamer}); // legal
    cap.ports.push_back({"d", m::PortDecl::Kind::Data, "", false, true, "Scalar", "in"});
    mod.capsules.push_back(cap);
    auto diags = m::Validator().validate(mod);
    EXPECT_TRUE(m::Validator::ok(diags)) << m::Validator::render(diags);

    // Violations flip to errors.
    mod.streamers[0].parts.push_back({"bad", "C", m::PartDecl::Kind::Capsule});
    mod.capsules[0].ports[0].relay = false;
    diags = m::Validator().validate(mod);
    bool st1 = false, cp1 = false;
    for (const auto& d : diags) {
        if (d.rule == "ST1") st1 = true;
        if (d.rule == "CP1") cp1 = true;
    }
    EXPECT_TRUE(st1);
    EXPECT_TRUE(cp1);
}

// "capsules and streamers are assigned to different threads. Communication
// between capsules and streamers is realized by communication mechanism of
// threads."
TEST(PaperClaims, SeparateThreadsCommunicateViaMessages) {
    static rt::Protocol proto = [] {
        rt::Protocol q{"ThreadsClaims"};
        q.out("crossed");
        return q;
    }();
    struct Emitter : f::Streamer {
        Emitter(std::string n, f::Streamer* parent)
            : f::Streamer(std::move(n), parent), sp(*this, "sp", proto, false) {}
        f::SPort sp;
        std::thread::id solverThread{};
        void update(double t, std::span<double>) override {
            solverThread = std::this_thread::get_id();
            if (t > 0.049 && t < 0.06) sp.send("crossed");
        }
    };
    struct Listener : rt::Capsule {
        Listener() : rt::Capsule("listener"), port(*this, "p", proto, true) {}
        rt::Port port;
        std::atomic<bool> got{false};
        std::thread::id capsuleThread{};

    protected:
        void onMessage(const rt::Message& msg) override {
            if (msg.signal == rt::signal("crossed")) {
                capsuleThread = std::this_thread::get_id();
                got = true;
            }
        }
    };

    sim::HybridSystem sys;
    Plain top{"top"};
    Emitter emitter("emitter", &top);
    Listener listener;
    rt::connect(listener.port, emitter.sp.rtPort());
    sys.addCapsule(listener);
    sys.addStreamerGroup(top, s::makeIntegrator("Euler"), 0.01);
    sys.run(0.3, sim::ExecutionMode::MultiThread);

    EXPECT_TRUE(listener.got.load());
    EXPECT_NE(emitter.solverThread, std::thread::id{});
    EXPECT_NE(listener.capsuleThread, std::thread::id{});
    EXPECT_NE(emitter.solverThread, listener.capsuleThread)
        << "capsule and streamer must run on different threads";
}

// "we introduce a Time stereotype, which is a continuous variable, can be
// used as simulation clock."
TEST(PaperClaims, TimeIsSharedContinuousClock) {
    sim::HybridSystem sys;
    Plain top{"top"};
    c::Constant u("u", &top, 0.0);
    sys.addStreamerGroup(top, s::makeIntegrator("Euler"), 0.01);

    struct Watcher : rt::Capsule {
        using rt::Capsule::Capsule;
        double sawTime = -1;

    protected:
        void onInit() override { informIn(0.25, "wake"); }
        void onMessage(const rt::Message& msg) override {
            if (msg.signal == rt::signal("wake")) sawTime = now();
        }
    } watcher{"watcher"};
    sys.addCapsule(watcher);

    sys.run(0.5);
    // The capsule's timer and the solver ran against the same clock.
    EXPECT_NEAR(watcher.sawTime, 0.25, 0.011);
    EXPECT_NEAR(sys.now(), 0.5, 1e-12);
    EXPECT_NEAR(sys.runners()[0]->time(), 0.5, 1e-9);
}

// Table 1 exists with the mapping the paper prints.
TEST(PaperClaims, Table1MappingReproduced) {
    const auto& rows = m::table1();
    ASSERT_EQ(rows.size(), 6u);
    EXPECT_EQ(rows[0].umlrt, m::Stereotype::Capsule);
    EXPECT_EQ(rows[0].extension[0], m::Stereotype::Streamer);
    EXPECT_EQ(rows[5].umlrt, m::Stereotype::TimeService);
    EXPECT_EQ(rows[5].extension[0], m::Stereotype::Time);
}
