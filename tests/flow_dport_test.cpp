#include <gtest/gtest.h>

#include "flow/dport.hpp"
#include "flow/relay.hpp"
#include "flow/streamer.hpp"

namespace f = urtx::flow;
using FT = f::FlowType;

namespace {

struct Plain : f::Streamer {
    using f::Streamer::Streamer;
};

} // namespace

TEST(DPort, BufferStartsZeroed) {
    Plain s{"s"};
    f::DPort p(s, "out", f::DPortDir::Out, FT::vector(FT::real(), 3));
    EXPECT_EQ(p.width(), 3u);
    for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(p.get(i), 0.0);
}

TEST(DPort, SetAllValidatesWidth) {
    Plain s{"s"};
    f::DPort p(s, "out", f::DPortDir::Out, FT::vector(FT::real(), 2));
    p.setAll({1.0, 2.0});
    EXPECT_DOUBLE_EQ(p.get(1), 2.0);
    EXPECT_THROW(p.setAll({1.0}), std::invalid_argument);
}

TEST(DPort, SiblingFlowConnects) {
    Plain parent{"p"};
    Plain a{"a", &parent}, b{"b", &parent};
    f::DPort out(a, "out", f::DPortDir::Out, FT::real());
    f::DPort in(b, "in", f::DPortDir::In, FT::real());
    f::flow(out, in);
    EXPECT_EQ(in.fedBy(), &out);
    ASSERT_EQ(out.feeds().size(), 1u);
    EXPECT_EQ(out.feeds()[0], &in);
}

TEST(DPort, SelfConnectionThrows) {
    Plain s{"s"};
    f::DPort p(s, "p", f::DPortDir::Out, FT::real());
    EXPECT_THROW(f::flow(p, p), std::logic_error);
}

TEST(DPort, SubsetRuleEnforced) {
    Plain parent{"p"};
    Plain a{"a", &parent}, b{"b", &parent};
    f::DPort outReal(a, "out", f::DPortDir::Out, FT::real());
    f::DPort inInt(b, "in", f::DPortDir::In, FT::integer());
    EXPECT_THROW(f::flow(outReal, inInt), std::logic_error)
        << "Real is not a subset of Int";
}

TEST(DPort, WideningConnectionAllowed) {
    Plain parent{"p"};
    Plain a{"a", &parent}, b{"b", &parent};
    f::DPort outInt(a, "out", f::DPortDir::Out, FT::integer());
    f::DPort inReal(b, "in", f::DPortDir::In, FT::real());
    EXPECT_NO_THROW(f::flow(outInt, inReal));
}

TEST(DPort, DoubleFeedRejected) {
    Plain parent{"p"};
    Plain a{"a", &parent}, b{"b", &parent}, c{"c", &parent};
    f::DPort o1(a, "o", f::DPortDir::Out, FT::real());
    f::DPort o2(b, "o", f::DPortDir::Out, FT::real());
    f::DPort in(c, "in", f::DPortDir::In, FT::real());
    f::flow(o1, in);
    EXPECT_THROW(f::flow(o2, in), std::logic_error);
}

TEST(DPort, FanOutWithoutRelayRejected) {
    Plain parent{"p"};
    Plain a{"a", &parent}, b{"b", &parent}, c{"c", &parent};
    f::DPort out(a, "o", f::DPortDir::Out, FT::real());
    f::DPort i1(b, "in", f::DPortDir::In, FT::real());
    f::DPort i2(c, "in", f::DPortDir::In, FT::real());
    f::flow(out, i1);
    EXPECT_THROW(f::flow(out, i2), std::logic_error) << "fan-out requires a Relay";
}

TEST(DPort, IllegalShapesRejected) {
    Plain parent{"p"};
    Plain a{"a", &parent}, b{"b", &parent};
    f::DPort inA(a, "in", f::DPortDir::In, FT::real());
    f::DPort inB(b, "in", f::DPortDir::In, FT::real());
    f::DPort outA(a, "out", f::DPortDir::Out, FT::real());
    f::DPort outB(b, "out", f::DPortDir::Out, FT::real());
    EXPECT_THROW(f::flow(inA, inB), std::logic_error) << "sibling in->in";
    EXPECT_THROW(f::flow(outA, outB), std::logic_error) << "sibling out->out";
    EXPECT_THROW(f::flow(inA, outB), std::logic_error) << "in->out";
}

TEST(DPort, BoundaryForwardInAllowed) {
    Plain composite{"comp"};
    Plain inner{"inner", &composite};
    f::DPort boundary(composite, "in", f::DPortDir::In, FT::real());
    f::DPort innerIn(inner, "in", f::DPortDir::In, FT::real());
    EXPECT_NO_THROW(f::flow(boundary, innerIn));
}

TEST(DPort, BoundaryForwardOutAllowed) {
    Plain composite{"comp"};
    Plain inner{"inner", &composite};
    f::DPort innerOut(inner, "out", f::DPortDir::Out, FT::real());
    f::DPort boundary(composite, "out", f::DPortDir::Out, FT::real());
    EXPECT_NO_THROW(f::flow(innerOut, boundary));
}

TEST(DPort, WrongDirectionBoundaryRejected) {
    Plain composite{"comp"};
    Plain inner{"inner", &composite};
    f::DPort boundaryOut(composite, "out", f::DPortDir::Out, FT::real());
    f::DPort innerIn(inner, "in", f::DPortDir::In, FT::real());
    // parent's OUT feeding child's IN is not a legal shape.
    EXPECT_THROW(f::flow(boundaryOut, innerIn), std::logic_error);
}

TEST(DPort, RefreshCopiesThroughProjection) {
    Plain parent{"p"};
    Plain a{"a", &parent}, b{"b", &parent};
    f::DPort out(a, "out", f::DPortDir::Out,
                 FT::record({{"pos", FT::real()}, {"vel", FT::real()}}));
    f::DPort in(b, "in", f::DPortDir::In, FT::record({{"vel", FT::real()}}));
    f::flow(out, in);
    auto proj = FT::projection(out.type(), in.type());
    ASSERT_TRUE(proj);
    in.bindResolved(&out, *proj);
    out.setAll({3.0, 7.0}); // pos=3, vel=7
    in.refresh();
    EXPECT_DOUBLE_EQ(in.get(0), 7.0) << "projection must pick the vel slot";
    EXPECT_EQ(in.transfers(), 1u);
}

TEST(DPort, UnresolvedRefreshKeepsExternalValue) {
    Plain s{"s"};
    f::DPort in(s, "in", f::DPortDir::In, FT::real());
    in.set(42.0);
    in.refresh();
    EXPECT_DOUBLE_EQ(in.get(), 42.0);
    EXPECT_FALSE(in.isResolved());
}

TEST(DPort, DestructionUnlinksPeer) {
    Plain parent{"p"};
    Plain a{"a", &parent}, b{"b", &parent};
    f::DPort out(a, "out", f::DPortDir::Out, FT::real());
    {
        f::DPort in(b, "in", f::DPortDir::In, FT::real());
        f::flow(out, in);
        EXPECT_EQ(out.feeds().size(), 1u);
    }
    EXPECT_TRUE(out.feeds().empty());
}

TEST(Relay, DuplicatesFlowToAllOutputs) {
    Plain parent{"p"};
    Plain src{"src", &parent}, s1{"s1", &parent}, s2{"s2", &parent};
    f::DPort out(src, "out", f::DPortDir::Out, FT::real());
    f::DPort in1(s1, "in", f::DPortDir::In, FT::real());
    f::DPort in2(s2, "in", f::DPortDir::In, FT::real());

    f::Relay relay("r", &parent, FT::real(), 2);
    f::flow(out, relay.in());
    f::flow(relay.out(0), in1);
    f::flow(relay.out(1), in2);

    out.set(5.5);
    relay.in().bindResolved(&out, {0});
    relay.in().refresh();
    relay.outputs(0.0, {});
    EXPECT_DOUBLE_EQ(relay.out(0).get(), 5.5);
    EXPECT_DOUBLE_EQ(relay.out(1).get(), 5.5);
}

TEST(Relay, FanoutBelowTwoRejected) {
    Plain parent{"p"};
    EXPECT_THROW(f::Relay("r", &parent, FT::real(), 1), std::invalid_argument);
}

TEST(Relay, LargerFanoutsWork) {
    Plain parent{"p"};
    f::Relay relay("r", &parent, FT::real(), 5);
    EXPECT_EQ(relay.fanout(), 5u);
    relay.in().set(2.0);
    relay.outputs(0.0, {});
    for (std::size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(relay.out(i).get(), 2.0);
}

TEST(Streamer, StructureAndParams) {
    Plain top{"top"};
    Plain child{"kid", &top};
    EXPECT_TRUE(top.isComposite());
    EXPECT_FALSE(child.isComposite());
    EXPECT_EQ(child.fullPath(), "top/kid");
    ASSERT_EQ(top.subStreamers().size(), 1u);

    child.setParam("gain", 2.5);
    EXPECT_TRUE(child.hasParam("gain"));
    EXPECT_DOUBLE_EQ(child.param("gain"), 2.5);
    EXPECT_DOUBLE_EQ(child.param("missing", -1.0), -1.0);
}

TEST(Streamer, FindPorts) {
    Plain s{"s"};
    f::DPort a(s, "a", f::DPortDir::In, FT::real());
    f::DPort b(s, "b", f::DPortDir::Out, FT::real());
    EXPECT_EQ(s.findDPort("a"), &a);
    EXPECT_EQ(s.findDPort("b"), &b);
    EXPECT_EQ(s.findDPort("c"), nullptr);
    EXPECT_EQ(s.dports().size(), 2u);
}
