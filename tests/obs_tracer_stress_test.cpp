/// \file obs_tracer_stress_test.cpp
/// Concurrency stress for the striped tracer: many writer threads pushing
/// through a deliberately under-sized stripe pool while a collector loops
/// collect()/eventCount()/droppedCount() against the live rings. Run under
/// -DURTX_SANITIZE=thread this is the seqlock's race proof; in any build it
/// checks the structural invariants — no torn events, no unbounded
/// collector stalls, conservation of written = collectable + dropped.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/tracer.hpp"

namespace obs = urtx::obs;

namespace {

struct TracerStressTest : ::testing::Test {
    void SetUp() override {
        obs::Tracer::global().clear();
        obs::Tracer::global().setEnabled(true);
    }
    void TearDown() override {
        obs::Tracer::global().setEnabled(false);
        // Restore the defaults for any test binary reusing the process.
        obs::Tracer::global().setRingCapacity(1u << 16);
        obs::Tracer::global().setStripeCount(32);
        obs::Tracer::global().clear();
    }
};

// Writers encode their identity in the (stable, static) event name; a torn
// slot would surface as a name/id combination no writer ever produced.
constexpr int kWriters = 8;
const char* writerName(int w) {
    static const char* const names[] = {"w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7"};
    return names[w];
}

} // namespace

TEST_F(TracerStressTest, ConcurrentWritersAndCollectorStayConsistent) {
    obs::Tracer& tracer = obs::Tracer::global();
    // Fewer stripes than writers and tiny rings: maximum claim contention
    // and constant wraparound, the worst case for the slot seqlocks.
    tracer.setRingCapacity(64);
    tracer.setStripeCount(4);

    std::atomic<bool> stop{false};
    std::vector<std::uint64_t> written(kWriters, 0);
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
            // id encodes writer and sequence so the collector can verify
            // that every surfaced event is one some writer actually wrote.
            std::uint64_t i = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                tracer.record("stress", writerName(w), 's',
                              obs::nowNanos(), 0,
                              (static_cast<std::uint64_t>(w) << 32) | ++i);
            }
            written[static_cast<std::size_t>(w)] = i;
        });
    }

    // Collector: hammer the read side against live writers.
    std::size_t collections = 0;
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
    while (std::chrono::steady_clock::now() < deadline) {
        const auto events = tracer.collect();
        ++collections;
        for (const auto& ev : events) {
            ASSERT_NE(ev.name, nullptr);
            const int w = static_cast<int>(ev.id >> 32);
            ASSERT_GE(w, 0);
            ASSERT_LT(w, kWriters);
            // The seqlock's whole contract: name and id came from the same
            // push, never a mix of two writers' events.
            ASSERT_STREQ(ev.name, writerName(w)) << "torn slot surfaced to the collector";
            ASSERT_EQ(ev.phase, 's');
        }
        (void)tracer.eventCount();
        (void)tracer.droppedCount();
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto& t : writers) t.join();
    EXPECT_GT(collections, 0u);

    // Quiescent: the snapshot is exact and sorted, and every event written
    // is either still retained or accounted as dropped.
    std::uint64_t totalWritten = 0;
    for (std::uint64_t w : written) totalWritten += w;
    const auto settled = tracer.collect();
    std::uint64_t lastTs = 0;
    for (const auto& ev : settled) {
        ASSERT_GE(ev.ts, lastTs) << "collect() must sort by timestamp";
        lastTs = ev.ts;
    }
    EXPECT_LE(settled.size(), totalWritten);
    EXPECT_GE(settled.size() + tracer.droppedCount(), totalWritten)
        << "events may be dropped (wrap/contention) but never silently lost";
}

TEST_F(TracerStressTest, StripeRebuildDropsEventsButKeepsRecording) {
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.instant("stress", "before");
    EXPECT_GE(tracer.eventCount(), 1u);
    tracer.setStripeCount(8);
    EXPECT_EQ(tracer.stripeCount(), 8u);
    EXPECT_EQ(tracer.eventCount(), 0u) << "rebuild documents dropping retained events";
    tracer.instant("stress", "after");
    EXPECT_EQ(tracer.eventCount(), 1u)
        << "cached thread-local rings must re-resolve into the new pool";
}

TEST_F(TracerStressTest, StripeCountClamps) {
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.setStripeCount(0);
    EXPECT_EQ(tracer.stripeCount(), 1u);
    tracer.setStripeCount(100000);
    EXPECT_EQ(tracer.stripeCount(), 256u);
}
