#include <gtest/gtest.h>

#include "model/model_io.hpp"
#include "model/validator.hpp"
#include "model/xml.hpp"

namespace m = urtx::model;
namespace f = urtx::flow;

// ----------------------------------------------------------------- XML layer

TEST(Xml, EscapeRoundTrip) {
    const std::string nasty = "a<b>&\"c'd";
    EXPECT_EQ(m::xmlUnescape(m::xmlEscape(nasty)), nasty);
    EXPECT_EQ(m::xmlEscape("<"), "&lt;");
    EXPECT_THROW(m::xmlUnescape("&bogus;"), std::invalid_argument);
    EXPECT_THROW(m::xmlUnescape("& alone"), std::invalid_argument);
}

TEST(Xml, WriteProducesWellFormedDocument) {
    m::XmlNode root("model");
    root.attr("name", "demo");
    root.child("part").attr("class", "A<B>");
    const std::string text = m::writeXml(root);
    EXPECT_NE(text.find("<?xml"), std::string::npos);
    EXPECT_NE(text.find("class=\"A&lt;B&gt;\""), std::string::npos);
}

TEST(Xml, ParseSimpleDocument) {
    const auto n = m::parseXml("<a x=\"1\"><b/><b y=\"2\"/></a>");
    EXPECT_EQ(n.tag, "a");
    EXPECT_EQ(n.attrOr("x"), "1");
    ASSERT_EQ(n.children.size(), 2u);
    EXPECT_EQ(n.children[1].attrOr("y"), "2");
    EXPECT_EQ(n.childrenNamed("b").size(), 2u);
    EXPECT_NE(n.firstChild("b"), nullptr);
    EXPECT_EQ(n.firstChild("c"), nullptr);
}

TEST(Xml, ParseHandlesDeclarationAndComments) {
    const auto n = m::parseXml("<?xml version=\"1.0\"?>\n<!-- hi -->\n<a><!-- inner --><b/></a>");
    EXPECT_EQ(n.tag, "a");
    EXPECT_EQ(n.children.size(), 1u);
}

TEST(Xml, ParseSingleQuotedAttributes) {
    const auto n = m::parseXml("<a x='hi'/>");
    EXPECT_EQ(n.attrOr("x"), "hi");
}

TEST(Xml, ParseRejectsMalformed) {
    EXPECT_THROW(m::parseXml(""), std::invalid_argument);
    EXPECT_THROW(m::parseXml("<a>"), std::invalid_argument);
    EXPECT_THROW(m::parseXml("<a></b>"), std::invalid_argument);
    EXPECT_THROW(m::parseXml("<a x=1/>"), std::invalid_argument);
    EXPECT_THROW(m::parseXml("<a>text</a>"), std::invalid_argument);
    EXPECT_THROW(m::parseXml("<a/><b/>"), std::invalid_argument);
}

TEST(Xml, WriteParseRoundTrip) {
    m::XmlNode root("model");
    root.attr("name", "x");
    auto& c = root.child("capsule");
    c.attr("name", "C");
    c.child("port").attr("name", "p").attr("protocol", "P");
    const auto parsed = m::parseXml(m::writeXml(root));
    EXPECT_EQ(parsed.tag, "model");
    ASSERT_EQ(parsed.children.size(), 1u);
    EXPECT_EQ(parsed.children[0].children[0].attrOr("name"), "p");
}

// ------------------------------------------------------------ model <-> XML

namespace {

m::Model sampleModel() {
    m::Model mod;
    mod.name = "sample";
    mod.protocols.push_back({"Ctl", {{"go", "out"}, {"done", "in"}, {"ping", "inout"}}});
    mod.flowTypes.push_back({"Scalar", f::FlowType::real()});
    mod.flowTypes.push_back(
        {"PV", f::FlowType::record({{"p", f::FlowType::real()}, {"v", f::FlowType::real()}})});

    m::StreamerClassDecl plant;
    plant.name = "Plant";
    plant.solver = "RK45";
    plant.equations = "dx = A x + B u";
    plant.ports.push_back({"u", m::PortDecl::Kind::Data, "", false, false, "Scalar", "in"});
    plant.ports.push_back({"y", m::PortDecl::Kind::Data, "", false, false, "PV", "out"});
    plant.ports.push_back({"s", m::PortDecl::Kind::Signal, "Ctl", true, false, "", ""});
    mod.streamers.push_back(plant);

    m::StreamerClassDecl group;
    group.name = "Group";
    group.parts.push_back({"plant", "Plant", m::PartDecl::Kind::Streamer});
    group.relays.push_back({"r", "PV", 3});
    group.ports.push_back({"u", m::PortDecl::Kind::Data, "", false, false, "Scalar", "in"});
    group.flows.push_back({"u", "plant.u"});
    group.flows.push_back({"plant.y", "r.in"});
    mod.streamers.push_back(group);

    m::CapsuleClassDecl cap;
    cap.name = "Super";
    cap.ports.push_back({"ctl", m::PortDecl::Kind::Signal, "Ctl", false, false, "", ""});
    cap.ports.push_back({"rel", m::PortDecl::Kind::Data, "", false, true, "Scalar", "in"});
    cap.parts.push_back({"grp", "Group", m::PartDecl::Kind::Streamer});
    cap.states.push_back({"Off", "", true});
    cap.states.push_back({"On", "", false});
    cap.states.push_back({"Fast", "On", false});
    cap.transitions.push_back({"Off", "On", "go", "armed", "notifyStart"});
    mod.capsules.push_back(cap);
    mod.topCapsule = "Super";
    return mod;
}

} // namespace

TEST(ModelIo, RoundTripPreservesEverything) {
    const m::Model orig = sampleModel();
    const m::Model back = m::fromXml(m::toXml(orig));

    EXPECT_EQ(back.name, orig.name);
    ASSERT_EQ(back.protocols.size(), 1u);
    EXPECT_EQ(back.protocols[0].signals.size(), 3u);
    EXPECT_EQ(back.protocols[0].signals[2].dir, "inout");

    ASSERT_EQ(back.flowTypes.size(), 2u);
    EXPECT_TRUE(back.flowTypes[1].type.equals(orig.flowTypes[1].type));

    ASSERT_EQ(back.streamers.size(), 2u);
    const auto& plant = back.streamers[0];
    EXPECT_EQ(plant.solver, "RK45");
    EXPECT_EQ(plant.equations, "dx = A x + B u");
    ASSERT_EQ(plant.ports.size(), 3u);
    EXPECT_EQ(plant.ports[2].kind, m::PortDecl::Kind::Signal);
    EXPECT_TRUE(plant.ports[2].conjugated);

    const auto& group = back.streamers[1];
    ASSERT_EQ(group.relays.size(), 1u);
    EXPECT_EQ(group.relays[0].fanout, 3u);
    ASSERT_EQ(group.flows.size(), 2u);
    EXPECT_EQ(group.flows[1].from, "plant.y");

    ASSERT_EQ(back.capsules.size(), 1u);
    const auto& cap = back.capsules[0];
    EXPECT_TRUE(cap.ports[1].relay);
    ASSERT_EQ(cap.states.size(), 3u);
    EXPECT_EQ(cap.states[2].parent, "On");
    EXPECT_TRUE(cap.states[0].initial);
    ASSERT_EQ(cap.transitions.size(), 1u);
    EXPECT_EQ(cap.transitions[0].guard, "armed");
    EXPECT_EQ(cap.transitions[0].action, "notifyStart");
    EXPECT_EQ(back.topCapsule, "Super");
}

TEST(ModelIo, RoundTrippedModelStillValidates) {
    // The sample is intentionally missing a solver on Group's leaf? Group
    // has parts, so only warnings at most should appear.
    const m::Model back = m::fromXml(m::toXml(sampleModel()));
    const auto diags = m::Validator().validate(back);
    EXPECT_TRUE(m::Validator::ok(diags)) << m::Validator::render(diags);
}

TEST(ModelIo, FileSaveLoad) {
    const std::string path = "/tmp/urtx_model_io_test.xml";
    m::saveModel(sampleModel(), path);
    const m::Model back = m::loadModel(path);
    EXPECT_EQ(back.name, "sample");
    EXPECT_THROW(m::loadModel("/nonexistent/dir/x.xml"), std::runtime_error);
}

TEST(ModelIo, RejectsWrongRoot) {
    EXPECT_THROW(m::fromXml("<notmodel/>"), std::invalid_argument);
}

TEST(ModelIo, UnknownTagsIgnoredForForwardCompat) {
    const m::Model back = m::fromXml("<model name=\"x\"><future-thing a=\"1\"/></model>");
    EXPECT_EQ(back.name, "x");
    EXPECT_TRUE(back.capsules.empty());
}
