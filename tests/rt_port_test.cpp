#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rt/capsule.hpp"
#include "rt/port.hpp"

namespace rt = urtx::rt;

namespace {

rt::Protocol& pingProto() {
    static rt::Protocol p = [] {
        rt::Protocol q{"Ping"};
        q.out("ping").in("pong");
        return q;
    }();
    return p;
}

/// Capsule that records every delivered message's signal name.
struct Recorder : rt::Capsule {
    using rt::Capsule::Capsule;
    std::vector<std::string> log;

protected:
    void onMessage(const rt::Message& m) override { log.push_back(m.signalName()); }
};

} // namespace

TEST(Port, DirectConnectionDeliversSynchronouslyWithoutController) {
    Recorder a{"a"}, b{"b"};
    rt::Port pa(a, "out", pingProto(), /*conjugated=*/false);
    rt::Port pb(b, "in", pingProto(), /*conjugated=*/true);
    rt::connect(pa, pb);
    EXPECT_TRUE(pa.send("ping"));
    ASSERT_EQ(b.log.size(), 1u);
    EXPECT_EQ(b.log[0], "ping");
    EXPECT_EQ(pa.sent(), 1u);
}

TEST(Port, ConjugatedSideSendsItsOwnSignals) {
    Recorder a{"a"}, b{"b"};
    rt::Port pa(a, "p", pingProto(), false);
    rt::Port pb(b, "p", pingProto(), true);
    rt::connect(pa, pb);
    EXPECT_TRUE(pb.send("pong"));
    ASSERT_EQ(a.log.size(), 1u);
    EXPECT_EQ(a.log[0], "pong");
}

TEST(Port, SendingWrongDirectionFails) {
    Recorder a{"a"}, b{"b"};
    rt::Port pa(a, "p", pingProto(), false);
    rt::Port pb(b, "p", pingProto(), true);
    rt::connect(pa, pb);
    EXPECT_FALSE(pa.send("pong")); // base cannot send an in-signal
    EXPECT_FALSE(pb.send("ping"));
    EXPECT_TRUE(b.log.empty());
}

TEST(Port, UnwiredSendFails) {
    Recorder a{"a"};
    rt::Port pa(a, "p", pingProto(), false);
    EXPECT_FALSE(pa.send("ping"));
    EXPECT_EQ(pa.sent(), 0u);
}

TEST(Port, SelfConnectionThrows) {
    Recorder a{"a"};
    rt::Port pa(a, "p", pingProto(), false);
    EXPECT_THROW(rt::connect(pa, pa), std::logic_error);
}

TEST(Port, ProtocolMismatchThrows) {
    static rt::Protocol other = [] {
        rt::Protocol q{"Other"};
        q.out("x");
        return q;
    }();
    Recorder a{"a"}, b{"b"};
    rt::Port pa(a, "p", pingProto(), false);
    rt::Port pb(b, "p", other, true);
    EXPECT_THROW(rt::connect(pa, pb), std::logic_error);
}

TEST(Port, SameConjugationPeersThrow) {
    Recorder a{"a"}, b{"b"};
    rt::Port pa(a, "p", pingProto(), false);
    rt::Port pb(b, "p", pingProto(), false);
    EXPECT_THROW(rt::connect(pa, pb), std::logic_error);
}

TEST(Port, EndPortRefusesSecondLink) {
    Recorder a{"a"}, b{"b"}, c{"c"};
    rt::Port pa(a, "p", pingProto(), false);
    rt::Port pb(b, "p", pingProto(), true);
    rt::Port pc(c, "p", pingProto(), true);
    rt::connect(pa, pb);
    EXPECT_THROW(rt::connect(pa, pc), std::logic_error);
}

TEST(Port, RelayChainResolvesAcrossBoundary) {
    // outer sender -> [relay on composite] -> inner receiver
    Recorder sender{"sender"};
    Recorder composite{"composite"};
    Recorder inner{"inner", &composite};

    rt::Port out(sender, "out", pingProto(), false);
    rt::Port relay(composite, "relay", pingProto(), true, rt::PortKind::Relay);
    rt::Port in(inner, "in", pingProto(), true);

    rt::connect(out, relay);  // sibling link: opposite conjugation
    rt::connect(relay, in);   // export link: same conjugation
    EXPECT_TRUE(out.send("ping"));
    ASSERT_EQ(inner.log.size(), 1u);
    EXPECT_EQ(inner.log[0], "ping");
    EXPECT_TRUE(composite.log.empty()) << "relay must not process messages";
}

TEST(Port, TwoLevelRelayChain) {
    Recorder sender{"sender"};
    Recorder outer{"outer"};
    Recorder mid{"mid", &outer};
    Recorder leaf{"leaf", &mid};

    rt::Port out(sender, "out", pingProto(), false);
    rt::Port r1(outer, "r1", pingProto(), true, rt::PortKind::Relay);
    rt::Port r2(mid, "r2", pingProto(), true, rt::PortKind::Relay);
    rt::Port in(leaf, "in", pingProto(), true);

    rt::connect(out, r1);
    rt::connect(r1, r2);
    rt::connect(r2, in);
    EXPECT_TRUE(out.send("ping"));
    ASSERT_EQ(leaf.log.size(), 1u);
}

TEST(Port, DanglingRelaySendFails) {
    Recorder sender{"sender"};
    Recorder composite{"composite"};
    rt::Port out(sender, "out", pingProto(), false);
    rt::Port relay(composite, "relay", pingProto(), true, rt::PortKind::Relay);
    rt::connect(out, relay);
    EXPECT_FALSE(out.send("ping")) << "relay with no inner binding dangles";
}

TEST(Port, ExportLinkRequiresSameConjugation) {
    Recorder composite{"composite"};
    Recorder inner{"inner", &composite};
    rt::Port relay(composite, "relay", pingProto(), true, rt::PortKind::Relay);
    rt::Port in(inner, "in", pingProto(), false); // wrong: differs from relay
    EXPECT_THROW(rt::connect(relay, in), std::logic_error);
}

TEST(Port, InternalEndPortTalksToChild) {
    // A parent's *end* port wired to a child's port: opposite conjugation.
    Recorder parent{"parent"};
    Recorder child{"child", &parent};
    rt::Port pp(parent, "internal", pingProto(), false);
    rt::Port cp(child, "up", pingProto(), true);
    rt::connect(pp, cp);
    EXPECT_TRUE(pp.send("ping"));
    ASSERT_EQ(child.log.size(), 1u);
    EXPECT_TRUE(cp.send("pong"));
    ASSERT_EQ(parent.log.size(), 1u);
}

TEST(Port, DisconnectStopsDelivery) {
    Recorder a{"a"}, b{"b"};
    rt::Port pa(a, "p", pingProto(), false);
    rt::Port pb(b, "p", pingProto(), true);
    rt::connect(pa, pb);
    rt::disconnect(pa, pb);
    EXPECT_FALSE(pa.send("ping"));
    EXPECT_FALSE(pa.isWired());
    EXPECT_FALSE(pb.isWired());
}

TEST(Port, PortDestructionUnwiresPeer) {
    Recorder a{"a"}, b{"b"};
    rt::Port pa(a, "p", pingProto(), false);
    {
        rt::Port pb(b, "p", pingProto(), true);
        rt::connect(pa, pb);
        EXPECT_TRUE(pa.isWired());
    }
    EXPECT_FALSE(pa.isWired());
    EXPECT_FALSE(pa.send("ping"));
}

TEST(Port, FindPortByName) {
    Recorder a{"a"};
    rt::Port p1(a, "north", pingProto(), false);
    rt::Port p2(a, "south", pingProto(), true);
    EXPECT_EQ(a.findPort("north"), &p1);
    EXPECT_EQ(a.findPort("south"), &p2);
    EXPECT_EQ(a.findPort("east"), nullptr);
    EXPECT_EQ(a.ports().size(), 2u);
}

TEST(Port, PayloadArrivesIntact) {
    Recorder a{"a"};
    struct Sink : rt::Capsule {
        using rt::Capsule::Capsule;
        double got = 0;

    protected:
        void onMessage(const rt::Message& m) override { got = m.dataOr<double>(-1); }
    } b{"b"};
    rt::Port pa(a, "p", pingProto(), false);
    rt::Port pb(b, "p", pingProto(), true);
    rt::connect(pa, pb);
    pa.send("ping", 3.25);
    EXPECT_DOUBLE_EQ(b.got, 3.25);
}
