#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <vector>

#include "control/control.hpp"
#include "flow/network.hpp"
#include "flow/relay.hpp"
#include "flow/solver_runner.hpp"

namespace f = urtx::flow;
namespace c = urtx::control;
namespace s = urtx::solver;

namespace {

struct Plain : f::Streamer {
    using f::Streamer::Streamer;
};

/// Randomly generated layered DAG of gain blocks fed by one constant; every
/// block's analytic output is the product of gains along its unique input
/// chain (fan-out via relays).
struct RandomDag {
    Plain top{"dag"};
    std::unique_ptr<c::Constant> source;
    std::vector<std::unique_ptr<c::Gain>> gains;
    std::vector<std::unique_ptr<f::Relay>> relays;
    std::vector<double> expected; ///< per-gain analytic output

    explicit RandomDag(unsigned seed, int layers, int perLayer) {
        std::mt19937 rng(seed);
        std::uniform_real_distribution<double> kDist(0.5, 2.0);

        source = std::make_unique<c::Constant>("src", &top, 1.0);

        // Previous layer's outputs as (port, analytic value).
        struct Out {
            f::DPort* port;
            double value;
        };
        std::vector<Out> prev{{&source->out(), 1.0}};

        for (int layer = 0; layer < layers; ++layer) {
            // Fan each previous output to the consumers that picked it; we
            // first decide consumer->producer, then create relays per
            // producer with enough fanout.
            std::vector<int> pick(static_cast<std::size_t>(perLayer));
            std::uniform_int_distribution<std::size_t> pDist(0, prev.size() - 1);
            std::vector<std::vector<int>> consumersOf(prev.size());
            for (int i = 0; i < perLayer; ++i) {
                const std::size_t p = pDist(rng);
                pick[static_cast<std::size_t>(i)] = static_cast<int>(p);
                consumersOf[p].push_back(i);
            }

            std::vector<Out> next;
            std::vector<f::DPort*> feedPort(static_cast<std::size_t>(perLayer), nullptr);
            for (std::size_t p = 0; p < prev.size(); ++p) {
                const auto& consumers = consumersOf[p];
                if (consumers.empty()) continue;
                if (consumers.size() == 1) {
                    feedPort[static_cast<std::size_t>(consumers[0])] = prev[p].port;
                } else {
                    relays.push_back(std::make_unique<f::Relay>(
                        "r" + std::to_string(layer) + "_" + std::to_string(p), &top,
                        f::FlowType::real(), consumers.size()));
                    f::flow(*prev[p].port, relays.back()->in());
                    for (std::size_t k = 0; k < consumers.size(); ++k) {
                        feedPort[static_cast<std::size_t>(consumers[k])] =
                            &relays.back()->out(k);
                    }
                }
            }
            for (int i = 0; i < perLayer; ++i) {
                const double k = kDist(rng);
                gains.push_back(std::make_unique<c::Gain>(
                    "g" + std::to_string(layer) + "_" + std::to_string(i), &top, k));
                f::flow(*feedPort[static_cast<std::size_t>(i)], gains.back()->in());
                const double value = prev[static_cast<std::size_t>(
                                         pick[static_cast<std::size_t>(i)])].value * k;
                expected.push_back(value);
                next.push_back({&gains.back()->out(), value});
            }
            prev = std::move(next);
        }
    }
};

} // namespace

class DagProperty : public ::testing::TestWithParam<unsigned> {};

INSTANTIATE_TEST_SUITE_P(Seeds, DagProperty, ::testing::Values(1u, 2u, 3u, 7u, 13u, 42u, 99u));

TEST_P(DagProperty, PropagationMatchesAnalyticProduct) {
    RandomDag dag(GetParam(), /*layers=*/4, /*perLayer=*/5);
    f::Network net(dag.top);
    s::Vec x;
    net.initState(0.0, x);
    net.computeOutputs(0.0, x);
    for (std::size_t i = 0; i < dag.gains.size(); ++i) {
        EXPECT_NEAR(dag.gains[i]->out().get(), dag.expected[i], 1e-12)
            << "gain " << dag.gains[i]->name();
    }
}

TEST_P(DagProperty, TopologicalOrderRespectsDependencies) {
    RandomDag dag(GetParam(), 3, 6);
    f::Network net(dag.top);
    const auto& order = net.order();
    auto position = [&](const f::Streamer* leaf) {
        return std::find(order.begin(), order.end(), leaf) - order.begin();
    };
    // Every leaf's resolved input source must be ordered before it when the
    // consumer is feedthrough.
    for (f::Streamer* leaf : order) {
        if (!leaf->directFeedthrough()) continue;
        for (f::DPort* port : leaf->dports()) {
            if (port->dir() != f::DPortDir::In || !port->isResolved()) continue;
            const f::Streamer& producer = port->resolvedSource()->owner();
            if (producer.isComposite()) continue;
            EXPECT_LT(position(&producer), position(leaf))
                << producer.name() << " must run before " << leaf->name();
        }
    }
}

TEST_P(DagProperty, FlatteningIsStable) {
    // Two networks over the same structure produce the same order and the
    // same propagation result.
    RandomDag dag(GetParam(), 3, 4);
    f::Network n1(dag.top);
    f::Network n2(dag.top);
    EXPECT_EQ(n1.order(), n2.order());
    s::Vec x;
    n2.initState(0.0, x);
    n2.computeOutputs(0.0, x);
    for (std::size_t i = 0; i < dag.gains.size(); ++i) {
        EXPECT_NEAR(dag.gains[i]->out().get(), dag.expected[i], 1e-12);
    }
}

// ------------------------ integrator-network invariants ---------------------

class ConservationProperty : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(ChainLengths, ConservationProperty, ::testing::Values(1, 2, 5, 10));

TEST_P(ConservationProperty, IntegratorChainOrdersOfT) {
    // src=1 -> n chained integrators: k-th integrator's output is t^k / k!.
    const int n = GetParam();
    Plain top{"chain"};
    c::Constant src("src", &top, 1.0);
    std::vector<std::unique_ptr<c::Integrator>> chain;
    f::DPort* prev = &src.out();
    for (int i = 0; i < n; ++i) {
        chain.push_back(std::make_unique<c::Integrator>("i" + std::to_string(i), &top, 0.0));
        f::flow(*prev, chain.back()->in());
        prev = &chain.back()->out();
    }
    f::SolverRunner runner(top, s::makeIntegrator("RK4"), 0.01);
    runner.initialize(0.0);
    runner.advanceTo(1.0);

    double factorial = 1.0;
    for (int k = 0; k < n; ++k) {
        factorial *= (k + 1);
        const auto state = runner.network().stateOf(*chain[static_cast<std::size_t>(k)],
                                                    runner.state());
        EXPECT_NEAR(state[0], 1.0 / factorial, 1e-6) << "integrator " << k;
    }
}

TEST(FlowProperty, EnergyConservedInLosslessOscillator) {
    // x'' = -x via two integrators: E = x^2 + v^2 constant under RK4.
    Plain top{"osc"};
    c::Integrator vel("v", &top, 1.0); // v0 = 1
    c::Integrator pos("x", &top, 0.0);
    c::Gain neg("neg", &top, -1.0);
    f::flow(vel.out(), pos.in());
    f::flow(pos.out(), neg.in());
    f::flow(neg.out(), vel.in());
    f::SolverRunner runner(top, s::makeIntegrator("RK4"), 0.001);
    runner.initialize(0.0);

    double maxDrift = 0.0;
    runner.setProbe([&](double, const f::Network& net) {
        const auto xs = net.stateOf(pos, runner.state());
        const auto vs = net.stateOf(vel, runner.state());
        const double e = xs[0] * xs[0] + vs[0] * vs[0];
        maxDrift = std::max(maxDrift, std::abs(e - 1.0));
    });
    runner.advanceTo(10.0);
    EXPECT_LT(maxDrift, 1e-9) << "RK4 at dt=1e-3 must conserve energy to ~1e-10";
}
