#include <gtest/gtest.h>

#include "model/model.hpp"
#include "model/stereotype.hpp"
#include "model/type_parser.hpp"

namespace m = urtx::model;
namespace f = urtx::flow;

// ------------------------------------------------------------------ Table 1

TEST(Stereotype, Table1HasSixRows) {
    const auto& rows = m::table1();
    ASSERT_EQ(rows.size(), 6u);
    EXPECT_EQ(rows[0].umlrt, m::Stereotype::Capsule);
    ASSERT_EQ(rows[0].extension.size(), 1u);
    EXPECT_EQ(rows[0].extension[0], m::Stereotype::Streamer);
}

TEST(Stereotype, Table1MatchesPaperRows) {
    const auto& rows = m::table1();
    // port -> DPort, SPort
    EXPECT_EQ(rows[1].umlrt, m::Stereotype::Port);
    EXPECT_EQ(rows[1].extension,
              (std::vector<m::Stereotype>{m::Stereotype::DPort, m::Stereotype::SPort}));
    // connect -> flow, relay
    EXPECT_EQ(rows[2].umlrt, m::Stereotype::Connect);
    EXPECT_EQ(rows[2].extension,
              (std::vector<m::Stereotype>{m::Stereotype::Flow, m::Stereotype::Relay}));
    // protocol -> flow type
    EXPECT_EQ(rows[3].extension, (std::vector<m::Stereotype>{m::Stereotype::FlowTypeKind}));
    // state machine -> solver, strategy
    EXPECT_EQ(rows[4].extension,
              (std::vector<m::Stereotype>{m::Stereotype::Solver, m::Stereotype::Strategy}));
    // Time service -> Time
    EXPECT_EQ(rows[5].extension, (std::vector<m::Stereotype>{m::Stereotype::Time}));
}

TEST(Stereotype, NamesRender) {
    EXPECT_STREQ(m::to_string(m::Stereotype::Streamer), "streamer");
    EXPECT_STREQ(m::to_string(m::Stereotype::DPort), "DPort");
    EXPECT_STREQ(m::to_string(m::Stereotype::FlowTypeKind), "flow type");
    EXPECT_STREQ(m::to_string(m::Stereotype::TimeService), "Time service");
}

TEST(Stereotype, NewStereotypeCountMatchesTable) {
    // The table as printed in the paper lists nine extension names.
    EXPECT_EQ(m::newStereotypeCount(), 9u);
}

// ------------------------------------------------------------------- lookup

TEST(Model, LookupHelpers) {
    m::Model mod;
    mod.protocols.push_back({"P", {{"go", "out"}}});
    mod.flowTypes.push_back({"T", f::FlowType::real()});
    mod.capsules.push_back({"C", {}, {}, {}, {}, {}});
    mod.streamers.push_back({"S", {}, {}, {}, {}, "RK4", ""});
    EXPECT_NE(mod.findProtocol("P"), nullptr);
    EXPECT_EQ(mod.findProtocol("Q"), nullptr);
    EXPECT_NE(mod.findFlowType("T"), nullptr);
    EXPECT_NE(mod.findCapsule("C"), nullptr);
    EXPECT_NE(mod.findStreamer("S"), nullptr);
    EXPECT_EQ(mod.findStreamer("C"), nullptr);
}

TEST(Model, SplitEndpoint) {
    auto ep = m::splitEndpoint("part.port");
    EXPECT_EQ(ep.part, "part");
    EXPECT_EQ(ep.port, "port");
    ep = m::splitEndpoint("boundary");
    EXPECT_EQ(ep.part, "");
    EXPECT_EQ(ep.port, "boundary");
}

// -------------------------------------------------------------- type parser

TEST(TypeParser, Scalars) {
    EXPECT_TRUE(m::parseFlowType("Real").equals(f::FlowType::real()));
    EXPECT_TRUE(m::parseFlowType("Int").equals(f::FlowType::integer()));
    EXPECT_TRUE(m::parseFlowType("Bool").equals(f::FlowType::boolean()));
    EXPECT_TRUE(m::parseFlowType("  Real  ").equals(f::FlowType::real()));
}

TEST(TypeParser, Vector) {
    EXPECT_TRUE(
        m::parseFlowType("Vector<Real,3>").equals(f::FlowType::vector(f::FlowType::real(), 3)));
    EXPECT_TRUE(m::parseFlowType("Vector< Int , 2 >")
                    .equals(f::FlowType::vector(f::FlowType::integer(), 2)));
}

TEST(TypeParser, Record) {
    const auto t = m::parseFlowType("{pos:Real, vel:Real}");
    EXPECT_TRUE(t.equals(
        f::FlowType::record({{"pos", f::FlowType::real()}, {"vel", f::FlowType::real()}})));
}

TEST(TypeParser, Nested) {
    const auto t = m::parseFlowType("{wheel:Vector<Real,4>, mode:Int}");
    EXPECT_EQ(t.width(), 5u);
    EXPECT_EQ(t.fieldType("wheel")->count(), 4u);
}

TEST(TypeParser, RoundTripsToString) {
    const char* cases[] = {"Real", "Bool", "Vector<Int,7>", "{a:Real, b:Vector<Real,2>}",
                           "Vector<{x:Real, y:Real},3>"};
    for (const char* c : cases) {
        const auto t = m::parseFlowType(c);
        EXPECT_TRUE(m::parseFlowType(t.toString()).equals(t)) << c;
    }
}

TEST(TypeParser, RejectsMalformed) {
    EXPECT_THROW(m::parseFlowType(""), std::invalid_argument);
    EXPECT_THROW(m::parseFlowType("Float"), std::invalid_argument);
    EXPECT_THROW(m::parseFlowType("Vector<Real>"), std::invalid_argument);
    EXPECT_THROW(m::parseFlowType("Vector<Real,>"), std::invalid_argument);
    EXPECT_THROW(m::parseFlowType("{a}"), std::invalid_argument);
    EXPECT_THROW(m::parseFlowType("{a:Real"), std::invalid_argument);
    EXPECT_THROW(m::parseFlowType("Real junk"), std::invalid_argument);
    EXPECT_THROW(m::parseFlowType("Vector<Real,0>"), std::invalid_argument);
}
