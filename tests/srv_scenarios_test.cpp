/// \file srv_scenarios_test.cpp
/// The shared scenario factories: registration, parameter overrides, and
/// the behavior of each built-in system when built by name.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "srv/scenario.hpp"
#include "srv/scenarios/scenarios.hpp"

namespace srv = urtx::srv;
namespace scen = urtx::srv::scenarios;

namespace {

srv::ScenarioLibrary& lib() {
    static srv::ScenarioLibrary l;
    static const bool registered = (scen::registerBuiltins(l), true);
    (void)registered;
    return l;
}

} // namespace

TEST(SrvScenarios, BuiltinsRegister) {
    EXPECT_TRUE(lib().has("tank"));
    EXPECT_TRUE(lib().has("cruise"));
    EXPECT_TRUE(lib().has("pendulum"));
    EXPECT_TRUE(lib().has("faulty"));
    EXPECT_FALSE(lib().has("nonsense"));
    EXPECT_EQ(lib().list().size(), 4u);
}

TEST(SrvScenarios, UnknownNameThrows) {
    EXPECT_THROW(lib().build("nonsense", {}), std::invalid_argument);
}

TEST(SrvScenarios, ReRegisteringReplaces) {
    srv::ScenarioLibrary l;
    scen::registerBuiltins(l);
    scen::registerBuiltins(l); // idempotent: replaces, does not duplicate
    EXPECT_EQ(l.list().size(), 4u);
}

TEST(SrvScenarios, TankRunsAndTraces) {
    srv::ScenarioParams p;
    p.set("qin", 0.6);
    const auto sc = lib().build("tank", p);
    auto* tank = dynamic_cast<scen::TankScenario*>(sc.get());
    ASSERT_NE(tank, nullptr);
    EXPECT_DOUBLE_EQ(tank->tank().param("qin"), 0.6); // override forwarded
    sc->system().run(5.0);
    EXPECT_GT(sc->system().trace().rows(), 0u);
    EXPECT_EQ(sc->system().trace().names().size(), 3u); // h1, h2, pump
    std::string detail;
    EXPECT_TRUE(sc->verdict(detail));
    EXPECT_FALSE(detail.empty());
}

TEST(SrvScenarios, KnownParamsForward) {
    srv::ScenarioParams p;
    p.set("v0", 12.0);
    const auto sc = lib().build("cruise", p);
    auto* cruise = dynamic_cast<scen::CruiseScenario*>(sc.get());
    ASSERT_NE(cruise, nullptr);
    EXPECT_DOUBLE_EQ(cruise->car().param("v0"), 12.0);
}

TEST(SrvScenarios, UnknownParamIsStructuredError) {
    srv::ScenarioParams p;
    p.set("v0", 12.0);
    p.set("no_such_param", 99.0);
    try {
        lib().build("cruise", p);
        FAIL() << "expected UnknownParamError";
    } catch (const srv::UnknownParamError& e) {
        EXPECT_EQ(e.scenario(), "cruise");
        ASSERT_EQ(e.keys().size(), 1u);
        EXPECT_EQ(e.keys()[0], "no_such_param");
        EXPECT_NE(std::string(e.what()).find("no_such_param"), std::string::npos);
    }
}

TEST(SrvScenarios, UnknownStringParamRejectedToo) {
    srv::ScenarioParams p;
    p.set("integraator", std::string("Euler")); // typo'd key
    EXPECT_THROW(lib().build("pendulum", p), srv::UnknownParamError);
}

TEST(SrvScenarios, ValidateWithoutBuilding) {
    srv::ScenarioParams good;
    good.set("theta0", 0.1);
    EXPECT_NO_THROW(lib().validate("pendulum", good));
    srv::ScenarioParams bad;
    bad.set("thetaO", 0.1);
    EXPECT_THROW(lib().validate("pendulum", bad), srv::UnknownParamError);
    EXPECT_THROW(lib().validate("no-such-scenario", good), std::invalid_argument);
}

TEST(SrvScenarios, AdHocFactoriesStayOpen) {
    srv::ScenarioLibrary local;
    local.add("open", "schema-less factory",
              [](const srv::ScenarioParams& p) -> std::unique_ptr<srv::Scenario> {
                  return std::make_unique<scen::CruiseScenario>(p);
              });
    srv::ScenarioParams p;
    p.set("anything_goes", 1.0);
    EXPECT_NO_THROW(local.validate("open", p));
}

TEST(SrvScenarios, PendulumIntegratorParam) {
    srv::ScenarioParams p;
    p.set("integrator", std::string("Euler"));
    const auto sc = lib().build("pendulum", p);
    auto* pend = dynamic_cast<scen::PendulumScenario*>(sc.get());
    ASSERT_NE(pend, nullptr);
    EXPECT_STREQ(pend->runner().integrator().name(), "Euler");
    sc->system().run(0.5);
    std::string detail;
    EXPECT_TRUE(sc->verdict(detail)); // short horizon: not judged, but detailed
    EXPECT_NE(detail.find("theta"), std::string::npos);
}

TEST(SrvScenarios, FaultyThrowsAtConfiguredTime) {
    srv::ScenarioParams p;
    p.set("throwAt", 0.1);
    const auto sc = lib().build("faulty", p);
    EXPECT_THROW(sc->system().run(1.0), std::runtime_error);
    EXPECT_LT(sc->system().now(), 1.0); // aborted mid-run
}

TEST(SrvScenarios, FaultyBenignBeforeThrowTime) {
    srv::ScenarioParams p;
    p.set("throwAt", 1e18);
    const auto sc = lib().build("faulty", p);
    sc->system().run(0.5);
    EXPECT_DOUBLE_EQ(sc->system().now(), 0.5);
}

TEST(SrvScenarios, TraceDataCopiesAndHashes) {
    const auto sc = lib().build("tank", {});
    sc->system().run(2.0);
    const srv::TraceData a = srv::TraceData::from(sc->system().trace());
    const srv::TraceData b = srv::TraceData::from(sc->system().trace());
    EXPECT_GT(a.rows(), 0u);
    EXPECT_EQ(a.channels.size(), 3u);
    EXPECT_EQ(a.hash(), b.hash());
    srv::TraceData c = b;
    c.data[0] += 1e-12; // any bit-level change must change the hash
    EXPECT_NE(a.hash(), c.hash());
    EXPECT_DOUBLE_EQ(a.valueAt(0, 0), sc->system().trace().valueAt(0, 0));
}
