/// \file srv_daemon_test.cpp
/// ServeDaemon lifecycle tests driven through socketpair(2): the test holds
/// the client end, the daemon adopts the server end, and the wire protocol
/// (newline-delimited JSON in both directions) is exercised without any
/// filesystem socket or child process.

#include <gtest/gtest.h>

#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/tracer.hpp"
#include "srv/batch_io.hpp"
#include "srv/daemon/daemon.hpp"
#include "srv/daemon/framing.hpp"
#include "srv/json.hpp"
#include "srv/scenario.hpp"
#include "srv/scenarios/scenarios.hpp"

namespace srv = urtx::srv;
namespace json = urtx::srv::json;
namespace wire = urtx::srv::wire;
namespace wiregen = urtx::srv::wiregen;

namespace {

void registerOnce() {
    static const bool done =
        (srv::scenarios::registerBuiltins(srv::ScenarioLibrary::global()), true);
    (void)done;
}

/// Client end of a socketpair whose other end a daemon adopted. Reads are
/// line-buffered with a receive timeout so a broken daemon fails the test
/// instead of hanging it.
class Client {
public:
    explicit Client(srv::ServeDaemon& daemon, int timeoutSeconds = 30) {
        int sv[2] = {-1, -1};
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
            ADD_FAILURE() << "socketpair failed";
            return;
        }
        fd_ = sv[0];
        timeval tv{timeoutSeconds, 0};
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        daemon.adoptConnection(sv[1]);
    }
    ~Client() { close(); }

    void close() {
        if (fd_ >= 0) ::close(fd_);
        fd_ = -1;
    }

    /// Half-close: no more requests, but results keep streaming.
    void shutdownWrites() const {
        if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
    }

    bool sendLine(const std::string& line) const {
        std::string buf = line + "\n";
        std::size_t off = 0;
        while (off < buf.size()) {
            const ssize_t n =
                ::send(fd_, buf.data() + off, buf.size() - off, MSG_NOSIGNAL);
            if (n <= 0) return false;
            off += static_cast<std::size_t>(n);
        }
        return true;
    }

    /// Next record line, or nullopt on EOF / timeout.
    std::optional<std::string> readLine() {
        for (;;) {
            const auto nl = pending_.find('\n');
            if (nl != std::string::npos) {
                std::string line = pending_.substr(0, nl);
                pending_.erase(0, nl + 1);
                return line;
            }
            char chunk[4096];
            const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0) return std::nullopt;
            pending_.append(chunk, static_cast<std::size_t>(n));
        }
    }

    json::Value readRecord() {
        const auto line = readLine();
        if (!line) {
            ADD_FAILURE() << "no record (EOF or timeout)";
            return {};
        }
        std::string err;
        auto v = json::parse(*line, &err);
        if (!v) {
            ADD_FAILURE() << "unparseable record: " << err << " in " << *line;
            return {};
        }
        return *v;
    }

    int fd() const { return fd_; }

private:
    int fd_ = -1;
    std::string pending_;
};

/// Client end of a socketpair speaking the binary framing: sends the
/// preamble on construction and checks the daemon's echo.
class BinaryClient {
public:
    explicit BinaryClient(srv::ServeDaemon& daemon, int timeoutSeconds = 30) {
        int sv[2] = {-1, -1};
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
            ADD_FAILURE() << "socketpair failed";
            return;
        }
        fd_ = sv[0];
        timeval tv{timeoutSeconds, 0};
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        daemon.adoptConnection(sv[1]);
        if (!sendRaw(wire::preamble())) return;
        std::string hello;
        ok_ = readExact(wiregen::kPreambleBytes, &hello) &&
              wire::checkPreamble(hello.data());
    }
    ~BinaryClient() { close(); }

    bool ok() const { return ok_; }
    int fd() const { return fd_; }

    void close() {
        if (fd_ >= 0) ::close(fd_);
        fd_ = -1;
    }

    void shutdownWrites() const {
        if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
    }

    bool sendRaw(const std::string& bytes) const {
        std::size_t off = 0;
        while (off < bytes.size()) {
            const ssize_t n =
                ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
            if (n <= 0) return false;
            off += static_cast<std::size_t>(n);
        }
        return true;
    }

    bool sendFrame(wire::FrameType type, const std::string& payload) const {
        std::string out;
        wire::appendFrame(out, type, payload);
        return sendRaw(out);
    }

    bool sendJob(const srv::ScenarioSpec& spec) const {
        return sendFrame(wire::FrameType::Job, wire::jobToWire(spec).encode());
    }

    /// Next frame as (type, payload), or nullopt on EOF / timeout.
    std::optional<std::pair<std::uint8_t, std::string>> readFrame() {
        std::string hdr;
        if (!readExact(wiregen::kFrameHeaderBytes, &hdr)) return std::nullopt;
        const auto h = wire::peekFrameHeader(hdr);
        std::string payload;
        if (!readExact(h->length, &payload)) return std::nullopt;
        return std::make_pair(h->type, std::move(payload));
    }

    /// Next record, re-rendered to the JSON line schema: Result frames are
    /// decoded and rendered with recordJson; Error/ControlResponse payloads
    /// are the JSON text itself.
    json::Value readRecord() {
        const auto f = readFrame();
        if (!f) {
            ADD_FAILURE() << "no frame (EOF or timeout)";
            return {};
        }
        std::string line;
        if (f->first == static_cast<std::uint8_t>(wire::FrameType::Result)) {
            wiregen::WireResult w;
            std::string err;
            if (!wiregen::WireResult::decode(w, f->second.data(), f->second.size(),
                                             &err)) {
                ADD_FAILURE() << "undecodable result frame: " << err;
                return {};
            }
            line = srv::recordJson(wire::resultFromWire(w));
        } else {
            line = f->second;
        }
        std::string err;
        auto v = json::parse(line, &err);
        if (!v) {
            ADD_FAILURE() << "unparseable record: " << err << " in " << line;
            return {};
        }
        return *v;
    }

private:
    bool readExact(std::size_t n, std::string* out) {
        while (pending_.size() < n) {
            char chunk[4096];
            const ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (r <= 0) return false;
            pending_.append(chunk, static_cast<std::size_t>(r));
        }
        out->assign(pending_, 0, n);
        pending_.erase(0, n);
        return true;
    }

    int fd_ = -1;
    bool ok_ = false;
    std::string pending_;
};

std::size_t openFdCount() {
    DIR* d = ::opendir("/proc/self/fd");
    if (!d) return 0;
    std::size_t n = 0;
    while (const dirent* e = ::readdir(d)) {
        if (e->d_name[0] != '.') ++n;
    }
    ::closedir(d);
    return n;
}

srv::ScenarioSpec tankSpec(const std::string& name, double horizon = 2.0) {
    srv::ScenarioSpec spec;
    spec.scenario = "tank";
    spec.name = name;
    spec.horizon = horizon;
    spec.mode = urtx::sim::ExecutionMode::SingleThread;
    return spec;
}

srv::DaemonConfig testConfig() {
    srv::DaemonConfig cfg;
    cfg.engine.workers = 2;
    cfg.engine.scopedMetrics = false;
    cfg.engine.postmortems = false;
    cfg.warmCacheCapacity = 4;
    cfg.resultCacheCapacity = 32;
    cfg.maxInFlightPerConnection = 8;
    return cfg;
}

std::string tankJob(const std::string& name, double horizon = 2.0) {
    return "{\"scenario\": \"tank\", \"name\": \"" + name +
           "\", \"horizon\": " + std::to_string(horizon) + ", \"mode\": \"single\"}";
}

} // namespace

TEST(SrvDaemonTest, ConnectSubmitStreamDisconnect) {
    registerOnce();
    srv::ServeDaemon daemon(testConfig());
    ASSERT_TRUE(daemon.start());
    {
        Client c(daemon);
        constexpr int kJobs = 4;
        for (int i = 0; i < kJobs; ++i) {
            ASSERT_TRUE(c.sendLine(tankJob("job" + std::to_string(i))));
        }
        std::set<std::string> names;
        for (int i = 0; i < kJobs; ++i) {
            const json::Value rec = c.readRecord();
            EXPECT_EQ(rec.strOr("status", ""), "succeeded");
            EXPECT_TRUE(rec.boolOr("passed", false));
            names.insert(rec.strOr("name", ""));
        }
        // Out-of-order delivery is allowed; every name exactly once is not.
        EXPECT_EQ(names.size(), kJobs);
        for (int i = 0; i < kJobs; ++i) {
            EXPECT_TRUE(names.count("job" + std::to_string(i)));
        }
    }
    daemon.stop();
    EXPECT_EQ(daemon.connectionsServed(), 1u);
    EXPECT_EQ(daemon.activeConnections(), 0u);
}

TEST(SrvDaemonTest, HalfCloseStillStreamsAllResults) {
    registerOnce();
    srv::ServeDaemon daemon(testConfig());
    ASSERT_TRUE(daemon.start());
    Client c(daemon);
    constexpr int kJobs = 3;
    for (int i = 0; i < kJobs; ++i) {
        ASSERT_TRUE(c.sendLine(tankJob("hc" + std::to_string(i))));
    }
    c.shutdownWrites(); // urtx_client's submit-then-tail pattern
    int got = 0;
    while (auto line = c.readLine()) {
        std::string err;
        auto rec = json::parse(*line, &err);
        ASSERT_TRUE(rec) << err;
        EXPECT_EQ(rec->strOr("status", ""), "succeeded");
        ++got;
    }
    EXPECT_EQ(got, kJobs);
    daemon.stop();
}

TEST(SrvDaemonTest, ResultCacheHitIsBitIdentical) {
    registerOnce();
    srv::ServeDaemon daemon(testConfig());
    ASSERT_TRUE(daemon.start());
    Client c(daemon);

    ASSERT_TRUE(c.sendLine(tankJob("cold")));
    const json::Value cold = c.readRecord();
    ASSERT_EQ(cold.strOr("status", ""), "succeeded");
    EXPECT_FALSE(cold.boolOr("cached_result", false));
    const std::string coldHash = cold.strOr("trace_hash", "");
    ASSERT_FALSE(coldHash.empty());

    // Same job bytes again: replayed from the result cache, same hash,
    // requested name stamped onto the stored record.
    ASSERT_TRUE(c.sendLine(tankJob("replay")));
    const json::Value hit = c.readRecord();
    EXPECT_EQ(hit.strOr("status", ""), "succeeded");
    EXPECT_TRUE(hit.boolOr("cached_result", false));
    EXPECT_EQ(hit.strOr("name", ""), "replay");
    EXPECT_EQ(hit.strOr("trace_hash", ""), coldHash);
    daemon.stop();
}

TEST(SrvDaemonTest, WarmReuseIsBitIdentical) {
    registerOnce();
    // Result cache off: the second run must actually execute, on the warm
    // instance parked by the first, and still hash identically.
    srv::DaemonConfig cfg = testConfig();
    cfg.resultCacheCapacity = 0;
    srv::ServeDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start());
    Client c(daemon);

    ASSERT_TRUE(c.sendLine(tankJob("cold")));
    const json::Value cold = c.readRecord();
    ASSERT_EQ(cold.strOr("status", ""), "succeeded");
    EXPECT_FALSE(cold.boolOr("warm_reuse", false));
    const std::string coldHash = cold.strOr("trace_hash", "");
    ASSERT_FALSE(coldHash.empty());

    ASSERT_TRUE(c.sendLine(tankJob("warm")));
    const json::Value warm = c.readRecord();
    EXPECT_EQ(warm.strOr("status", ""), "succeeded");
    EXPECT_FALSE(warm.boolOr("cached_result", false));
    EXPECT_TRUE(warm.boolOr("warm_reuse", false));
    EXPECT_EQ(warm.strOr("trace_hash", ""), coldHash);
    daemon.stop();
}

TEST(SrvDaemonTest, MidStreamClientDeathDoesNotKillDaemon) {
    registerOnce();
    srv::ServeDaemon daemon(testConfig());
    ASSERT_TRUE(daemon.start());
    {
        Client dying(daemon);
        for (int i = 0; i < 6; ++i) {
            ASSERT_TRUE(dying.sendLine(tankJob("doomed" + std::to_string(i))));
        }
        dying.close(); // results now hit a dead socket mid-stream
    }
    // The daemon must survive and keep serving new connections.
    Client c(daemon);
    ASSERT_TRUE(c.sendLine(tankJob("survivor")));
    const json::Value rec = c.readRecord();
    EXPECT_EQ(rec.strOr("status", ""), "succeeded");
    EXPECT_EQ(rec.strOr("name", ""), "survivor");
    daemon.stop();
    EXPECT_EQ(daemon.connectionsServed(), 2u);
}

TEST(SrvDaemonTest, MalformedLinesYieldErrorRecords) {
    registerOnce();
    srv::ServeDaemon daemon(testConfig());
    ASSERT_TRUE(daemon.start());
    Client c(daemon);

    ASSERT_TRUE(c.sendLine("this is not json"));
    json::Value rec = c.readRecord();
    EXPECT_EQ(rec.strOr("status", ""), "error");
    EXPECT_NE(rec.strOr("error_string", ""), "");

    ASSERT_TRUE(c.sendLine("[1, 2, 3]")); // valid JSON, not a job object
    rec = c.readRecord();
    EXPECT_EQ(rec.strOr("status", ""), "error");

    ASSERT_TRUE(c.sendLine("{\"scenario\": \"tank\", \"bogus_key\": 1}"));
    rec = c.readRecord(); // unknown keys are structured errors, not ignored
    EXPECT_EQ(rec.strOr("status", ""), "error");
    EXPECT_NE(rec.strOr("error_string", "").find("bogus_key"), std::string::npos);

    // The connection survives all three and still runs real jobs.
    ASSERT_TRUE(c.sendLine(tankJob("after-errors")));
    rec = c.readRecord();
    EXPECT_EQ(rec.strOr("status", ""), "succeeded");
    daemon.stop();
}

TEST(SrvDaemonTest, RepeatJobsExpandIntoDistinctRecords) {
    registerOnce();
    srv::ServeDaemon daemon(testConfig());
    ASSERT_TRUE(daemon.start());
    Client c(daemon);
    ASSERT_TRUE(c.sendLine(
        "{\"scenario\": \"tank\", \"name\": \"rep\", \"horizon\": 2, "
        "\"mode\": \"single\", \"repeat\": 3}"));
    std::set<std::string> names;
    for (int i = 0; i < 3; ++i) {
        const json::Value rec = c.readRecord();
        EXPECT_EQ(rec.strOr("status", ""), "succeeded");
        names.insert(rec.strOr("name", ""));
    }
    EXPECT_EQ(names.size(), 3u);
    daemon.stop();
}

TEST(SrvDaemonTest, DrainUnderLoadLosesAndDuplicatesNothing) {
    registerOnce();
    srv::DaemonConfig cfg = testConfig();
    cfg.resultCacheCapacity = 0; // every job must really run
    srv::ServeDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start());
    Client c(daemon);

    constexpr int kAdmitted = 6;
    for (int i = 0; i < kAdmitted; ++i) {
        ASSERT_TRUE(c.sendLine(tankJob("pre" + std::to_string(i), 4.0)));
    }
    daemon.beginDrain();
    EXPECT_TRUE(daemon.draining());

    constexpr int kRejected = 3;
    for (int i = 0; i < kRejected; ++i) {
        ASSERT_TRUE(c.sendLine(tankJob("late" + std::to_string(i))));
    }
    c.shutdownWrites();

    std::set<std::string> succeeded;
    std::set<std::string> rejected;
    while (auto line = c.readLine()) {
        std::string err;
        auto rec = json::parse(*line, &err);
        ASSERT_TRUE(rec) << err;
        const std::string status = rec->strOr("status", "");
        const std::string name = rec->strOr("name", "");
        if (status == "succeeded") {
            EXPECT_TRUE(succeeded.insert(name).second)
                << "double-reported job " << name;
        } else {
            ASSERT_EQ(status, "rejected") << *line;
            EXPECT_EQ(rec->strOr("verdict", ""), "draining");
            EXPECT_TRUE(rejected.insert(name).second)
                << "double-reported rejection " << name;
        }
    }
    // Every record accounted for exactly once across the drain edge. The
    // admitted prefix may straddle the beginDrain() call, so jobs the reader
    // had not yet dispatched when drain hit are allowed to come back
    // rejected — but nothing may vanish or appear twice.
    EXPECT_EQ(succeeded.size() + rejected.size(),
              static_cast<std::size_t>(kAdmitted + kRejected));
    for (int i = 0; i < kRejected; ++i) {
        EXPECT_TRUE(rejected.count("late" + std::to_string(i)))
            << "post-drain job late" << i << " was not rejected";
    }
    daemon.stop();
    EXPECT_GE(daemon.lastDrainSeconds(), 0.0);
}

TEST(SrvDaemonTest, StopRejectsNewConnections) {
    registerOnce();
    srv::ServeDaemon daemon(testConfig());
    ASSERT_TRUE(daemon.start());
    daemon.stop();
    int sv[2] = {-1, -1};
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    daemon.adoptConnection(sv[1]); // stopped daemon must close, not adopt
    char byte;
    EXPECT_EQ(::recv(sv[0], &byte, 1, 0), 0); // immediate EOF
    ::close(sv[0]);
    EXPECT_EQ(daemon.activeConnections(), 0u);
}

TEST(SrvDaemonTest, MetricsVerbReturnsPrometheusAndSnapshot) {
    registerOnce();
    srv::ServeDaemon daemon(testConfig());
    ASSERT_TRUE(daemon.start());
    Client c(daemon);

    ASSERT_TRUE(c.sendLine("{\"op\": \"metrics\"}"));
    const json::Value rec = c.readRecord();
    EXPECT_EQ(rec.strOr("op", ""), "metrics");
    EXPECT_EQ(rec.strOr("status", ""), "ok");
    // The embedded exposition text is a JSON string; after parsing it must
    // be the literal scrape payload, TYPE lines and all.
    const std::string prom = rec.strOr("prometheus", "");
    EXPECT_NE(prom.find("# TYPE urtx_srvd_jobs_received counter"), std::string::npos);
    EXPECT_NE(prom.find("urtx_srvd_connections 1"), std::string::npos)
        << "the gauge must see this very connection";
    const json::Value* snap = rec.find("snapshot");
    ASSERT_NE(snap, nullptr);
    ASSERT_TRUE(snap->isObject());
    EXPECT_NE(snap->find("counters"), nullptr);
    daemon.stop();
}

TEST(SrvDaemonTest, HealthVerbTracksJobDeltasAndAnswersWhileDraining) {
    registerOnce();
    srv::ServeDaemon daemon(testConfig());
    ASSERT_TRUE(daemon.start());
    Client c(daemon);

    ASSERT_TRUE(c.sendLine("{\"op\": \"health\"}"));
    const json::Value h0 = c.readRecord();
    EXPECT_EQ(h0.strOr("op", ""), "health");
    EXPECT_EQ(h0.strOr("status", ""), "ok");
    EXPECT_FALSE(h0.boolOr("draining", true));
    ASSERT_NE(h0.find("sampling"), nullptr);
    ASSERT_NE(h0.find("watchdog"), nullptr);
    ASSERT_NE(h0.find("tracer"), nullptr);
    ASSERT_NE(h0.find("deadline_miss_by_signal"), nullptr);

    // srvd.* counters are process-wide, so assert deltas: one job moves
    // received and streamed by exactly one, while the verb responses
    // themselves (three extra lines on this socket by the end) never touch
    // the job accounting.
    ASSERT_TRUE(c.sendLine(tankJob("health-probe")));
    EXPECT_EQ(c.readRecord().strOr("status", ""), "succeeded");
    // The streamed counter is bumped by the completion thread just after
    // the record bytes go out, so reading the record only bounds it from
    // below — poll until the increment lands.
    double received = 0, streamed = 0;
    for (int attempt = 0; attempt < 200; ++attempt) {
        ASSERT_TRUE(c.sendLine("{\"op\": \"health\"}"));
        const json::Value h1 = c.readRecord();
        received = h1.numOr("jobs_received", -1) - h0.numOr("jobs_received", -1);
        streamed = h1.numOr("jobs_streamed", -1) - h0.numOr("jobs_streamed", -1);
        if (streamed >= 1.0) break;
        ::usleep(1000);
    }
    EXPECT_EQ(received, 1.0);
    EXPECT_EQ(streamed, 1.0);

    // Observability stays reachable during drain: the verb is answered,
    // not rejected, and reports the drain in progress.
    daemon.beginDrain();
    ASSERT_TRUE(c.sendLine("{\"op\": \"health\"}"));
    const json::Value h2 = c.readRecord();
    EXPECT_EQ(h2.strOr("status", ""), "ok");
    EXPECT_TRUE(h2.boolOr("draining", false));
    daemon.stop();
}

TEST(SrvDaemonTest, SetSamplingVerbRoundTripsAppliedRate) {
    registerOnce();
    srv::ServeDaemon daemon(testConfig());
    ASSERT_TRUE(daemon.start());
    Client c(daemon);

    ASSERT_TRUE(c.sendLine("{\"op\": \"set_sampling\", \"rate\": 0.25}"));
    const json::Value rec = c.readRecord();
    EXPECT_EQ(rec.strOr("op", ""), "set_sampling");
    EXPECT_EQ(rec.strOr("status", ""), "ok");
    EXPECT_DOUBLE_EQ(rec.numOr("rate", -1.0), 0.25);
    EXPECT_DOUBLE_EQ(rec.numOr("period", -1.0), 4.0);
    EXPECT_DOUBLE_EQ(urtx::obs::Registry::process().spanSamplingRate(), 0.25)
        << "the verb must land on the registry jobs inherit from";

    ASSERT_TRUE(c.sendLine("{\"op\": \"set_sampling\"}"));
    const json::Value bad = c.readRecord();
    EXPECT_EQ(bad.strOr("status", ""), "error");
    EXPECT_NE(bad.strOr("error_string", "").find("rate"), std::string::npos);

    ASSERT_TRUE(c.sendLine("{\"op\": \"set_sampling\", \"rate\": 1.0}"));
    EXPECT_DOUBLE_EQ(c.readRecord().numOr("rate", -1.0), 1.0);
    EXPECT_DOUBLE_EQ(urtx::obs::Registry::process().spanSamplingRate(), 1.0);
    daemon.stop();
}

TEST(SrvDaemonTest, TraceVerbEmbedsChromeTraceWithLastN) {
#if !URTX_OBS
    GTEST_SKIP() << "observability compiled out (URTX_OBS=0)";
#endif
    registerOnce();
    srv::ServeDaemon daemon(testConfig());
    ASSERT_TRUE(daemon.start());
    Client c(daemon);

    urtx::obs::Tracer& tracer = urtx::obs::Tracer::global();
    tracer.clear();
    tracer.setEnabled(true);
    tracer.instant("verb", "older");
    tracer.instant("verb", "newest");
    tracer.setEnabled(false);

    ASSERT_TRUE(c.sendLine("{\"op\": \"trace\", \"last_n\": 1}"));
    const auto line = c.readLine();
    ASSERT_TRUE(line.has_value());
    std::string err;
    const auto rec = json::parse(*line, &err);
    ASSERT_TRUE(rec) << err;
    EXPECT_EQ(rec->strOr("op", ""), "trace");
    EXPECT_EQ(rec->strOr("status", ""), "ok");
    EXPECT_GE(rec->numOr("events_retained", -1.0), 2.0);
    EXPECT_GE(rec->numOr("events_dropped", -1.0), 0.0);
    // The trace member is embedded Chrome-trace JSON, sliced to last_n.
    ASSERT_NE(rec->find("trace"), nullptr);
    EXPECT_NE(line->find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(line->find("\"name\":\"newest\""), std::string::npos);
    EXPECT_EQ(line->find("\"name\":\"older\""), std::string::npos)
        << "last_n: 1 must slice to the newest event";
    tracer.clear();
    daemon.stop();
}

TEST(SrvDaemonTest, UnknownOpIsRejectedWithoutKillingTheConnection) {
    registerOnce();
    srv::ServeDaemon daemon(testConfig());
    ASSERT_TRUE(daemon.start());
    Client c(daemon);

    ASSERT_TRUE(c.sendLine("{\"op\": \"frobnicate\"}"));
    const json::Value rec = c.readRecord();
    EXPECT_EQ(rec.strOr("status", ""), "error");
    EXPECT_NE(rec.strOr("error_string", "").find("frobnicate"), std::string::npos);

    ASSERT_TRUE(c.sendLine(tankJob("after-unknown-op")));
    EXPECT_EQ(c.readRecord().strOr("status", ""), "succeeded");
    daemon.stop();
}

TEST(SrvDaemonTest, BackpressureWindowStillCompletesEverything) {
    registerOnce();
    srv::DaemonConfig cfg = testConfig();
    cfg.maxInFlightPerConnection = 2; // force the reader to stall repeatedly
    cfg.resultCacheCapacity = 0;
    srv::ServeDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start());
    Client c(daemon);
    constexpr int kJobs = 10;
    for (int i = 0; i < kJobs; ++i) {
        ASSERT_TRUE(c.sendLine(tankJob("bp" + std::to_string(i))));
    }
    c.shutdownWrites();
    std::set<std::string> names;
    while (auto line = c.readLine()) {
        std::string err;
        auto rec = json::parse(*line, &err);
        ASSERT_TRUE(rec) << err;
        EXPECT_EQ(rec->strOr("status", ""), "succeeded");
        names.insert(rec->strOr("name", ""));
    }
    EXPECT_EQ(names.size(), kJobs);
    daemon.stop();
}

TEST(SrvDaemonTest, AcceptErrnoClassification) {
    using srv::AcceptRetry;
    // Transient per-connection failures: keep accepting immediately.
    EXPECT_EQ(srv::acceptRetryClass(EINTR), AcceptRetry::Retry);
    EXPECT_EQ(srv::acceptRetryClass(ECONNABORTED), AcceptRetry::Retry);
    EXPECT_EQ(srv::acceptRetryClass(EPROTO), AcceptRetry::Retry);
    // Resource exhaustion: back off briefly, the listener stays armed.
    EXPECT_EQ(srv::acceptRetryClass(EMFILE), AcceptRetry::RetryAfterBackoff);
    EXPECT_EQ(srv::acceptRetryClass(ENFILE), AcceptRetry::RetryAfterBackoff);
    EXPECT_EQ(srv::acceptRetryClass(ENOBUFS), AcceptRetry::RetryAfterBackoff);
    EXPECT_EQ(srv::acceptRetryClass(ENOMEM), AcceptRetry::RetryAfterBackoff);
    // Programming errors on the listener itself: give up on this fd.
    EXPECT_EQ(srv::acceptRetryClass(EBADF), AcceptRetry::Fatal);
    EXPECT_EQ(srv::acceptRetryClass(EINVAL), AcceptRetry::Fatal);
    EXPECT_EQ(srv::acceptRetryClass(ENOTSOCK), AcceptRetry::Fatal);
}

TEST(SrvDaemonTest, IdleDaemonReapsFinishedConnections) {
    registerOnce();
    srv::ServeDaemon daemon(testConfig());
    ASSERT_TRUE(daemon.start());

    // Warm up one full connect/serve/disconnect cycle so lazily created
    // resources (worker threads, epoll registrations) are in the baseline.
    {
        Client c(daemon);
        ASSERT_TRUE(c.sendLine(tankJob("warmup")));
        EXPECT_EQ(c.readRecord().strOr("status", ""), "succeeded");
    }
    for (int spin = 0; spin < 500 && daemon.activeConnections() != 0; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_EQ(daemon.activeConnections(), 0u);
    const std::size_t baseline = openFdCount();
    ASSERT_GT(baseline, 0u);

    constexpr int kCycles = 12;
    for (int i = 0; i < kCycles; ++i) {
        Client c(daemon);
        ASSERT_TRUE(c.sendLine(tankJob("cycle" + std::to_string(i))));
        EXPECT_EQ(c.readRecord().strOr("status", ""), "succeeded");
    }
    // The regression: closed connections must be reaped without waiting for
    // the *next* connection to arrive. No further client connects here.
    for (int spin = 0; spin < 500 && daemon.activeConnections() != 0; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(daemon.activeConnections(), 0u);
    std::size_t fds = openFdCount();
    for (int spin = 0; spin < 500 && fds > baseline; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        fds = openFdCount();
    }
    EXPECT_EQ(fds, baseline)
        << "daemon leaked fds across " << kCycles << " connection cycles";
    daemon.stop();
}

TEST(SrvDaemonTest, BinaryFramingIsBitIdenticalToJson) {
    registerOnce();
    srv::DaemonConfig cfg = testConfig();
    cfg.resultCacheCapacity = 0; // force both framings to run the job
    srv::ServeDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start());

    Client jsonClient(daemon);
    ASSERT_TRUE(jsonClient.sendLine(tankJob("same-job")));
    const json::Value viaJson = jsonClient.readRecord();

    BinaryClient binClient(daemon);
    ASSERT_TRUE(binClient.ok()) << "binary preamble was not echoed";
    ASSERT_TRUE(binClient.sendJob(tankSpec("same-job")));
    const json::Value viaBinary = binClient.readRecord();

    EXPECT_EQ(viaJson.strOr("status", ""), "succeeded");
    EXPECT_EQ(viaBinary.strOr("status", ""), "succeeded");
    // Same simulation, so the causal trace hash — a digest over every
    // recorded event — must match bit-for-bit across framings.
    const std::string jsonHash = viaJson.strOr("trace_hash", "json");
    const std::string binHash = viaBinary.strOr("trace_hash", "bin");
    EXPECT_FALSE(jsonHash.empty());
    EXPECT_EQ(jsonHash, binHash);
    EXPECT_EQ(viaJson.numOr("steps", -1.0), viaBinary.numOr("steps", -2.0));
    EXPECT_EQ(viaJson.numOr("sim_time", -1.0), viaBinary.numOr("sim_time", -2.0));
    EXPECT_EQ(viaJson.strOr("verdict", "a"), viaBinary.strOr("verdict", "b"));
    daemon.stop();
}

TEST(SrvDaemonTest, BinaryDecodeErrorKeepsConnectionAlive) {
    registerOnce();
    srv::ServeDaemon daemon(testConfig());
    ASSERT_TRUE(daemon.start());
    BinaryClient c(daemon);
    ASSERT_TRUE(c.ok());

    // A Job frame whose payload is not a decodable WireJob: the daemon must
    // answer with an Error frame and keep serving the connection.
    ASSERT_TRUE(c.sendFrame(wire::FrameType::Job, "\xff\xff\xff\xff garbage"));
    const json::Value err = c.readRecord();
    EXPECT_EQ(err.strOr("status", ""), "error");

    ASSERT_TRUE(c.sendJob(tankSpec("after-garbage")));
    const json::Value rec = c.readRecord();
    EXPECT_EQ(rec.strOr("status", ""), "succeeded");
    EXPECT_EQ(rec.strOr("name", ""), "after-garbage");
    daemon.stop();
}

TEST(SrvDaemonTest, OversizeFrameLengthPrefixKillsConnection) {
    registerOnce();
    srv::ServeDaemon daemon(testConfig());
    ASSERT_TRUE(daemon.start());
    BinaryClient c(daemon);
    ASSERT_TRUE(c.ok());

    // Hand-build a frame header claiming a multi-gigabyte payload. The
    // daemon must refuse to buffer it: one Error frame, then EOF.
    std::string hostile;
    const std::uint32_t huge = 0x7fffffffu;
    hostile.push_back(static_cast<char>(huge & 0xff));
    hostile.push_back(static_cast<char>((huge >> 8) & 0xff));
    hostile.push_back(static_cast<char>((huge >> 16) & 0xff));
    hostile.push_back(static_cast<char>((huge >> 24) & 0xff));
    hostile.push_back(static_cast<char>(wire::FrameType::Job));
    ASSERT_TRUE(c.sendRaw(hostile));

    const auto errFrame = c.readFrame();
    ASSERT_TRUE(errFrame.has_value());
    EXPECT_EQ(errFrame->first, static_cast<std::uint8_t>(wire::FrameType::Error));
    EXPECT_FALSE(c.readFrame().has_value()) << "connection must close after "
                                               "an oversize length prefix";

    // The daemon itself survives and serves fresh connections.
    Client fresh(daemon);
    ASSERT_TRUE(fresh.sendLine(tankJob("after-oversize")));
    EXPECT_EQ(fresh.readRecord().strOr("status", ""), "succeeded");
    daemon.stop();
}

TEST(SrvDaemonTest, MidFrameDisconnectDoesNotKillDaemon) {
    registerOnce();
    srv::ServeDaemon daemon(testConfig());
    ASSERT_TRUE(daemon.start());
    {
        BinaryClient c(daemon);
        ASSERT_TRUE(c.ok());
        // Announce a 64-byte Job frame but hang up after 3 payload bytes.
        std::string partial;
        wire::appendFrame(partial, wire::FrameType::Job,
                          std::string(64, 'x'));
        partial.resize(wiregen::kFrameHeaderBytes + 3);
        ASSERT_TRUE(c.sendRaw(partial));
        c.close();
    }
    // Truncated-frame teardown must not take the reactor with it.
    for (int spin = 0; spin < 500 && daemon.activeConnections() != 0; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(daemon.activeConnections(), 0u);

    BinaryClient fresh(daemon);
    ASSERT_TRUE(fresh.ok());
    ASSERT_TRUE(fresh.sendJob(tankSpec("after-truncation")));
    EXPECT_EQ(fresh.readRecord().strOr("status", ""), "succeeded");
    daemon.stop();
}

namespace {

std::string profiledTankJob(const std::string& name, double horizon = 2.0) {
    return "{\"scenario\": \"tank\", \"name\": \"" + name +
           "\", \"horizon\": " + std::to_string(horizon) +
           ", \"mode\": \"single\", \"profile\": true}";
}

/// Stage offsets from a record's "stages" member in canonical stage order
/// (only stamped stages appear in the table).
std::vector<std::pair<std::string, double>> stageOffsets(const json::Value& rec) {
    std::vector<std::pair<std::string, double>> out;
    const json::Value* stages = rec.find("stages");
    if (!stages || !stages->isObject()) return out;
    for (const char* stage : urtx::obs::stageNames()) {
        if (const json::Value* v = stages->find(stage); v && v->isNumber()) {
            out.emplace_back(stage, v->number);
        }
    }
    return out;
}

} // namespace

TEST(SrvDaemonTest, StatsVerbReturnsWindowedRatesLatencyAndWcet) {
    registerOnce();
    srv::DaemonConfig cfg = testConfig();
    cfg.statsTickSeconds = 0.02; // fast ticks so the window fills in-test
    srv::ServeDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start());
    Client c(daemon);

    // Rates are deltas against a snapshot tick, so a baseline tick must
    // exist before the jobs run — wait for the ticker's first capture.
    for (int attempt = 0; attempt < 500; ++attempt) {
        ASSERT_TRUE(c.sendLine("{\"op\": \"stats\"}"));
        const json::Value probe = c.readRecord();
        const json::Value* t = probe.find("ticker");
        ASSERT_NE(t, nullptr);
        if (t->numOr("ticks", 0.0) >= 1.0) break;
        ::usleep(2000);
    }

    // Run real jobs so rates, the latency histogram, and the WCET table all
    // have mass.
    ASSERT_TRUE(c.sendLine(tankJob("stats-a")));
    ASSERT_TRUE(c.sendLine(tankJob("stats-b", 3.0)));
    EXPECT_EQ(c.readRecord().strOr("status", ""), "succeeded");
    EXPECT_EQ(c.readRecord().strOr("status", ""), "succeeded");

    json::Value stats;
    double reqRate = 0.0;
    for (int attempt = 0; attempt < 500; ++attempt) {
        ASSERT_TRUE(c.sendLine("{\"op\": \"stats\"}"));
        stats = c.readRecord();
        ASSERT_EQ(stats.strOr("op", ""), "stats");
        ASSERT_EQ(stats.strOr("status", ""), "ok");
        if (const json::Value* rates = stats.find("rates")) {
            if (const json::Value* w = rates->find("60s")) {
                reqRate = w->numOr("req_per_s", 0.0);
            }
        }
        // Latency mass rides the same snapshot tick as the rates; wait for
        // both jobs to land so the histogram assertions below are stable.
        double latCount = 0.0;
        if (const json::Value* lat = stats.find("latency_seconds")) {
            latCount = lat->numOr("count", 0.0);
        }
        if (reqRate > 0.0 && latCount >= 2.0) break;
        ::usleep(2000);
    }
    EXPECT_GT(reqRate, 0.0) << "jobs before the verb must register in the window";
    EXPECT_FALSE(stats.boolOr("draining", true));
    EXPECT_GT(stats.numOr("uptime_seconds", -1.0), 0.0);

    const json::Value* ticker = stats.find("ticker");
    ASSERT_NE(ticker, nullptr);
    EXPECT_DOUBLE_EQ(ticker->numOr("period_seconds", 0.0), 0.02);
    EXPECT_GE(ticker->numOr("ticks", 0.0), 1.0);

    // All three windows are present with both rate series.
    const json::Value* rates = stats.find("rates");
    ASSERT_NE(rates, nullptr);
    for (const char* w : {"1s", "10s", "60s"}) {
        const json::Value* win = rates->find(w);
        ASSERT_NE(win, nullptr) << w;
        EXPECT_GE(win->numOr("req_per_s", -1.0), 0.0);
        EXPECT_GE(win->numOr("err_per_s", -1.0), 0.0);
    }

    const json::Value* lat = stats.find("latency_seconds");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->strOr("family", ""), "srvd.request_latency_seconds");
    EXPECT_GE(lat->numOr("count", -1.0), 2.0);
    EXPECT_GE(lat->numOr("p99", -1.0), lat->numOr("p50", 0.0));

    // Both jobs solved tank with the default integrator: one WCET row.
    const json::Value* wcet = stats.find("wcet");
    ASSERT_NE(wcet, nullptr);
    ASSERT_TRUE(wcet->isArray());
    ASSERT_GE(wcet->array.size(), 1u);
    const json::Value& row = wcet->array[0];
    EXPECT_EQ(row.strOr("scenario", ""), "tank");
    EXPECT_EQ(row.strOr("solver", ""), "default");
    EXPECT_GE(row.numOr("count", 0.0), 2.0);
    EXPECT_GT(row.numOr("worst_seconds", 0.0), 0.0);
    EXPECT_GE(row.numOr("worst_seconds", 0.0), row.numOr("p99_seconds", 0.0));
    EXPECT_GE(row.numOr("rolling_max_seconds", 0.0), row.numOr("last_seconds", 0.0));

    // Observability stays reachable while draining.
    daemon.beginDrain();
    ASSERT_TRUE(c.sendLine("{\"op\": \"stats\"}"));
    const json::Value draining = c.readRecord();
    EXPECT_EQ(draining.strOr("status", ""), "ok");
    EXPECT_TRUE(draining.boolOr("draining", false));
    daemon.stop();
}

TEST(SrvDaemonTest, StatsVerbJsonAndBinaryFramingsAgree) {
    registerOnce();
    srv::DaemonConfig cfg = testConfig();
    cfg.statsTickSeconds = 0.02;
    srv::ServeDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start());

    Client jsonClient(daemon);
    ASSERT_TRUE(jsonClient.sendLine("{\"op\": \"stats\"}"));
    const json::Value viaJson = jsonClient.readRecord();

    BinaryClient binClient(daemon);
    ASSERT_TRUE(binClient.ok());
    ASSERT_TRUE(binClient.sendFrame(wire::FrameType::Control, "{\"op\": \"stats\"}"));
    const json::Value viaBinary = binClient.readRecord();

    // Same verb, same schema across framings (values differ: time moved).
    for (const json::Value* rec : {&viaJson, &viaBinary}) {
        EXPECT_EQ(rec->strOr("op", ""), "stats");
        EXPECT_EQ(rec->strOr("status", ""), "ok");
        EXPECT_NE(rec->find("ticker"), nullptr);
        EXPECT_NE(rec->find("rates"), nullptr);
        EXPECT_NE(rec->find("latency_seconds"), nullptr);
        EXPECT_NE(rec->find("wcet"), nullptr);
    }
    daemon.stop();
}

TEST(SrvDaemonTest, ProfiledJobCarriesMonotoneStageTable) {
    registerOnce();
    srv::DaemonConfig cfg = testConfig();
    cfg.resultCacheCapacity = 0; // the profiled job must really run
    srv::ServeDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start());
    Client c(daemon);

    // Unprofiled jobs must not grow a stages member.
    ASSERT_TRUE(c.sendLine(tankJob("plain")));
    const json::Value plain = c.readRecord();
    ASSERT_EQ(plain.strOr("status", ""), "succeeded");
    EXPECT_EQ(plain.find("stages"), nullptr);

    ASSERT_TRUE(c.sendLine(profiledTankJob("profiled")));
    const json::Value prof = c.readRecord();
    ASSERT_EQ(prof.strOr("status", ""), "succeeded");
    const auto stages = stageOffsets(prof);
    ASSERT_FALSE(stages.empty()) << "profiled record must carry a stage table";

    // Offsets from receive must be non-decreasing in canonical stage order,
    // and an executed job stamps the full pipeline: decode through solve
    // plus encode/reply (warm_acquire and cold_build are alternatives).
    double prev = 0.0;
    for (const auto& [name, offset] : stages) {
        EXPECT_GE(offset, prev) << "stage " << name << " went backwards";
        prev = offset;
    }
    std::set<std::string> present;
    for (const auto& [name, offset] : stages) present.insert(name);
    for (const char* required : {"decode", "admission", "queue_wait", "solve",
                                 "encode", "reply"}) {
        EXPECT_TRUE(present.count(required)) << "missing stage " << required;
    }
    EXPECT_TRUE(present.count("warm_acquire") || present.count("cold_build"));

    // Stage-sum sanity: offsets are cumulative, so the reply offset is the
    // in-daemon end-to-end latency; it must cover the measured solve wall
    // time and stay within a loose bound of it (the job was milliseconds,
    // the bound allows scheduler noise but catches unit errors).
    const double reply = stages.back().second;
    EXPECT_EQ(stages.back().first, "reply");
    const double wall = prof.numOr("wall_seconds", -1.0);
    ASSERT_GE(wall, 0.0);
    EXPECT_GE(reply, wall) << "end-to-end must include the solve wall time";
    EXPECT_LT(reply, wall + 5.0) << "reply offset implausibly far past the solve";
    daemon.stop();
}

TEST(SrvDaemonTest, ProfiledRunStaysBitIdenticalToUnprofiled) {
    registerOnce();
    srv::DaemonConfig cfg = testConfig();
    cfg.resultCacheCapacity = 0; // both submissions must execute
    srv::ServeDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start());
    Client c(daemon);

    ASSERT_TRUE(c.sendLine(tankJob("plain")));
    const json::Value plain = c.readRecord();
    ASSERT_EQ(plain.strOr("status", ""), "succeeded");
    const std::string plainHash = plain.strOr("trace_hash", "");
    ASSERT_FALSE(plainHash.empty());

    // profile is pure observability: excluded from warm/job hashing, so the
    // profiled rerun reuses the warm instance and reproduces the trace.
    ASSERT_TRUE(c.sendLine(profiledTankJob("profiled")));
    const json::Value prof = c.readRecord();
    ASSERT_EQ(prof.strOr("status", ""), "succeeded");
    EXPECT_EQ(prof.strOr("trace_hash", ""), plainHash);
    EXPECT_TRUE(prof.boolOr("warm_reuse", false));
    EXPECT_NE(prof.find("stages"), nullptr);
    daemon.stop();
}

TEST(SrvDaemonTest, ProfiledCacheHitGetsFreshDaemonSideTable) {
    registerOnce();
    srv::ServeDaemon daemon(testConfig()); // result cache on
    ASSERT_TRUE(daemon.start());
    Client c(daemon);

    ASSERT_TRUE(c.sendLine(tankJob("cold")));
    const json::Value cold = c.readRecord();
    ASSERT_EQ(cold.strOr("status", ""), "succeeded");
    ASSERT_FALSE(cold.boolOr("cached_result", false));

    // Same job bytes, now profiled: served from the result cache (profile
    // must not change the job hash), with a daemon-side table only — no
    // engine stages, nothing executed.
    ASSERT_TRUE(c.sendLine(profiledTankJob("hit")));
    const json::Value hit = c.readRecord();
    ASSERT_EQ(hit.strOr("status", ""), "succeeded");
    EXPECT_TRUE(hit.boolOr("cached_result", false));
    EXPECT_EQ(hit.strOr("trace_hash", ""), cold.strOr("trace_hash", "x"));
    const auto stages = stageOffsets(hit);
    ASSERT_FALSE(stages.empty());
    std::set<std::string> present;
    for (const auto& [name, offset] : stages) present.insert(name);
    EXPECT_TRUE(present.count("decode"));
    EXPECT_TRUE(present.count("admission"));
    EXPECT_TRUE(present.count("reply"));
    EXPECT_FALSE(present.count("solve")) << "cache hits never solve";
    EXPECT_FALSE(present.count("queue_wait"));

    // An unprofiled replay of the same job stays clean: the stored record
    // must not leak the original run's stage table.
    ASSERT_TRUE(c.sendLine(tankJob("replay")));
    const json::Value replay = c.readRecord();
    EXPECT_TRUE(replay.boolOr("cached_result", false));
    EXPECT_EQ(replay.find("stages"), nullptr);
    daemon.stop();
}

TEST(SrvDaemonTest, PollBackendServesIdentically) {
    registerOnce();
    srv::DaemonConfig cfg = testConfig();
    cfg.reactorBackend = srv::Reactor::Backend::Poll;
    srv::ServeDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start());
    EXPECT_EQ(daemon.reactorBackend(), srv::Reactor::Backend::Poll);

    Client jsonClient(daemon);
    ASSERT_TRUE(jsonClient.sendLine(tankJob("poll-json")));
    EXPECT_EQ(jsonClient.readRecord().strOr("status", ""), "succeeded");

    BinaryClient binClient(daemon);
    ASSERT_TRUE(binClient.ok());
    ASSERT_TRUE(binClient.sendJob(tankSpec("poll-binary")));
    const json::Value rec = binClient.readRecord();
    EXPECT_EQ(rec.strOr("status", ""), "succeeded");
    EXPECT_EQ(rec.strOr("name", ""), "poll-binary");
    daemon.stop();
}

TEST(SrvDaemonTest, EphemeralTcpPortBindsAnnouncesAndServes) {
    registerOnce();
    srv::DaemonConfig cfg = testConfig();
    cfg.tcpEphemeral = true;
    srv::ServeDaemon daemon(cfg);
    ASSERT_TRUE(daemon.start());
    const std::uint16_t port = daemon.boundTcpPort();
    ASSERT_NE(port, 0) << "ephemeral bind must report the kernel-chosen port";

    // A second ephemeral daemon coexists: no fixed-port collision, which is
    // what lets a fleet harness spawn N shards on one host.
    srv::ServeDaemon second(cfg);
    ASSERT_TRUE(second.start());
    EXPECT_NE(second.boundTcpPort(), 0);
    EXPECT_NE(second.boundTcpPort(), port);
    second.stop();

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    timeval tv{30, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0)
        << "connect to announced port failed: " << std::strerror(errno);

    const std::string line = tankJob("over-tcp") + "\n";
    ASSERT_EQ(::send(fd, line.data(), line.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(line.size()));
    std::string reply;
    char chunk[4096];
    while (reply.find('\n') == std::string::npos) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        ASSERT_GT(n, 0) << "no reply over TCP";
        reply.append(chunk, static_cast<std::size_t>(n));
    }
    const auto rec = json::parse(reply.substr(0, reply.find('\n')));
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->strOr("status", ""), "succeeded");
    EXPECT_EQ(rec->strOr("name", ""), "over-tcp");
    ::close(fd);
    daemon.stop();
}

TEST(SrvDaemonTest, HealthVerbReportsCacheOccupancyAndHitCounts) {
    registerOnce();
    srv::ServeDaemon daemon(testConfig());
    ASSERT_TRUE(daemon.start());
    Client c(daemon);

    // Cold run (miss) then identical replay (hit) gives every cache section
    // something nonzero to report.
    ASSERT_TRUE(c.sendLine(tankJob("occ")));
    EXPECT_EQ(c.readRecord().strOr("status", ""), "succeeded");
    ASSERT_TRUE(c.sendLine(tankJob("occ")));
    EXPECT_TRUE(c.readRecord().boolOr("cached_result", false));

    ASSERT_TRUE(c.sendLine("{\"op\": \"health\"}"));
    const json::Value doc = c.readRecord();
    EXPECT_EQ(doc.strOr("status", ""), "ok");

    const json::Value* rc = doc.find("result_cache");
    ASSERT_NE(rc, nullptr) << "health must carry result_cache";
    EXPECT_EQ(rc->numOr("capacity", 0), 32.0);
    EXPECT_GE(rc->numOr("size", 0), 1.0);
    EXPECT_GE(rc->numOr("hits", 0), 1.0);
    EXPECT_GE(rc->numOr("misses", 0), 1.0);
    EXPECT_GT(rc->numOr("hit_ratio", 0), 0.0);
    EXPECT_LE(rc->numOr("hit_ratio", 2), 1.0);

    const json::Value* wc = doc.find("warm_cache");
    ASSERT_NE(wc, nullptr) << "health must carry warm_cache";
    EXPECT_EQ(wc->numOr("capacity", 0), 4.0);
    EXPECT_GE(wc->numOr("size", 0), 1.0);
    EXPECT_GE(wc->numOr("misses", 0), 1.0);

    // The same occupancy numbers surface as process gauges for scrapers.
    auto& reg = urtx::obs::Registry::process();
    EXPECT_EQ(reg.gauge("srvd.result_cache.capacity").value(), 32.0);
    EXPECT_GE(reg.gauge("srvd.result_cache.size").value(), 1.0);
    EXPECT_GE(reg.gauge("srvd.result_cache.hits").value(), 1.0);
    EXPECT_EQ(reg.gauge("srvd.warm_cache.capacity").value(), 4.0);
    daemon.stop();
}
