#include <gtest/gtest.h>

#include <cmath>

#include "control/control.hpp"
#include "flow/network.hpp"

namespace f = urtx::flow;
namespace c = urtx::control;
using FT = f::FlowType;

namespace {

struct Plain : f::Streamer {
    using f::Streamer::Streamer;
};

/// Evaluate a single leaf block standalone at time t.
void evalAt(f::Streamer& block, double t) {
    for (f::DPort* p : block.dports()) {
        if (p->dir() == f::DPortDir::In) p->refresh();
    }
    block.outputs(t, {});
}

} // namespace

TEST(Sources, ConstantOutputsParam) {
    Plain top{"top"};
    c::Constant k("k", &top, 3.25);
    evalAt(k, 0.0);
    EXPECT_DOUBLE_EQ(k.out().get(), 3.25);
    k.setParam("value", -1.0); // retunable
    evalAt(k, 1.0);
    EXPECT_DOUBLE_EQ(k.out().get(), -1.0);
}

TEST(Sources, StepSwitchesAtT0) {
    Plain top{"top"};
    c::Step st("st", &top, 2.0, -1.0, 1.0);
    evalAt(st, 1.999);
    EXPECT_DOUBLE_EQ(st.out().get(), -1.0);
    evalAt(st, 2.0);
    EXPECT_DOUBLE_EQ(st.out().get(), 1.0);
}

TEST(Sources, RampStartsAtStart) {
    Plain top{"top"};
    c::Ramp r("r", &top, 2.0, 1.0);
    evalAt(r, 0.5);
    EXPECT_DOUBLE_EQ(r.out().get(), 0.0);
    evalAt(r, 3.0);
    EXPECT_DOUBLE_EQ(r.out().get(), 4.0);
}

TEST(Sources, SineMatchesFormula) {
    Plain top{"top"};
    c::Sine s("s", &top, 2.0, 3.0, 0.5, 1.0);
    evalAt(s, 0.7);
    EXPECT_NEAR(s.out().get(), 2.0 * std::sin(3.0 * 0.7 + 0.5) + 1.0, 1e-12);
}

TEST(Sources, PulseDutyCycle) {
    Plain top{"top"};
    c::Pulse p("p", &top, 1.0, 0.25, 5.0);
    evalAt(p, 0.1);
    EXPECT_DOUBLE_EQ(p.out().get(), 5.0);
    evalAt(p, 0.3);
    EXPECT_DOUBLE_EQ(p.out().get(), 0.0);
    evalAt(p, 1.1);
    EXPECT_DOUBLE_EQ(p.out().get(), 5.0) << "periodic";
}

TEST(Sources, ChirpFrequencyIncreases) {
    Plain top{"top"};
    c::Chirp ch("ch", &top, 1.0, 10.0, 1.0);
    // Count zero crossings over [0,1] vs [1,2]-equivalent: crude check that
    // the signal stays bounded and oscillates.
    int crossings = 0;
    double prev = 0;
    for (double t = 0; t < 1.0; t += 1e-3) {
        evalAt(ch, t);
        const double v = ch.out().get();
        if (prev < 0 && v >= 0) ++crossings;
        prev = v;
        EXPECT_LE(std::abs(v), 1.0 + 1e-9);
    }
    EXPECT_NEAR(crossings, 5, 2); // integral of f over [0,1] = 5.5 cycles
}

TEST(Sources, NoiseIsDeterministicAndPiecewiseConstant) {
    Plain top{"top"};
    c::Noise n1("n1", &top, 1.0, 0.1, 42);
    c::Noise n2("n2", &top, 1.0, 0.1, 42);
    evalAt(n1, 0.05);
    evalAt(n2, 0.05);
    EXPECT_DOUBLE_EQ(n1.out().get(), n2.out().get()) << "same seed, same value";
    const double v = n1.out().get();
    evalAt(n1, 0.09);
    EXPECT_DOUBLE_EQ(n1.out().get(), v) << "constant within a sample interval";
    evalAt(n1, 0.11);
    EXPECT_NE(n1.out().get(), v) << "new interval, new sample";
}

TEST(Sources, NoiseStatisticsRoughlyGaussian) {
    Plain top{"top"};
    c::Noise n("n", &top, 1.0, 1.0, 7);
    double sum = 0, sum2 = 0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i) {
        const double v = n.sampleAt(static_cast<std::uint64_t>(i));
        sum += v;
        sum2 += v * v;
    }
    EXPECT_NEAR(sum / kN, 0.0, 0.03);
    EXPECT_NEAR(sum2 / kN, 1.0, 0.05);
}

TEST(MathBlocks, GainScales) {
    Plain top{"top"};
    c::Gain g("g", &top, -2.5);
    g.in().set(4.0);
    evalAt(g, 0.0);
    EXPECT_DOUBLE_EQ(g.out().get(), -10.0);
}

TEST(MathBlocks, SumHonorsSigns) {
    Plain top{"top"};
    c::Sum sum("sum", &top, "+-+");
    EXPECT_EQ(sum.arity(), 3u);
    sum.in(0).set(5.0);
    sum.in(1).set(2.0);
    sum.in(2).set(1.0);
    evalAt(sum, 0.0);
    EXPECT_DOUBLE_EQ(sum.out().get(), 4.0);
    EXPECT_THROW(c::Sum("bad", &top, "+*"), std::invalid_argument);
    EXPECT_THROW(c::Sum("bad2", &top, ""), std::invalid_argument);
}

TEST(MathBlocks, ProductMultiplies) {
    Plain top{"top"};
    c::Product prod("prod", &top, 3);
    prod.in(0).set(2.0);
    prod.in(1).set(3.0);
    prod.in(2).set(-1.0);
    evalAt(prod, 0.0);
    EXPECT_DOUBLE_EQ(prod.out().get(), -6.0);
}

TEST(MathBlocks, SaturationClamps) {
    Plain top{"top"};
    c::Saturation sat("sat", &top, -1.0, 1.0);
    sat.in().set(5.0);
    evalAt(sat, 0.0);
    EXPECT_DOUBLE_EQ(sat.out().get(), 1.0);
    sat.in().set(-5.0);
    evalAt(sat, 0.0);
    EXPECT_DOUBLE_EQ(sat.out().get(), -1.0);
    sat.in().set(0.5);
    evalAt(sat, 0.0);
    EXPECT_DOUBLE_EQ(sat.out().get(), 0.5);
}

TEST(MathBlocks, DeadZoneShifts) {
    Plain top{"top"};
    c::DeadZone dz("dz", &top, -0.5, 0.5);
    dz.in().set(0.3);
    evalAt(dz, 0.0);
    EXPECT_DOUBLE_EQ(dz.out().get(), 0.0);
    dz.in().set(1.5);
    evalAt(dz, 0.0);
    EXPECT_DOUBLE_EQ(dz.out().get(), 1.0);
    dz.in().set(-1.0);
    evalAt(dz, 0.0);
    EXPECT_DOUBLE_EQ(dz.out().get(), -0.5);
}

TEST(MathBlocks, QuantizerRounds) {
    Plain top{"top"};
    c::Quantizer q("q", &top, 0.5);
    q.in().set(1.3);
    evalAt(q, 0.0);
    EXPECT_DOUBLE_EQ(q.out().get(), 1.5);
    q.in().set(1.2);
    evalAt(q, 0.0);
    EXPECT_DOUBLE_EQ(q.out().get(), 1.0);
}

TEST(MathBlocks, LookupInterpolatesAndClamps) {
    Plain top{"top"};
    c::Lookup1D lut("lut", &top, {0.0, 1.0, 2.0}, {0.0, 10.0, 0.0});
    lut.in().set(0.5);
    evalAt(lut, 0.0);
    EXPECT_DOUBLE_EQ(lut.out().get(), 5.0);
    lut.in().set(-1.0);
    evalAt(lut, 0.0);
    EXPECT_DOUBLE_EQ(lut.out().get(), 0.0);
    lut.in().set(99.0);
    evalAt(lut, 0.0);
    EXPECT_DOUBLE_EQ(lut.out().get(), 0.0);
    EXPECT_THROW(c::Lookup1D("bad", &top, {0.0, 0.0}, {1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(c::Lookup1D("bad2", &top, {0.0}, {1.0}), std::invalid_argument);
}

TEST(MathBlocks, FunctionAppliesCallable) {
    Plain top{"top"};
    c::Function fn("fn", &top, [](double u) { return u * u; });
    fn.in().set(3.0);
    evalAt(fn, 0.0);
    EXPECT_DOUBLE_EQ(fn.out().get(), 9.0);
}

TEST(MathBlocks, MuxDemuxRoundTrip) {
    Plain top{"top"};
    c::Mux mux("mux", &top, 3);
    c::Demux demux("demux", &top, 3);
    f::flow(mux.out(), demux.in());

    mux.in(0).set(1.0);
    mux.in(1).set(2.0);
    mux.in(2).set(3.0);

    f::Network net(top);
    urtx::solver::Vec x;
    net.initState(0.0, x);
    net.computeOutputs(0.0, x);
    EXPECT_DOUBLE_EQ(demux.out(0).get(), 1.0);
    EXPECT_DOUBLE_EQ(demux.out(1).get(), 2.0);
    EXPECT_DOUBLE_EQ(demux.out(2).get(), 3.0);
}
