#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "flow/sport.hpp"
#include "flow/streamer.hpp"
#include "rt/controller.hpp"

namespace f = urtx::flow;
namespace rt = urtx::rt;

namespace {

rt::Protocol& tuneProto() {
    static rt::Protocol p = [] {
        rt::Protocol q{"Tune"};
        q.out("setGain").in("alarm");
        return q;
    }();
    return p;
}

/// Streamer that records incoming signals and tunes a parameter.
struct Tunable : f::Streamer {
    using f::Streamer::Streamer;
    std::vector<std::string> log;

    void onSignal(f::SPort& port, const rt::Message& m) override {
        log.push_back(port.name() + ":" + m.signalName());
        if (m.signal == rt::signal("setGain")) setParam("k", m.dataOr<double>(0.0));
    }
};

struct Supervisor : rt::Capsule {
    Supervisor(std::string n) : rt::Capsule(std::move(n)), ctl(*this, "ctl", tuneProto(), false) {}
    rt::Port ctl;
    int alarms = 0;

protected:
    void onMessage(const rt::Message& m) override {
        if (m.signal == rt::signal("alarm")) ++alarms;
    }
};

} // namespace

TEST(SPort, RegistersWithStreamer) {
    Tunable s{"s"};
    f::SPort sp(s, "ctl", tuneProto(), true);
    EXPECT_EQ(s.sports().size(), 1u);
    EXPECT_EQ(s.findSPort("ctl"), &sp);
    EXPECT_EQ(s.findSPort("nope"), nullptr);
    EXPECT_EQ(&sp.owner(), &s);
    EXPECT_TRUE(sp.conjugated());
}

TEST(SPort, InboundSignalQueuesUntilDrained) {
    Tunable s{"s"};
    f::SPort sp(s, "ctl", tuneProto(), true);
    Supervisor cap{"sup"};
    rt::connect(cap.ctl, sp.rtPort());

    EXPECT_TRUE(cap.ctl.send("setGain", 7.5));
    EXPECT_EQ(sp.pending(), 1u);
    EXPECT_TRUE(s.log.empty()) << "not delivered before drain (solver step boundary)";

    EXPECT_EQ(sp.drain(), 1u);
    ASSERT_EQ(s.log.size(), 1u);
    EXPECT_EQ(s.log[0], "ctl:setGain");
    EXPECT_DOUBLE_EQ(s.param("k"), 7.5);
    EXPECT_EQ(sp.pending(), 0u);
    EXPECT_EQ(sp.received(), 1u);
}

TEST(SPort, OutboundSignalReachesCapsule) {
    Tunable s{"s"};
    f::SPort sp(s, "ctl", tuneProto(), true);
    Supervisor cap{"sup"};
    rt::connect(cap.ctl, sp.rtPort());

    EXPECT_TRUE(sp.send("alarm"));
    // No controller on the capsule: synchronous delivery.
    EXPECT_EQ(cap.alarms, 1);
    EXPECT_EQ(sp.sent(), 1u);
}

TEST(SPort, OutboundThroughControllerIsAsynchronous) {
    Tunable s{"s"};
    f::SPort sp(s, "ctl", tuneProto(), true);
    Supervisor cap{"sup"};
    rt::connect(cap.ctl, sp.rtPort());
    rt::Controller ctl{"main"};
    ctl.attach(cap);

    EXPECT_TRUE(sp.send("alarm"));
    EXPECT_EQ(cap.alarms, 0) << "queued, not yet dispatched";
    ctl.dispatchAll();
    EXPECT_EQ(cap.alarms, 1);
}

TEST(SPort, ProtocolDirectionEnforced) {
    Tunable s{"s"};
    f::SPort sp(s, "ctl", tuneProto(), true);
    Supervisor cap{"sup"};
    rt::connect(cap.ctl, sp.rtPort());
    EXPECT_FALSE(sp.send("setGain", 1.0)) << "conjugated side cannot send base out-signal";
    EXPECT_FALSE(cap.ctl.send("alarm"));
}

TEST(SPort, UnwiredSendFailsGracefully) {
    Tunable s{"s"};
    f::SPort sp(s, "ctl", tuneProto(), true);
    EXPECT_FALSE(sp.send("alarm"));
}

TEST(SPort, DrainPreservesOrder) {
    Tunable s{"s"};
    f::SPort sp(s, "ctl", tuneProto(), true);
    Supervisor cap{"sup"};
    rt::connect(cap.ctl, sp.rtPort());
    cap.ctl.send("setGain", 1.0);
    cap.ctl.send("setGain", 2.0);
    cap.ctl.send("setGain", 3.0);
    sp.drain();
    EXPECT_DOUBLE_EQ(s.param("k"), 3.0) << "last write wins => FIFO order";
    EXPECT_EQ(s.log.size(), 3u);
}
