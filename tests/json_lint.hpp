#pragma once
/// \file json_lint.hpp
/// Minimal recursive-descent JSON well-formedness checker for tests that
/// validate exported artifacts (metrics JSON, Chrome trace-event files)
/// without pulling in a JSON library.

#include <cctype>
#include <string>

namespace urtx::testjson {

class Lint {
public:
    explicit Lint(const std::string& text) : s_(text) {}

    /// True when the whole input is exactly one valid JSON value.
    bool valid() {
        pos_ = 0;
        err_.clear();
        skipWs();
        if (!value()) return false;
        skipWs();
        if (pos_ != s_.size()) {
            err_ = "trailing characters at offset " + std::to_string(pos_);
            return false;
        }
        return true;
    }

    const std::string& error() const { return err_; }

private:
    bool fail(const std::string& what) {
        if (err_.empty()) err_ = what + " at offset " + std::to_string(pos_);
        return false;
    }

    void skipWs() {
        while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }

    bool consume(char c) {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool literal(const char* word) {
        const std::string w(word);
        if (s_.compare(pos_, w.size(), w) == 0) {
            pos_ += w.size();
            return true;
        }
        return fail("expected literal " + w);
    }

    bool string() {
        if (!consume('"')) return fail("expected '\"'");
        while (pos_ < s_.size()) {
            const char c = s_[pos_++];
            if (c == '"') return true;
            if (c == '\\') {
                if (pos_ >= s_.size()) break;
                ++pos_; // accept any escaped char (incl. start of \uXXXX)
            }
        }
        return fail("unterminated string");
    }

    bool number() {
        const std::size_t start = pos_;
        if (consume('-')) {
        }
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) return fail("expected number");
        return true;
    }

    bool value() {
        skipWs();
        if (pos_ >= s_.size()) return fail("unexpected end of input");
        const char c = s_[pos_];
        if (c == '{') return object();
        if (c == '[') return array();
        if (c == '"') return string();
        if (c == 't') return literal("true");
        if (c == 'f') return literal("false");
        if (c == 'n') return literal("null");
        return number();
    }

    bool object() {
        consume('{');
        skipWs();
        if (consume('}')) return true;
        while (true) {
            skipWs();
            if (!string()) return false;
            skipWs();
            if (!consume(':')) return fail("expected ':'");
            if (!value()) return false;
            skipWs();
            if (consume('}')) return true;
            if (!consume(',')) return fail("expected ',' or '}'");
        }
    }

    bool array() {
        consume('[');
        skipWs();
        if (consume(']')) return true;
        while (true) {
            if (!value()) return false;
            skipWs();
            if (consume(']')) return true;
            if (!consume(',')) return fail("expected ',' or ']'");
        }
    }

    const std::string& s_;
    std::size_t pos_ = 0;
    std::string err_;
};

inline bool wellFormed(const std::string& text, std::string* err = nullptr) {
    Lint lint(text);
    const bool ok = lint.valid();
    if (err) *err = lint.error();
    return ok;
}

} // namespace urtx::testjson
