#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rt/capsule.hpp"
#include "rt/controller.hpp"
#include "rt/frame_service.hpp"
#include "rt/port.hpp"

namespace rt = urtx::rt;

namespace {

rt::Protocol& proto() {
    static rt::Protocol p = [] {
        rt::Protocol q{"P"};
        q.out("req").in("rsp");
        return q;
    }();
    return p;
}

struct InitTracker : rt::Capsule {
    using rt::Capsule::Capsule;
    std::vector<std::string>* order = nullptr;

protected:
    void onInit() override {
        if (order) order->push_back(name());
    }
};

} // namespace

TEST(Capsule, FullPathReflectsContainment) {
    rt::Capsule sys{"system"};
    rt::Capsule ctl{"controller", &sys};
    rt::Capsule inner{"pid", &ctl};
    EXPECT_EQ(inner.fullPath(), "system/controller/pid");
    EXPECT_EQ(sys.fullPath(), "system");
}

TEST(Capsule, SubCapsulesRegisterWithParent) {
    rt::Capsule sys{"system"};
    rt::Capsule a{"a", &sys};
    rt::Capsule b{"b", &sys};
    ASSERT_EQ(sys.subCapsules().size(), 2u);
    EXPECT_EQ(sys.subCapsules()[0], &a);
    EXPECT_EQ(sys.subCapsules()[1], &b);
}

TEST(Capsule, DestructionDetachesFromParent) {
    rt::Capsule sys{"system"};
    {
        rt::Capsule tmp{"tmp", &sys};
        EXPECT_EQ(sys.subCapsules().size(), 1u);
    }
    EXPECT_TRUE(sys.subCapsules().empty());
}

TEST(Capsule, InitializeRunsChildrenFirst) {
    std::vector<std::string> order;
    InitTracker sys{"sys"};
    InitTracker child{"child", &sys};
    InitTracker grand{"grand", &child};
    sys.order = &order;
    child.order = &order;
    grand.order = &order;
    sys.initialize();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], "grand");
    EXPECT_EQ(order[1], "child");
    EXPECT_EQ(order[2], "sys");
    EXPECT_TRUE(sys.initialized());
}

TEST(Capsule, InitializeIsIdempotent) {
    std::vector<std::string> order;
    InitTracker sys{"sys"};
    sys.order = &order;
    sys.initialize();
    sys.initialize();
    EXPECT_EQ(order.size(), 1u);
}

TEST(Capsule, InitializeStartsMachine) {
    rt::Capsule c{"c"};
    auto& idle = c.machine().state("Idle");
    c.initialize();
    EXPECT_EQ(c.machine().current(), &idle);
}

TEST(Capsule, MachineDrivenMessageHandling) {
    rt::Capsule c{"c"};
    auto& off = c.machine().state("Off");
    auto& on = c.machine().state("On");
    c.machine().transition(off, on).on("power");
    c.initialize();
    c.deliver(rt::Message(rt::signal("power")));
    EXPECT_TRUE(c.machine().isIn(on));
    EXPECT_EQ(c.delivered(), 1u);
}

TEST(Capsule, UnhandledHookFires) {
    struct C : rt::Capsule {
        using rt::Capsule::Capsule;
        int unhandled = 0;

    protected:
        void onUnhandled(const rt::Message&) override { ++unhandled; }
    } c{"c"};
    c.machine().state("Only");
    c.initialize();
    c.deliver(rt::Message(rt::signal("mystery")));
    EXPECT_EQ(c.unhandled, 1);
}

TEST(Capsule, SetContextRecursivePropagates) {
    rt::Controller ctl{"main"};
    rt::Capsule sys{"sys"};
    rt::Capsule child{"child", &sys};
    sys.setContextRecursive(&ctl);
    EXPECT_EQ(sys.context(), &ctl);
    EXPECT_EQ(child.context(), &ctl);
}

TEST(Capsule, TimerConvenienceWithoutContextIsSafe) {
    rt::Capsule c{"c"};
    EXPECT_EQ(c.informIn(1.0), rt::kInvalidTimer);
    EXPECT_EQ(c.informEvery(1.0), rt::kInvalidTimer);
    EXPECT_FALSE(c.cancelTimer(1));
    EXPECT_DOUBLE_EQ(c.now(), 0.0);
}

TEST(FrameService, IncarnateAddsOwnedChild) {
    rt::Capsule sys{"sys"};
    sys.initialize();
    auto& kid = rt::FrameService::incarnate<InitTracker>(sys, "kid");
    EXPECT_EQ(kid.parent(), &sys);
    EXPECT_EQ(sys.subCapsules().size(), 1u);
    EXPECT_TRUE(kid.initialized()) << "incarnating into an initialized parent initializes the child";
}

TEST(FrameService, IncarnateInheritsContext) {
    rt::Controller ctl{"main"};
    rt::Capsule sys{"sys"};
    ctl.attach(sys);
    auto& kid = rt::FrameService::incarnate<InitTracker>(sys, "kid");
    EXPECT_EQ(kid.context(), &ctl);
}

namespace {
struct PortedCapsule : rt::Capsule {
    PortedCapsule(std::string name, rt::Capsule* parent)
        : rt::Capsule(std::move(name), parent), port(*this, "p", proto(), true) {}
    rt::Port port;
};
} // namespace

TEST(FrameService, DestroyRemovesAndUnwires) {
    rt::Capsule sys{"sys"};
    rt::Capsule peer{"peer"};
    rt::Port peerPort(peer, "p", proto(), false);

    auto& kid = rt::FrameService::incarnate<PortedCapsule>(sys, "kid");
    rt::connect(peerPort, kid.port);
    EXPECT_TRUE(peerPort.isWired());

    EXPECT_TRUE(rt::FrameService::destroy(kid));
    EXPECT_TRUE(sys.subCapsules().empty());
    EXPECT_FALSE(peerPort.isWired()) << "destroying the capsule must unwire its ports";
}

TEST(FrameService, DestroyRejectsNonIncarnated) {
    rt::Capsule sys{"sys"};
    rt::Capsule staticChild{"static", &sys};
    EXPECT_FALSE(rt::FrameService::destroy(staticChild));
    EXPECT_FALSE(rt::FrameService::destroy(sys));
}
