/// \file srv_framing_test.cpp
/// Binary wire-protocol tests against the generated codec and the framing
/// layer: preamble negotiation, frame header parsing, job/result
/// round-trips, truncation fuzzing at every prefix length, hostile map
/// counts, unknown tags, and the JSON re-rendering identity a binary
/// client relies on (recordJson over a decoded WireResult must be
/// byte-identical to the daemon's own JSON line).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "srv/batch_io.hpp"
#include "srv/daemon/framing.hpp"
#include "srv/scenario.hpp"

namespace srv = urtx::srv;
namespace wire = urtx::srv::wire;
namespace wiregen = urtx::srv::wiregen;

namespace {

srv::ScenarioSpec fullSpec() {
    srv::ScenarioSpec spec;
    spec.name = "frame-test";
    spec.scenario = "tank";
    spec.horizon = 3.25;
    spec.mode = urtx::sim::ExecutionMode::MultiThread;
    spec.deadlineSeconds = 1.5;
    spec.costSeconds = 0.25;
    spec.wallBudgetSeconds = 2.0;
    spec.params.set("qin", 0.75);
    spec.params.set("setpoint", 1.125);
    spec.params.set("controller", std::string("pid"));
    return spec;
}

srv::ResultRecord fullRecord() {
    srv::ResultRecord r;
    r.name = "frame-test";
    r.scenario = "tank";
    r.status = srv::ScenarioStatus::Succeeded;
    r.passed = true;
    r.verdict = "level settled";
    r.worker = 3;
    r.stolen = true;
    r.deadlineMet = true;
    r.warmReuse = true;
    r.cachedResult = false;
    r.watchdogTripped = false;
    r.queueWaitSeconds = 0.001;
    r.wallSeconds = 0.125;
    r.finishedAtSeconds = 0.5;
    r.simTime = 3.25;
    r.steps = 1234;
    r.traceRows = 56;
    r.traceHash = 0xdeadbeefcafef00dull;
    r.metricsJson = "{\"counters\": {}}";
    r.stages = {{"decode", 2.5e-6}, {"admission", 4.0e-6}, {"solve", 1.25e-3},
                {"reply", 1.5e-3}};
    return r;
}

} // namespace

TEST(SrvFramingTest, PreambleRoundTripsAndRejectsCorruption) {
    const std::string hello = wire::preamble();
    ASSERT_EQ(hello.size(), wiregen::kPreambleBytes);
    EXPECT_EQ(hello.substr(0, 4), "URTX");
    std::string err;
    EXPECT_TRUE(wire::checkPreamble(hello.data(), &err)) << err;

    std::string badMagic = hello;
    badMagic[0] = 'X';
    EXPECT_FALSE(wire::checkPreamble(badMagic.data(), &err));
    EXPECT_FALSE(err.empty());

    std::string badVersion = hello;
    badVersion[4] = static_cast<char>(wiregen::kVersion + 1);
    EXPECT_FALSE(wire::checkPreamble(badVersion.data()));
}

TEST(SrvFramingTest, FrameHeaderPeeksTypeAndLength) {
    std::string out;
    wire::appendFrame(out, wire::FrameType::Result, "payload");
    ASSERT_EQ(out.size(), wiregen::kFrameHeaderBytes + 7);

    // Fewer than kFrameHeaderBytes buffered: not yet parseable.
    for (std::size_t n = 0; n < wiregen::kFrameHeaderBytes; ++n) {
        EXPECT_FALSE(wire::peekFrameHeader(std::string_view(out).substr(0, n)));
    }
    const auto h = wire::peekFrameHeader(out);
    ASSERT_TRUE(h.has_value());
    EXPECT_EQ(h->length, 7u);
    EXPECT_EQ(h->type, static_cast<std::uint8_t>(wire::FrameType::Result));
}

TEST(SrvFramingTest, JobRoundTripPreservesEveryField) {
    const srv::ScenarioSpec spec = fullSpec();
    const std::string bytes = wire::jobToWire(spec).encode();

    wiregen::WireJob w;
    std::string err;
    ASSERT_TRUE(wiregen::WireJob::decode(w, bytes.data(), bytes.size(), &err))
        << err;
    const srv::ScenarioSpec back = wire::jobFromWire(w);

    EXPECT_EQ(back.name, spec.name);
    EXPECT_EQ(back.scenario, spec.scenario);
    EXPECT_EQ(back.horizon, spec.horizon);
    EXPECT_EQ(back.mode, spec.mode);
    EXPECT_EQ(back.deadlineSeconds, spec.deadlineSeconds);
    EXPECT_EQ(back.costSeconds, spec.costSeconds);
    EXPECT_EQ(back.wallBudgetSeconds, spec.wallBudgetSeconds);
    EXPECT_EQ(back.params.nums(), spec.params.nums());
    EXPECT_EQ(back.params.strs(), spec.params.strs());
    // Equal job hashes mean the daemon treats both as bit-identical runs.
    EXPECT_EQ(back.jobHash(), spec.jobHash());
    EXPECT_EQ(back.warmKey(), spec.warmKey());
}

TEST(SrvFramingTest, ResultRoundTripRendersByteIdenticalJson) {
    const srv::ResultRecord r = fullRecord();
    const std::string bytes = wire::resultToWire(r).encode();

    wiregen::WireResult w;
    std::string err;
    ASSERT_TRUE(wiregen::WireResult::decode(w, bytes.data(), bytes.size(), &err))
        << err;
    const srv::ResultRecord back = wire::resultFromWire(w);

    // The identity the binary client depends on: re-rendering the decoded
    // record produces the exact JSON line the daemon would have streamed.
    EXPECT_EQ(srv::recordJson(back), srv::recordJson(r));
    EXPECT_EQ(back.traceHash, r.traceHash);
    EXPECT_EQ(back.status, r.status);
    EXPECT_EQ(back.worker, r.worker);
    EXPECT_EQ(back.stages, r.stages);
}

TEST(SrvFramingTest, UnknownStatusByteClampsToRejected) {
    wiregen::WireResult w = wire::resultToWire(fullRecord());
    w.status = 99;
    const srv::ResultRecord back = wire::resultFromWire(w);
    EXPECT_EQ(back.status, srv::ScenarioStatus::Rejected);
}

TEST(SrvFramingTest, TruncationFuzzNeverReadsPastTheBuffer) {
    const std::string job = wire::jobToWire(fullSpec()).encode();
    const std::string res = wire::resultToWire(fullRecord()).encode();

    // Every proper prefix must decode cleanly: either a structured failure
    // (with a reason) or a success that stopped exactly on a field
    // boundary. Crashes / overreads are what ASan and the Cursor's bounds
    // checks turn into failures here.
    for (std::size_t n = 0; n < job.size(); ++n) {
        wiregen::WireJob w;
        std::string err;
        if (!wiregen::WireJob::decode(w, job.data(), n, &err)) {
            EXPECT_FALSE(err.empty()) << "failed decode at " << n
                                      << " bytes must explain itself";
        }
    }
    for (std::size_t n = 0; n < res.size(); ++n) {
        wiregen::WireResult w;
        std::string err;
        if (!wiregen::WireResult::decode(w, res.data(), n, &err)) {
            EXPECT_FALSE(err.empty());
        }
    }
    // Chopping the final byte always lands mid-field for these payloads
    // (both end in a non-empty string / map entry).
    wiregen::WireJob wj;
    EXPECT_FALSE(wiregen::WireJob::decode(wj, job.data(), job.size() - 1));
    wiregen::WireResult wr;
    EXPECT_FALSE(wiregen::WireResult::decode(wr, res.data(), res.size() - 1));
}

TEST(SrvFramingTest, HostileMapCountIsRejectedNotAllocated) {
    // Field tag 8 (num_params) claiming 2^32-1 entries in a 9-byte payload:
    // the decoder must fail on the count, not loop allocating.
    std::string hostile;
    wiregen::putU8(hostile, 8);
    wiregen::putU32(hostile, 0xffffffffu);
    wiregen::putU32(hostile, 0); // pretend-key so remaining() > 0

    wiregen::WireJob w;
    std::string err;
    EXPECT_FALSE(wiregen::WireJob::decode(w, hostile.data(), hostile.size(), &err));
    EXPECT_EQ(err, "map count exceeds payload");
}

TEST(SrvFramingTest, OversizeStringLengthIsRejected) {
    std::string hostile;
    wiregen::putU8(hostile, 1); // scenario
    wiregen::putU32(hostile, 0x7fffffffu);
    hostile += "abc";

    wiregen::WireJob w;
    std::string err;
    EXPECT_FALSE(wiregen::WireJob::decode(w, hostile.data(), hostile.size(), &err));
    EXPECT_EQ(err, "string length exceeds payload");
}

TEST(SrvFramingTest, UnknownFieldTagIsRejected) {
    std::string hostile;
    wiregen::putU8(hostile, 200);

    wiregen::WireJob w;
    std::string err;
    EXPECT_FALSE(wiregen::WireJob::decode(w, hostile.data(), hostile.size(), &err));
    EXPECT_EQ(err, "unknown field tag");
}

TEST(SrvFramingTest, AbsentFieldsDecodeToDeclaredDefaults) {
    // An empty payload is a valid message: every field at its default.
    wiregen::WireJob w;
    ASSERT_TRUE(wiregen::WireJob::decode(w, "", 0));
    EXPECT_EQ(w.horizon, 1.0);
    EXPECT_EQ(w.mode, 0);
    EXPECT_TRUE(w.scenario.empty());
    EXPECT_TRUE(w.num_params.empty());

    wiregen::WireResult r;
    ASSERT_TRUE(wiregen::WireResult::decode(r, "", 0));
    EXPECT_EQ(r.worker, UINT64_MAX);
    EXPECT_TRUE(r.deadline_met);
}
