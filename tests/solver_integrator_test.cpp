#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "solver/integrator.hpp"

namespace s = urtx::solver;

namespace {

/// dx/dt = -x, x(0)=1, x(t)=exp(-t).
s::FnOde decay() {
    return s::FnOde(1, [](double, const s::Vec& x, s::Vec& dx) { dx[0] = -x[0]; });
}

/// Harmonic oscillator: x'' = -x as first-order system.
s::FnOde oscillator() {
    return s::FnOde(2, [](double, const s::Vec& x, s::Vec& dx) {
        dx[0] = x[1];
        dx[1] = -x[0];
    });
}

/// Integrate sys from 0 to T with n fixed steps, return final state.
s::Vec integrate(s::Integrator& m, const s::OdeSystem& sys, s::Vec x, double T, int n) {
    const double dt = T / n;
    double t = 0;
    for (int i = 0; i < n; ++i, t += dt) m.step(sys, t, dt, x);
    return x;
}

} // namespace

// ------------------------------------------------- parameterized: all methods

struct MethodCase {
    std::string method;
    int expectedOrder;
};

class IntegratorSuite : public ::testing::TestWithParam<MethodCase> {};

INSTANTIATE_TEST_SUITE_P(AllMethods, IntegratorSuite,
                         ::testing::Values(MethodCase{"Euler", 1}, MethodCase{"Heun", 2},
                                           MethodCase{"RK4", 4}, MethodCase{"RK45", 5},
                                           MethodCase{"AB2", 2},
                                           MethodCase{"ImplicitEuler", 1},
                                           MethodCase{"Trapezoidal", 2}),
                         [](const auto& info) { return info.param.method; });

TEST_P(IntegratorSuite, FactoryProducesWorkingMethod) {
    auto m = s::makeIntegrator(GetParam().method);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->name(), GetParam().method);
    EXPECT_EQ(m->order(), GetParam().expectedOrder);
}

TEST_P(IntegratorSuite, SolvesExponentialDecay) {
    auto m = s::makeIntegrator(GetParam().method);
    auto sys = decay();
    auto x = integrate(*m, sys, {1.0}, 1.0, 200);
    // Even Euler at dt=0.005 is within ~0.3%.
    EXPECT_NEAR(x[0], std::exp(-1.0), 2e-3) << m->name();
    EXPECT_GT(sys.evals(), 0u);
    EXPECT_GT(m->steps(), 0u);
}

TEST_P(IntegratorSuite, SolvesOscillatorPhase) {
    auto m = s::makeIntegrator(GetParam().method);
    auto sys = oscillator();
    // One period: x(2*pi) == x(0).
    auto x = integrate(*m, sys, {1.0, 0.0}, 2.0 * M_PI, 2000);
    EXPECT_NEAR(x[0], 1.0, 1e-2) << m->name();
    EXPECT_NEAR(x[1], 0.0, 1e-2) << m->name();
}

TEST_P(IntegratorSuite, ConvergesAtNominalOrder) {
    if (GetParam().method == "RK45") GTEST_SKIP() << "adaptive method has no fixed-step order";
    auto m = s::makeIntegrator(GetParam().method);
    auto sys = decay();
    const double T = 1.0;
    const double exact = std::exp(-T);

    // Error at n and 2n steps; ratio ~ 2^order.
    const int n = 40;
    const double e1 = std::abs(integrate(*m, sys, {1.0}, T, n)[0] - exact);
    const double e2 = std::abs(integrate(*m, sys, {1.0}, T, 2 * n)[0] - exact);
    const double observedOrder = std::log2(e1 / e2);
    EXPECT_NEAR(observedOrder, GetParam().expectedOrder, 0.35)
        << m->name() << ": e1=" << e1 << " e2=" << e2;
}

TEST_P(IntegratorSuite, ZeroDtIsHarmlessForAdaptive) {
    if (GetParam().method != "RK45") GTEST_SKIP();
    auto m = s::makeIntegrator(GetParam().method);
    auto sys = decay();
    s::Vec x{1.0};
    m->step(sys, 0.0, 0.0, x);
    EXPECT_DOUBLE_EQ(x[0], 1.0);
}

// ------------------------------------------------------------- method-specific

TEST(Integrator, FactoryRejectsUnknown) {
    EXPECT_THROW(s::makeIntegrator("Simpson"), std::invalid_argument);
}

TEST(Integrator, Rk45MeetsTolerance) {
    s::Rk45Integrator m(1e-10, 1e-12);
    auto sys = decay();
    s::Vec x{1.0};
    m.step(sys, 0.0, 1.0, x);
    EXPECT_NEAR(x[0], std::exp(-1.0), 1e-8);
    EXPECT_GT(m.accepted(), 0u);
}

TEST(Integrator, Rk45LooseToleranceUsesFewerEvals) {
    auto sysA = decay();
    auto sysB = decay();
    s::Rk45Integrator loose(1e-3, 1e-6), tight(1e-12, 1e-14);
    s::Vec xa{1.0}, xb{1.0};
    loose.step(sysA, 0.0, 5.0, xa);
    tight.step(sysB, 0.0, 5.0, xb);
    EXPECT_LT(sysA.evals(), sysB.evals());
}

TEST(Integrator, Rk45StepCountersReset) {
    s::Rk45Integrator m;
    auto sys = decay();
    s::Vec x{1.0};
    m.step(sys, 0.0, 1.0, x);
    EXPECT_GT(m.accepted(), 0u);
    m.reset();
    EXPECT_EQ(m.accepted(), 0u);
    EXPECT_EQ(m.rejected(), 0u);
    EXPECT_EQ(m.steps(), 0u);
}

TEST(Integrator, StiffProblemExplodesExplicitlyButNotImplicitly) {
    // dx/dt = -1000 x with dt = 0.01: explicit Euler amplification factor
    // |1 - 10| = 9 per step -> divergence; implicit Euler is A-stable.
    auto stiff = s::FnOde(1, [](double, const s::Vec& x, s::Vec& dx) { dx[0] = -1000.0 * x[0]; });

    s::EulerIntegrator explicitEuler;
    s::Vec xe{1.0};
    for (int i = 0; i < 50; ++i) explicitEuler.step(stiff, i * 0.01, 0.01, xe);
    EXPECT_GT(std::abs(xe[0]), 1e10) << "explicit Euler must diverge on stiff system";

    s::ImplicitEulerIntegrator implicitEuler;
    s::Vec xi{1.0};
    for (int i = 0; i < 50; ++i) implicitEuler.step(stiff, i * 0.01, 0.01, xi);
    EXPECT_LT(std::abs(xi[0]), 1.0) << "implicit Euler must stay stable";
    EXPECT_GE(xi[0], 0.0);
}

TEST(Integrator, TrapezoidalExactForLinearInTime) {
    // dx/dt = t integrates exactly under the trapezoidal rule.
    auto sys = s::FnOde(1, [](double t, const s::Vec&, s::Vec& dx) { dx[0] = t; });
    s::TrapezoidalIntegrator m;
    s::Vec x{0.0};
    double t = 0;
    for (int i = 0; i < 10; ++i, t += 0.1) m.step(sys, t, 0.1, x);
    EXPECT_NEAR(x[0], 0.5, 1e-9);
}

TEST(Integrator, ImplicitHandlesNonlinearSystem) {
    // dx/dt = -x^3, known decreasing positive solution.
    auto sys = s::FnOde(1, [](double, const s::Vec& x, s::Vec& dx) { dx[0] = -x[0] * x[0] * x[0]; });
    s::ImplicitEulerIntegrator m;
    s::Vec x{1.0};
    double t = 0;
    for (int i = 0; i < 100; ++i, t += 0.01) m.step(sys, t, 0.01, x);
    // Analytic: x(t) = 1/sqrt(1+2t) -> x(1) ~ 0.57735.
    EXPECT_NEAR(x[0], 1.0 / std::sqrt(3.0), 5e-3);
}

TEST(Integrator, EvalCountsAccumulateAndReset) {
    auto sys = decay();
    s::Rk4Integrator m;
    s::Vec x{1.0};
    m.step(sys, 0.0, 0.1, x);
    EXPECT_EQ(sys.evals(), 4u);
    m.step(sys, 0.1, 0.1, x);
    EXPECT_EQ(sys.evals(), 8u);
    sys.resetEvalCount();
    EXPECT_EQ(sys.evals(), 0u);
}

TEST(Integrator, Rk45ExactlyLandsOnTargetTime) {
    // Time-dependent RHS makes landing accuracy observable:
    // dx/dt = cos(t), x(0)=0 -> x(T)=sin(T).
    auto sys = s::FnOde(1, [](double t, const s::Vec&, s::Vec& dx) { dx[0] = std::cos(t); });
    s::Rk45Integrator m(1e-9, 1e-12);
    s::Vec x{0.0};
    const double T = 3.7;
    m.step(sys, 0.0, T, x);
    EXPECT_NEAR(x[0], std::sin(T), 1e-7);
}

TEST(Integrator, Ab2HistoryInvalidatesOnDiscontinuity) {
    // Solving then restarting at a different time must not reuse stale
    // history (the bootstrap path must rerun).
    auto sys = decay();
    s::AdamsBashforth2Integrator m;
    s::Vec x{1.0};
    m.step(sys, 0.0, 0.01, x);
    m.step(sys, 0.01, 0.01, x); // contiguous: multistep path
    // Jump backwards (like a zero-crossing retry): must still be accurate.
    s::Vec y{1.0};
    m.step(sys, 0.0, 0.01, y);
    EXPECT_NEAR(y[0], std::exp(-0.01), 1e-6) << "bootstrap must rerun after the jump";
}

TEST(Integrator, Ab2MatchesHeunOnFirstStepOnly) {
    auto sysA = decay();
    auto sysB = decay();
    s::AdamsBashforth2Integrator ab2;
    s::HeunIntegrator heun;
    s::Vec xa{1.0}, xb{1.0};
    ab2.step(sysA, 0.0, 0.1, xa);
    heun.step(sysB, 0.0, 0.1, xb);
    EXPECT_DOUBLE_EQ(xa[0], xb[0]) << "first AB2 step bootstraps with Heun";
    // Second step diverges from Heun (multistep formula, 1 eval).
    sysA.resetEvalCount();
    ab2.step(sysA, 0.1, 0.1, xa);
    EXPECT_EQ(sysA.evals(), 1u) << "continuing AB2 costs one evaluation per step";
}
