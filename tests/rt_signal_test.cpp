#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "rt/signal.hpp"

namespace rt = urtx::rt;

TEST(Signal, InternIsIdempotent) {
    const auto a = rt::signal("sig.idempotent");
    const auto b = rt::signal("sig.idempotent");
    EXPECT_EQ(a, b);
}

TEST(Signal, DistinctNamesGetDistinctIds) {
    const auto a = rt::signal("sig.distinct.a");
    const auto b = rt::signal("sig.distinct.b");
    EXPECT_NE(a, b);
}

TEST(Signal, NameRoundTrips) {
    const auto id = rt::signal("sig.roundtrip");
    EXPECT_EQ(rt::SignalRegistry::name(id), "sig.roundtrip");
}

TEST(Signal, EmptyNameIsInternable) {
    const auto id = rt::signal("");
    EXPECT_EQ(rt::SignalRegistry::name(id), "");
}

TEST(Signal, RegistrySizeGrowsMonotonically) {
    const auto before = rt::SignalRegistry::size();
    rt::signal("sig.growth.unique.xyz");
    EXPECT_GE(rt::SignalRegistry::size(), before + 0); // may pre-exist
    rt::signal("sig.growth.unique.xyz2");
    EXPECT_GT(rt::SignalRegistry::size(), before);
}

TEST(Signal, ConcurrentInterningIsConsistent) {
    constexpr int kThreads = 8;
    constexpr int kNames = 64;
    std::vector<std::vector<rt::SignalId>> ids(kThreads, std::vector<rt::SignalId>(kNames));
    std::vector<std::thread> ts;
    ts.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
            for (int i = 0; i < kNames; ++i) {
                ids[t][i] = rt::signal("sig.conc." + std::to_string(i));
            }
        });
    }
    for (auto& t : ts) t.join();
    for (int t = 1; t < kThreads; ++t) {
        EXPECT_EQ(ids[t], ids[0]) << "thread " << t << " saw different ids";
    }
    // All kNames ids distinct.
    std::set<rt::SignalId> uniq(ids[0].begin(), ids[0].end());
    EXPECT_EQ(uniq.size(), static_cast<std::size_t>(kNames));
}
