/// \file obs_scope_test.cpp
/// Registry / FlightRecorder scoping: installable per-thread handles so
/// concurrent scenarios can each observe into a private sandbox, with the
/// process-wide defaults untouched for everyone else.

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace obs = urtx::obs;

TEST(ObsScope, DefaultResolvesToProcessRegistry) {
    EXPECT_EQ(&obs::Registry::global(), &obs::Registry::process());
    EXPECT_EQ(obs::Registry::installed(), nullptr);
}

TEST(ObsScope, ScopedRegistryRedirectsGlobal) {
    const std::uint64_t before = obs::Registry::process().counter("scope.test").value();
    {
        obs::Registry local;
        obs::ScopedRegistry scope(&local);
        EXPECT_EQ(&obs::Registry::global(), &local);
        EXPECT_EQ(obs::Registry::installed(), &local);
        obs::Registry::global().counter("scope.test").add(5);
        EXPECT_EQ(local.counter("scope.test").value(), 5u);
    }
    // Back to the process registry, which never saw the writes.
    EXPECT_EQ(&obs::Registry::global(), &obs::Registry::process());
    EXPECT_EQ(obs::Registry::process().counter("scope.test").value(), before);
}

TEST(ObsScope, ScopesNestAndRestore) {
    obs::Registry a;
    obs::Registry b;
    obs::ScopedRegistry sa(&a);
    EXPECT_EQ(&obs::Registry::global(), &a);
    {
        obs::ScopedRegistry sb(&b);
        EXPECT_EQ(&obs::Registry::global(), &b);
    }
    EXPECT_EQ(&obs::Registry::global(), &a);
}

TEST(ObsScope, NullScopeIsNoOp) {
    obs::Registry a;
    obs::ScopedRegistry sa(&a);
    {
        obs::ScopedRegistry none(nullptr);
        EXPECT_EQ(&obs::Registry::global(), &a);
    }
    EXPECT_EQ(&obs::Registry::global(), &a);
}

TEST(ObsScope, ScopeIsPerThread) {
    obs::Registry local;
    obs::ScopedRegistry scope(&local);
    obs::Registry* seen = &local;
    std::thread t([&] { seen = obs::Registry::installed(); });
    t.join();
    // A fresh thread has no installation — propagation is explicit.
    EXPECT_EQ(seen, nullptr);
}

TEST(ObsScope, WellknownIsPerRegistry) {
    obs::Registry a;
    obs::Registry b;
    const obs::Wellknown* wa = &a.wellknown();
    const obs::Wellknown* wb = &b.wellknown();
    EXPECT_NE(wa, wb);
    EXPECT_EQ(wa, &a.wellknown()); // stable across calls

    // The free function resolves through the installed registry.
    {
        obs::ScopedRegistry scope(&a);
        EXPECT_EQ(&obs::wellknown(), wa);
    }
    {
        obs::ScopedRegistry scope(&b);
        EXPECT_EQ(&obs::wellknown(), wb);
    }
}

TEST(ObsScope, WellknownWritesLandInScopedRegistry) {
    obs::Registry local;
    {
        obs::ScopedRegistry scope(&local);
        obs::wellknown().simSteps->add(42);
    }
    const obs::Snapshot snap = local.snapshot();
    const auto* steps = snap.counter("sim.grid_steps");
    ASSERT_NE(steps, nullptr);
    EXPECT_EQ(steps->value, 42u);
}

TEST(ObsScope, WellknownCacheSurvivesRegistryAddressReuse) {
    // Destroy-and-recreate registries repeatedly: if the thread-local
    // wellknown cache keyed on the registry address (instead of its uid),
    // an address reused by a new registry would serve the dead registry's
    // table. uids are process-unique, so each round must see its own.
    for (int i = 0; i < 8; ++i) {
        auto r = std::make_unique<obs::Registry>();
        obs::ScopedRegistry scope(r.get());
        EXPECT_EQ(&obs::wellknown(), &r->wellknown());
        obs::wellknown().simSteps->inc();
        const obs::Snapshot snap = r->snapshot();
        const auto* c = snap.counter("sim.grid_steps");
        ASSERT_NE(c, nullptr);
        EXPECT_EQ(c->value, 1u) << "round " << i << " leaked into a recycled registry";
    }
}

TEST(ObsScope, UidsAreUnique) {
    obs::Registry a;
    obs::Registry b;
    EXPECT_NE(a.uid(), b.uid());
    EXPECT_NE(a.uid(), obs::Registry::process().uid());
    EXPECT_NE(a.uid(), 0u);
}

TEST(ObsScope, ScopedFlightRecorderRedirects) {
    obs::FlightRecorder& proc = obs::FlightRecorder::process();
    EXPECT_EQ(&obs::FlightRecorder::global(), &proc);
    obs::FlightRecorder local(64);
    {
        obs::ScopedFlightRecorder scope(&local);
        EXPECT_EQ(&obs::FlightRecorder::global(), &local);
        EXPECT_EQ(obs::FlightRecorder::installed(), &local);
        obs::FlightRecorder::global().note("test", 0, "scoped event %d", 1);
    }
    EXPECT_EQ(&obs::FlightRecorder::global(), &proc);
    EXPECT_EQ(local.eventCount(), 1u);
}

TEST(ObsScope, FlightRecorderCapacityCtor) {
    obs::FlightRecorder tiny(2);
    tiny.note("t", 0, "a");
    tiny.note("t", 0, "b");
    tiny.note("t", 0, "c");
    EXPECT_EQ(tiny.eventCount(), 2u);
    EXPECT_EQ(tiny.droppedCount(), 1u);
}
