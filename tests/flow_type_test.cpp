#include <gtest/gtest.h>

#include <vector>

#include "flow/flow_type.hpp"

namespace f = urtx::flow;
using FT = f::FlowType;

namespace {

FT posVel() {
    return FT::record({{"pos", FT::real()}, {"vel", FT::real()}});
}
FT posVelAcc() {
    return FT::record({{"pos", FT::real()}, {"vel", FT::real()}, {"acc", FT::real()}});
}

} // namespace

TEST(FlowType, ScalarWidths) {
    EXPECT_EQ(FT::boolean().width(), 1u);
    EXPECT_EQ(FT::integer().width(), 1u);
    EXPECT_EQ(FT::real().width(), 1u);
    EXPECT_TRUE(FT::real().isScalar());
}

TEST(FlowType, CompositeWidths) {
    EXPECT_EQ(FT::vector(FT::real(), 3).width(), 3u);
    EXPECT_EQ(posVel().width(), 2u);
    EXPECT_EQ(FT::vector(posVel(), 2).width(), 4u);
}

TEST(FlowType, NumericWideningChain) {
    EXPECT_TRUE(FT::boolean().subsetOf(FT::integer()));
    EXPECT_TRUE(FT::integer().subsetOf(FT::real()));
    EXPECT_TRUE(FT::boolean().subsetOf(FT::real()));
    EXPECT_FALSE(FT::real().subsetOf(FT::integer()));
    EXPECT_FALSE(FT::integer().subsetOf(FT::boolean()));
}

TEST(FlowType, VectorCovariance) {
    EXPECT_TRUE(FT::vector(FT::integer(), 3).subsetOf(FT::vector(FT::real(), 3)));
    EXPECT_FALSE(FT::vector(FT::real(), 3).subsetOf(FT::vector(FT::real(), 4)));
    EXPECT_FALSE(FT::vector(FT::real(), 3).subsetOf(FT::real()));
}

TEST(FlowType, RecordWidthSubtyping) {
    // A producer with MORE fields satisfies a consumer needing fewer.
    EXPECT_TRUE(posVelAcc().subsetOf(posVel()));
    EXPECT_FALSE(posVel().subsetOf(posVelAcc()));
}

TEST(FlowType, RecordDepthSubtyping) {
    const FT intPos = FT::record({{"pos", FT::integer()}, {"vel", FT::real()}});
    EXPECT_TRUE(intPos.subsetOf(posVel()));
    EXPECT_FALSE(posVel().subsetOf(intPos));
}

TEST(FlowType, RecordFieldOrderIrrelevantForSubset) {
    const FT swapped = FT::record({{"vel", FT::real()}, {"pos", FT::real()}});
    EXPECT_TRUE(swapped.subsetOf(posVel()));
    EXPECT_TRUE(posVel().subsetOf(swapped));
    EXPECT_FALSE(swapped.equals(posVel())) << "equality is positional";
}

TEST(FlowType, RecordRejectsDuplicatesAndEmpty) {
    EXPECT_THROW(FT::record({{"a", FT::real()}, {"a", FT::real()}}), std::invalid_argument);
    EXPECT_THROW(FT::record({}), std::invalid_argument);
    EXPECT_THROW(FT::vector(FT::real(), 0), std::invalid_argument);
}

TEST(FlowType, Equality) {
    EXPECT_TRUE(FT::real().equals(FT::real()));
    EXPECT_FALSE(FT::real().equals(FT::integer()));
    EXPECT_TRUE(FT::vector(FT::real(), 2).equals(FT::vector(FT::real(), 2)));
    EXPECT_FALSE(FT::vector(FT::real(), 2).equals(FT::vector(FT::real(), 3)));
    EXPECT_TRUE(posVel().equals(posVel()));
}

TEST(FlowType, ToStringRendersStructure) {
    EXPECT_EQ(FT::real().toString(), "Real");
    EXPECT_EQ(FT::vector(FT::integer(), 4).toString(), "Vector<Int,4>");
    EXPECT_EQ(posVel().toString(), "{pos:Real, vel:Real}");
}

TEST(FlowType, FieldOffsets) {
    const FT t = posVelAcc();
    EXPECT_EQ(t.fieldOffset("pos"), 0u);
    EXPECT_EQ(t.fieldOffset("vel"), 1u);
    EXPECT_EQ(t.fieldOffset("acc"), 2u);
    EXPECT_FALSE(t.fieldOffset("jerk").has_value());
    EXPECT_EQ(t.fieldType("vel")->kind(), FT::Kind::Real);
    EXPECT_EQ(t.fieldType("nope"), nullptr);
}

TEST(FlowType, ProjectionIdentityForEqualTypes) {
    auto p = FT::projection(FT::vector(FT::real(), 3), FT::vector(FT::real(), 3));
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(FlowType, ProjectionSelectsRecordFields) {
    // Output {pos,vel,acc} -> input {acc,pos}: input slot0 <- acc(=2),
    // slot1 <- pos(=0).
    const FT in = FT::record({{"acc", FT::real()}, {"pos", FT::real()}});
    auto p = FT::projection(posVelAcc(), in);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, (std::vector<std::size_t>{2, 0}));
}

TEST(FlowType, ProjectionFailsOnIllegalPair) {
    EXPECT_FALSE(FT::projection(FT::real(), FT::integer()).has_value());
    EXPECT_FALSE(FT::projection(posVel(), posVelAcc()).has_value());
}

TEST(FlowType, ProjectionNestedRecordInVector) {
    const FT big = FT::vector(posVelAcc(), 2);
    const FT small = FT::vector(posVel(), 2);
    auto p = FT::projection(big, small);
    ASSERT_TRUE(p.has_value());
    // Element 0: pos@0, vel@1; element 1 of source starts at 3.
    EXPECT_EQ(*p, (std::vector<std::size_t>{0, 1, 3, 4}));
}

// -------- property-style sweep: subset must be reflexive & transitive ------

class FlowTypeLattice : public ::testing::TestWithParam<int> {
public:
    static std::vector<FT> corpus() {
        return {FT::boolean(),
                FT::integer(),
                FT::real(),
                FT::vector(FT::real(), 2),
                FT::vector(FT::integer(), 2),
                FT::vector(FT::real(), 3),
                posVel(),
                posVelAcc(),
                FT::record({{"pos", FT::integer()}, {"vel", FT::real()}}),
                FT::vector(posVel(), 2)};
    }
};

INSTANTIATE_TEST_SUITE_P(Corpus, FlowTypeLattice,
                         ::testing::Range(0, static_cast<int>(10)));

TEST_P(FlowTypeLattice, SubsetIsReflexive) {
    const auto ts = corpus();
    const FT& t = ts[static_cast<std::size_t>(GetParam())];
    EXPECT_TRUE(t.subsetOf(t)) << t.toString();
    EXPECT_TRUE(t.equals(t));
}

TEST_P(FlowTypeLattice, SubsetIsTransitive) {
    const auto ts = corpus();
    const FT& a = ts[static_cast<std::size_t>(GetParam())];
    for (const FT& b : ts) {
        if (!a.subsetOf(b)) continue;
        for (const FT& c : ts) {
            if (b.subsetOf(c)) {
                EXPECT_TRUE(a.subsetOf(c))
                    << a.toString() << " ⊆ " << b.toString() << " ⊆ " << c.toString();
            }
        }
    }
}

TEST_P(FlowTypeLattice, SubsetImpliesProjectionExists) {
    const auto ts = corpus();
    const FT& a = ts[static_cast<std::size_t>(GetParam())];
    for (const FT& b : ts) {
        EXPECT_EQ(a.subsetOf(b), FT::projection(a, b).has_value())
            << a.toString() << " vs " << b.toString();
        if (auto p = FT::projection(a, b)) {
            EXPECT_EQ(p->size(), b.width());
            for (std::size_t slot : *p) EXPECT_LT(slot, a.width());
        }
    }
}
