#include <gtest/gtest.h>

#include <sstream>

#include "control/control.hpp"
#include "flow/flow.hpp"
#include "json_lint.hpp"
#include "obs/obs.hpp"
#include "rt/rt.hpp"
#include "sim/sim.hpp"

namespace f = urtx::flow;
namespace c = urtx::control;
namespace s = urtx::solver;
namespace rt = urtx::rt;
namespace sim = urtx::sim;
namespace obs = urtx::obs;

namespace {

struct Plain : f::Streamer {
    using f::Streamer::Streamer;
};

struct Ticker : rt::Capsule {
    using rt::Capsule::Capsule;
    int ticks = 0;

protected:
    void onInit() override { informEvery(0.01, "tick"); }
    void onMessage(const rt::Message& m) override {
        if (m.signal == rt::signal("tick")) ++ticks;
    }
};

/// A streamer whose event function crosses zero at x = 0 (falling from 1).
struct Decay : f::Streamer {
    using f::Streamer::Streamer;
    std::size_t stateSize() const override { return 1; }
    void initState(double, std::span<double> x) override { x[0] = 1.0; }
    void derivatives(double, std::span<const double>, std::span<double> dx) override {
        dx[0] = -2.0;
    }
    bool hasEvent() const override { return true; }
    double eventFunction(double, std::span<const double> x) const override { return x[0] - 0.5; }
    int events = 0;
    void onEvent(double, bool) override { ++events; }
};

struct MetricsOn : ::testing::Test {
    void SetUp() override {
#if !URTX_OBS
        GTEST_SKIP() << "observability compiled out (URTX_OBS=0)";
#endif
        obs::wellknown(); // eager registration — snapshots have a stable schema
        obs::Registry::global().reset();
        obs::setMetricsEnabled(true);
    }
    void TearDown() override {
        obs::setMetricsEnabled(false);
        obs::Registry::global().reset();
    }
};

} // namespace

TEST_F(MetricsOn, HybridRunPopulatesRuntimeMetrics) {
    sim::HybridSystem sys;
    Plain group{"plant"};
    c::Ramp u("u", &group, 1.0);
    c::Integrator xi("x", &group, 0.0);
    f::flow(u.out(), xi.in());
    Ticker cap{"cap"};
    sys.addCapsule(cap);
    sys.addStreamerGroup(group, s::makeIntegrator("RK4"), 0.01);
    sys.run(0.2);

    const obs::Snapshot snap = obs::Registry::global().snapshot();
    EXPECT_GE(snap.counter("rt.messages_dispatched")->value, 19u);
    EXPECT_GE(snap.counter("rt.timers_fired")->value, 19u);
    EXPECT_GE(snap.gauge("rt.queue_depth_hwm")->value, 1.0);
    EXPECT_GE(snap.counter("flow.solver_major_steps")->value, 20u);
    EXPECT_GE(snap.counter("flow.solver_minor_steps")->value, 20u);
    EXPECT_GE(snap.counter("flow.dport_transfers")->value, 1u);
    EXPECT_EQ(snap.counter("sim.grid_steps")->value, 20u);
    // The dispatch latency histogram saw every capsule message.
    const auto* lat = snap.histogram("rt.dispatch_latency_seconds.general");
    ASSERT_NE(lat, nullptr);
    EXPECT_GE(lat->count, 19u);
    EXPECT_GT(lat->sum, 0.0);
    const auto* step = snap.histogram("flow.solver_step_seconds");
    ASSERT_NE(step, nullptr);
    EXPECT_GE(step->count, 20u);
}

// Metrics + tracer on across the MultiThread deployment: controller thread,
// solver thread and engine thread all write telemetry concurrently. Run under
// -DURTX_SANITIZE=thread this is the data-race check for the whole layer.
TEST_F(MetricsOn, MultiThreadRunIsRaceFree) {
    obs::Tracer::global().clear();
    obs::Tracer::global().setEnabled(true);
    sim::HybridSystem sys;
    Plain group{"plant"};
    c::Ramp u("u", &group, 1.0);
    c::Integrator xi("x", &group, 0.0);
    f::flow(u.out(), xi.in());
    Ticker cap{"cap"};
    sys.addCapsule(cap);
    sys.addStreamerGroup(group, s::makeIntegrator("RK4"), 0.01);
    sys.run(0.1, sim::ExecutionMode::MultiThread);
    obs::Tracer::global().setEnabled(false);

    const obs::Snapshot snap = obs::Registry::global().snapshot();
    EXPECT_GE(snap.counter("rt.messages_dispatched")->value, 9u);
    EXPECT_GE(snap.counter("flow.solver_major_steps")->value, 10u);
    EXPECT_EQ(snap.counter("sim.grid_steps")->value, 10u);
    EXPECT_GT(obs::Tracer::global().eventCount(), 0u);
    obs::Tracer::global().clear();
}

TEST_F(MetricsOn, ZeroCrossingsAreCounted) {
    Plain top{"top"};
    Decay d("decay", &top);
    f::SolverRunner runner(top, s::makeIntegrator("RK4"), 0.05);
    runner.initialize(0.0);
    runner.advanceTo(1.0);
    EXPECT_EQ(d.events, 1);
    const obs::Snapshot snap = obs::Registry::global().snapshot();
    EXPECT_EQ(snap.counter("sim.zero_crossings")->value, 1u);
    EXPECT_GE(snap.counter("sim.zero_crossing_iterations")->value, 1u);
}

TEST_F(MetricsOn, SportTrafficIsCounted) {
    static rt::Protocol proto = [] {
        rt::Protocol q{"ObsPing"};
        q.out("ping").in("pong");
        return q;
    }();
    struct Echo : f::Streamer {
        using f::Streamer::Streamer;
        int got = 0;
        void onSignal(f::SPort&, const rt::Message&) override { ++got; }
    };
    Echo streamer{"s"};
    f::SPort sp(streamer, "ctl", proto, true);
    rt::Capsule cap{"cap"};
    rt::Port cp(cap, "p", proto, false);
    rt::connect(cp, sp.rtPort());
    cp.send("ping");
    cp.send("ping");
    EXPECT_EQ(sp.pending(), 2u);
    EXPECT_EQ(sp.inboxHighWater(), 2u);
    sp.drain();

    const obs::Snapshot snap = obs::Registry::global().snapshot();
    EXPECT_EQ(snap.counter("flow.sport_drained")->value, 2u);
    EXPECT_DOUBLE_EQ(snap.gauge("flow.sport_inbox_hwm")->value, 2.0);
}

TEST_F(MetricsOn, DisabledSwitchStopsAccumulation) {
    obs::setMetricsEnabled(false);
    rt::Controller ctl{"quiet"};
    Ticker cap{"cap"};
    ctl.attach(cap);
    ctl.initializeAll();
    auto* vc = ctl.virtualClock();
    ASSERT_NE(vc, nullptr);
    vc->advanceTo(0.05);
    ctl.dispatchAll();
    EXPECT_GT(cap.ticks, 0);
    const obs::Snapshot snap = obs::Registry::global().snapshot();
    EXPECT_EQ(snap.counter("rt.messages_dispatched")->value, 0u);
    EXPECT_EQ(snap.counter("rt.timers_fired")->value, 0u);
}

TEST_F(MetricsOn, TracerCapturesRuntimeSpans) {
    obs::Tracer::global().clear();
    obs::Tracer::global().setEnabled(true);
    sim::HybridSystem sys;
    Plain group{"plant"};
    c::Constant u("u", &group, 1.0);
    sys.addStreamerGroup(group, s::makeIntegrator("Euler"), 0.01);
    sys.run(0.1);
    obs::Tracer::global().setEnabled(false);

    bool sawGridStep = false, sawSolverStep = false;
    for (const auto& ev : obs::Tracer::global().collect()) {
        const std::string_view name = ev.name ? ev.name : "";
        if (name == "grid.step") sawGridStep = true;
        if (name == "solver.step") sawSolverStep = true;
    }
    EXPECT_TRUE(sawGridStep);
    EXPECT_TRUE(sawSolverStep);

    std::ostringstream os;
    obs::Tracer::global().writeChromeTrace(os);
    std::string err;
    EXPECT_TRUE(urtx::testjson::wellFormed(os.str(), &err)) << err;
    obs::Tracer::global().clear();
}
