#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "solver/zero_crossing.hpp"

namespace s = urtx::solver;

namespace {

/// Falling ball: h' = v, v' = -g.
s::FnOde ball() {
    return s::FnOde(2, [](double, const s::Vec& x, s::Vec& dx) {
        dx[0] = x[1];
        dx[1] = -9.81;
    });
}

} // namespace

TEST(ZeroCrossing, NoEventsMeansNoCrossing) {
    s::ZeroCrossingDetector det;
    s::Rk4Integrator m;
    auto sys = ball();
    s::Vec x0{10.0, 0.0}, x1{9.0, -1.0};
    s::Crossing c;
    EXPECT_FALSE(det.check(sys, m, 0.0, 0.1, x0, x1, c));
    EXPECT_EQ(det.eventCount(), 0u);
}

TEST(ZeroCrossing, DetectsAndLocalizesImpact) {
    // Ball from h=10, v=0: impact at t = sqrt(2h/g) ~ 1.42785.
    auto sys = ball();
    s::Rk4Integrator m;
    s::ZeroCrossingDetector det(1e-10);
    det.addEvent([](double, const s::Vec& x) { return x[0]; }, s::CrossingDir::Falling);

    s::Vec x{10.0, 0.0};
    det.prime(0.0, x);
    const double dt = 0.05;
    double t = 0;
    s::Crossing c{};
    bool found = false;
    for (int i = 0; i < 100 && !found; ++i) {
        s::Vec x0 = x;
        m.step(sys, t, dt, x);
        found = det.check(sys, m, t, dt, x0, x, c);
        if (found) break;
        t += dt;
    }
    ASSERT_TRUE(found);
    const double tImpact = std::sqrt(2.0 * 10.0 / 9.81);
    EXPECT_NEAR(c.t, tImpact, 1e-6);
    EXPECT_NEAR(c.state[0], 0.0, 1e-6);
    EXPECT_LT(c.state[1], 0.0) << "still falling at impact";
    EXPECT_FALSE(c.rising);
    EXPECT_EQ(c.index, 0u);
}

TEST(ZeroCrossing, RisingFilterIgnoresFalling) {
    auto sys = ball();
    s::Rk4Integrator m;
    s::ZeroCrossingDetector det;
    det.addEvent([](double, const s::Vec& x) { return x[0]; }, s::CrossingDir::Rising);
    s::Vec x{1.0, 0.0};
    det.prime(0.0, x);
    s::Crossing c{};
    double t = 0;
    bool found = false;
    for (int i = 0; i < 40; ++i) {
        s::Vec x0 = x;
        m.step(sys, t, 0.05, x);
        if (det.check(sys, m, t, 0.05, x0, x, c)) {
            found = true;
            break;
        }
        t += 0.05;
    }
    EXPECT_FALSE(found) << "falling crossing must not match a Rising filter";
}

TEST(ZeroCrossing, TimeBasedEventFires) {
    // Event on simulation time itself: g = t - 0.33.
    auto sys = s::FnOde(1, [](double, const s::Vec&, s::Vec& dx) { dx[0] = 1.0; });
    s::Rk4Integrator m;
    s::ZeroCrossingDetector det(1e-12);
    det.addEvent([](double t, const s::Vec&) { return t - 0.33; }, s::CrossingDir::Rising);
    s::Vec x{0.0};
    det.prime(0.0, x);
    s::Crossing c{};
    double t = 0;
    bool found = false;
    for (int i = 0; i < 10; ++i) {
        s::Vec x0 = x;
        m.step(sys, t, 0.1, x);
        if (det.check(sys, m, t, 0.1, x0, x, c)) {
            found = true;
            break;
        }
        t += 0.1;
    }
    ASSERT_TRUE(found);
    EXPECT_NEAR(c.t, 0.33, 1e-9);
    EXPECT_NEAR(c.state[0], 0.33, 1e-9);
    EXPECT_TRUE(c.rising);
}

TEST(ZeroCrossing, MultipleEventsReportEarliestFlagged) {
    auto sys = s::FnOde(1, [](double, const s::Vec&, s::Vec& dx) { dx[0] = 1.0; });
    s::Rk4Integrator m;
    s::ZeroCrossingDetector det(1e-12);
    det.addEvent([](double t, const s::Vec&) { return t - 0.2; });
    det.addEvent([](double t, const s::Vec&) { return t - 0.8; });
    s::Vec x{0.0};
    det.prime(0.0, x);
    s::Crossing c{};
    // Big step covering only the first event.
    s::Vec x0 = x;
    m.step(sys, 0.0, 0.5, x);
    ASSERT_TRUE(det.check(sys, m, 0.0, 0.5, x0, x, c));
    EXPECT_EQ(c.index, 0u);
    EXPECT_NEAR(c.t, 0.2, 1e-9);
}

TEST(ZeroCrossing, RelatchesAfterCrossing) {
    // After a detected crossing the detector must not re-report it.
    auto sys = s::FnOde(1, [](double, const s::Vec&, s::Vec& dx) { dx[0] = 1.0; });
    s::Rk4Integrator m;
    s::ZeroCrossingDetector det(1e-12);
    det.addEvent([](double t, const s::Vec&) { return t - 0.15; }, s::CrossingDir::Rising);
    s::Vec x{0.0};
    det.prime(0.0, x);
    s::Crossing c{};
    s::Vec x0 = x;
    m.step(sys, 0.0, 0.2, x);
    ASSERT_TRUE(det.check(sys, m, 0.0, 0.2, x0, x, c));
    // Continue from the crossing point.
    double t = c.t;
    x = c.state;
    for (int i = 0; i < 5; ++i) {
        x0 = x;
        m.step(sys, t, 0.2, x);
        EXPECT_FALSE(det.check(sys, m, t, 0.2, x0, x, c)) << "crossing re-reported at step " << i;
        t += 0.2;
    }
}

TEST(ZeroCrossing, SimultaneousCrossingsAllReported) {
    // Two identical surfaces cross at the same instant: both must be
    // delivered (regression: the re-latch used to swallow the second).
    auto sys = s::FnOde(1, [](double, const s::Vec&, s::Vec& dx) { dx[0] = 1.0; });
    s::Rk4Integrator m;
    s::ZeroCrossingDetector det(1e-12);
    det.addEvent([](double t, const s::Vec&) { return t - 0.25; }, s::CrossingDir::Rising);
    det.addEvent([](double t, const s::Vec&) { return t - 0.25; }, s::CrossingDir::Rising);
    det.addEvent([](double t, const s::Vec&) { return t - 0.8; }, s::CrossingDir::Rising);

    s::Vec x{0.0};
    det.prime(0.0, x);
    s::Vec x0 = x;
    m.step(sys, 0.0, 0.5, x);
    std::vector<s::Crossing> crossings;
    ASSERT_TRUE(det.checkAll(sys, m, 0.0, 0.5, x0, x, crossings));
    ASSERT_EQ(crossings.size(), 2u) << "both simultaneous events must be reported";
    EXPECT_EQ(crossings[0].index, 0u);
    EXPECT_EQ(crossings[1].index, 1u);
    EXPECT_NEAR(crossings[0].t, 0.25, 1e-9);
    EXPECT_DOUBLE_EQ(crossings[0].t, crossings[1].t);

    // The third (later) event stays pending and fires on a later check.
    double t = crossings[0].t;
    x = crossings[0].state;
    bool sawThird = false;
    for (int i = 0; i < 10 && !sawThird; ++i) {
        x0 = x;
        m.step(sys, t, 0.2, x);
        if (det.checkAll(sys, m, t, 0.2, x0, x, crossings)) {
            ASSERT_EQ(crossings.size(), 1u);
            EXPECT_EQ(crossings[0].index, 2u);
            EXPECT_NEAR(crossings[0].t, 0.8, 1e-9);
            sawThird = true;
            break;
        }
        t += 0.2;
    }
    EXPECT_TRUE(sawThird);
}

TEST(ZeroCrossing, StaggeredCrossingsKeepLaterOnePending) {
    // Two events in the SAME step but at different times: the earlier one
    // fires; the later one must not be lost when the caller truncates.
    auto sys = s::FnOde(1, [](double, const s::Vec&, s::Vec& dx) { dx[0] = 1.0; });
    s::Rk4Integrator m;
    s::ZeroCrossingDetector det(1e-12);
    det.addEvent([](double t, const s::Vec&) { return t - 0.2; }, s::CrossingDir::Rising);
    det.addEvent([](double t, const s::Vec&) { return t - 0.3; }, s::CrossingDir::Rising);
    s::Vec x{0.0};
    det.prime(0.0, x);
    s::Vec x0 = x;
    m.step(sys, 0.0, 0.5, x);
    std::vector<s::Crossing> crossings;
    ASSERT_TRUE(det.checkAll(sys, m, 0.0, 0.5, x0, x, crossings));
    ASSERT_EQ(crossings.size(), 1u);
    EXPECT_EQ(crossings[0].index, 0u);

    // Resume from the truncation point; the second event fires next.
    double t = crossings[0].t;
    x = crossings[0].state;
    x0 = x;
    m.step(sys, t, 0.5 - t, x);
    ASSERT_TRUE(det.checkAll(sys, m, t, 0.5 - t, x0, x, crossings));
    ASSERT_EQ(crossings.size(), 1u);
    EXPECT_EQ(crossings[0].index, 1u);
    EXPECT_NEAR(crossings[0].t, 0.3, 1e-9);
}
