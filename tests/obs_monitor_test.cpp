/// Tests for the real-time health layer: causal span propagation from emit
/// sites into the tracer, per-signal hop-latency accounting, deadline
/// monitors (with and without abortOnMiss) and the solver-grant watchdog.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>

#include "flow/flow.hpp"
#include "json_lint.hpp"
#include "obs/obs.hpp"
#include "rt/rt.hpp"

namespace obs = urtx::obs;
namespace rt = urtx::rt;
namespace f = urtx::flow;

namespace {

rt::Protocol& proto() {
    static rt::Protocol p = [] {
        rt::Protocol q{"Health"};
        q.out("req").in("rsp");
        return q;
    }();
    return p;
}

struct Echo : rt::Capsule {
    explicit Echo(std::string n) : rt::Capsule(std::move(n)), port(*this, "p", proto(), true) {}
    rt::Port port;
    std::uint64_t lastSpan = ~0ull;
    std::uint64_t lastEnqueue = ~0ull;

protected:
    void onMessage(const rt::Message& m) override {
        lastSpan = m.spanId;
        lastEnqueue = m.enqueueNanos;
        if (m.signal == rt::signal("req")) port.send("rsp");
    }
};

struct Client : rt::Capsule {
    explicit Client(std::string n)
        : rt::Capsule(std::move(n)), port(*this, "p", proto(), false) {}
    rt::Port port;
};

std::string readFile(const std::string& path) {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/// Every consumer off, metrics zeroed, recorder pointed at a throwaway path.
struct HealthTest : ::testing::Test {
    void SetUp() override {
#if !URTX_OBS
        GTEST_SKIP() << "observability compiled out (URTX_OBS=0)";
#endif
        obs::wellknown();
        obs::Registry::global().reset();
        obs::Monitor::global().clear();
        obs::Tracer::global().clear();
        obs::FlightRecorder::global().clear();
    }
    void TearDown() override {
        obs::Tracer::global().setEnabled(false);
        obs::Monitor::global().setEnabled(false);
        obs::FlightRecorder::global().setEnabled(false);
        obs::Watchdog::global().stop();
        obs::Monitor::global().clear();
        obs::Registry::global().reset();
    }
};

} // namespace

TEST_F(HealthTest, DisabledCausalLeavesMessagesUnstamped) {
    rt::Controller ctl{"ctl"};
    Client client{"client"};
    Echo echo{"echo"};
    rt::connect(client.port, echo.port);
    ctl.attach(client);
    ctl.attach(echo);
    client.port.send("req");
    ctl.dispatchAll();
    EXPECT_EQ(echo.lastSpan, 0u) << "no causal consumer enabled: span must stay 0";
    EXPECT_EQ(echo.lastEnqueue, 0u);
}

TEST_F(HealthTest, SpanIdsPropagateIntoTracerFlowEvents) {
    obs::Tracer::global().setEnabled(true);
    rt::Controller ctl{"ctl"};
    Client client{"client"};
    Echo echo{"echo"};
    rt::connect(client.port, echo.port);
    ctl.attach(client);
    ctl.attach(echo);
    client.port.send("req");
    ctl.dispatchAll();
    obs::Tracer::global().setEnabled(false);

    EXPECT_NE(echo.lastSpan, 0u) << "tracer enabled: messages must carry a span id";
    std::set<std::uint64_t> begins, ends;
    for (const auto& ev : obs::Tracer::global().collect()) {
        if (!ev.name || std::string(ev.name) != "req") continue;
        if (ev.phase == 's') begins.insert(ev.id);
        if (ev.phase == 'f') ends.insert(ev.id);
    }
    ASSERT_FALSE(begins.empty()) << "emit must record an 's' flow event named after the signal";
    ASSERT_FALSE(ends.empty()) << "handling must record the matching 'f' flow event";
    EXPECT_EQ(begins, ends) << "'s'/'f' pairs must agree on the span id for Perfetto arrows";
    EXPECT_NE(begins.count(echo.lastSpan), 0u);
}

TEST_F(HealthTest, FlowEventsSurviveChromeExport) {
    obs::Tracer::global().setEnabled(true);
    rt::Controller ctl{"ctl"};
    Client client{"client"};
    Echo echo{"echo"};
    rt::connect(client.port, echo.port);
    ctl.attach(client);
    ctl.attach(echo);
    client.port.send("req");
    ctl.dispatchAll();
    obs::Tracer::global().setEnabled(false);

    std::ostringstream os;
    obs::Tracer::global().writeChromeTrace(os);
    const std::string json = os.str();
    std::string err;
    ASSERT_TRUE(urtx::testjson::wellFormed(json, &err)) << err;
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
    EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos)
        << "'f' events must bind to the enclosing slice";
    EXPECT_NE(json.find("\"id\":\""), std::string::npos);
}

TEST_F(HealthTest, HopLatencyLandsInAggregateAndPerSignalHistograms) {
    obs::Monitor::global().setEnabled(true);
    rt::Controller ctl{"ctl"};
    Client client{"client"};
    Echo echo{"echo"};
    rt::connect(client.port, echo.port);
    ctl.attach(client);
    ctl.attach(echo);
    client.port.send("req");
    ctl.dispatchAll();
    obs::Monitor::global().setEnabled(false);

    const obs::Snapshot snap = obs::Registry::global().snapshot();
    const auto* agg = snap.histogram("rt.hop_latency_seconds");
    ASSERT_NE(agg, nullptr);
    EXPECT_GE(agg->count, 2u) << "req and rsp hops both measured";
    const auto* per = snap.histogram("rt.hop_latency_seconds.req");
    ASSERT_NE(per, nullptr) << "per-signal histogram auto-registered on first hop";
    EXPECT_GE(per->count, 1u);
    const auto* worst = snap.gauge("rt.hop_latency_worst_seconds.req");
    ASSERT_NE(worst, nullptr);
    EXPECT_GT(worst->value, 0.0);
    EXPECT_EQ(obs::Monitor::global().misses(), 0u) << "no deadline declared, no misses";
}

TEST_F(HealthTest, TimerFiresAreStampedAndMeasured) {
    obs::Monitor::global().setEnabled(true);
    rt::Controller ctl{"ctl"};
    Echo echo{"echo"};
    ctl.attach(echo);
    ctl.timers().informIn(echo, 0.0, 0.0, rt::signal("tick"));
    ctl.dispatchAll();
    obs::Monitor::global().setEnabled(false);

    EXPECT_NE(echo.lastSpan, 0u) << "timer-fired messages must carry spans too";
    const obs::Snapshot snap = obs::Registry::global().snapshot();
    const auto* per = snap.histogram("rt.hop_latency_seconds.tick");
    ASSERT_NE(per, nullptr);
    EXPECT_GE(per->count, 1u);
}

TEST_F(HealthTest, DeadlineMissBumpsCountersAndRunsCallback) {
    obs::Monitor::global().setEnabled(true);
    obs::DeadlineMiss seen{};
    std::atomic<int> calls{0};
    // Budget 0: any real hop latency is a miss.
    obs::Monitor::global().require(rt::signal("req"), "req", 0.0, false,
                                   [&](const obs::DeadlineMiss& m) {
                                       seen = m;
                                       ++calls;
                                   });
    rt::Controller ctl{"ctl"};
    Client client{"client"};
    Echo echo{"echo"};
    rt::connect(client.port, echo.port);
    ctl.attach(client);
    ctl.attach(echo);
    client.port.send("req");
    ctl.dispatchAll();
    obs::Monitor::global().setEnabled(false);

    EXPECT_GE(obs::Monitor::global().misses(), 1u);
    const obs::Snapshot snap = obs::Registry::global().snapshot();
    const auto* miss = snap.counter("rt.deadline_miss.req");
    ASSERT_NE(miss, nullptr);
    EXPECT_GE(miss->value, 1u);
    ASSERT_GE(calls.load(), 1);
    EXPECT_STREQ(seen.name, "req");
    EXPECT_STREQ(seen.site, "dispatch");
    EXPECT_NE(seen.spanId, 0u);
    EXPECT_GT(seen.latencySeconds, 0.0);
    EXPECT_EQ(seen.budgetSeconds, 0.0);
}

TEST_F(HealthTest, GenerousBudgetDoesNotMiss) {
    obs::Monitor::global().setEnabled(true);
    obs::Monitor::global().require(rt::signal("req"), "req", 10.0);
    rt::Controller ctl{"ctl"};
    Client client{"client"};
    Echo echo{"echo"};
    rt::connect(client.port, echo.port);
    ctl.attach(client);
    ctl.attach(echo);
    client.port.send("req");
    ctl.dispatchAll();
    obs::Monitor::global().setEnabled(false);
    EXPECT_EQ(obs::Monitor::global().misses(), 0u);
}

TEST_F(HealthTest, AbortOnMissDumpsParseableCausalChain) {
    const std::string path = "/tmp/urtx_monitor_abort_dump.json";
    std::remove(path.c_str());
    obs::FlightRecorder::global().setDumpPath(path);
    obs::FlightRecorder::global().setEnabled(true);
    obs::Monitor::global().setEnabled(true);
    obs::Monitor::global().require(rt::signal("req"), "req", 0.0, /*abortOnMiss=*/true);

    rt::Controller ctl{"ctl"};
    Client client{"client"};
    Echo echo{"echo"};
    rt::connect(client.port, echo.port);
    ctl.attach(client);
    ctl.attach(echo);
    client.port.send("req");
    ctl.dispatchAll();
    obs::Monitor::global().setEnabled(false);
    obs::FlightRecorder::global().setEnabled(false);

    EXPECT_EQ(obs::FlightRecorder::global().lastDumpPath(), path);
    const std::string dump = readFile(path);
    ASSERT_FALSE(dump.empty()) << "abortOnMiss must write the post-mortem file";
    std::string err;
    ASSERT_TRUE(urtx::testjson::wellFormed(dump, &err)) << err;
    EXPECT_NE(dump.find("deadline miss: signal 'req'"), std::string::npos);
    EXPECT_NE(dump.find("DEADLINE MISS req at dispatch"), std::string::npos);
    // The causal chain: the emit and handle notes of the late message share
    // its span id with the miss note.
    const auto emitAt = dump.find("emit req #");
    ASSERT_NE(emitAt, std::string::npos);
    const std::string span = dump.substr(emitAt + 10, dump.find_first_not_of(
                                                          "0123456789", emitAt + 10) -
                                                          (emitAt + 10));
    EXPECT_NE(dump.find("handle req #" + span), std::string::npos)
        << "dump must contain the handle event of span " << span;
    EXPECT_NE(dump.find("\"metrics\":"), std::string::npos);
}

TEST_F(HealthTest, WatchdogFlagsStalledGrantAndDumps) {
    const std::string path = "/tmp/urtx_watchdog_dump.json";
    std::remove(path.c_str());
    obs::FlightRecorder::global().setDumpPath(path);
    obs::FlightRecorder::global().setEnabled(true);

    obs::Watchdog& dog = obs::Watchdog::global();
    const std::uint64_t stalls0 = dog.stalls();
    std::atomic<int> barks{0};
    dog.setCallback([&](double) { ++barks; });
    dog.setBudget(0.005);
    dog.start();
    EXPECT_TRUE(dog.running());
    EXPECT_TRUE(obs::causalBit(obs::kCausalWatchdog)) << "start() must arm the pool hooks";

    dog.grantBegan(); // simulate a SolverPool grant that never completes
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (dog.stalls() == stalls0 && std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    dog.grantEnded();
    dog.stop();
    dog.setCallback({});
    dog.setBudget(0.0);
    obs::FlightRecorder::global().setEnabled(false);

    EXPECT_GE(dog.stalls(), stalls0 + 1) << "stalled grant must be flagged within 5s";
    EXPECT_GE(barks.load(), 1);
    EXPECT_FALSE(dog.running());
    const obs::Snapshot snap = obs::Registry::global().snapshot();
    const auto* stalls = snap.counter("sim.solver_grant_stalls");
    ASSERT_NE(stalls, nullptr);
    EXPECT_GE(stalls->value, 1u);
    const std::string dump = readFile(path);
    ASSERT_FALSE(dump.empty());
    std::string err;
    ASSERT_TRUE(urtx::testjson::wellFormed(dump, &err)) << err;
    EXPECT_NE(dump.find("SOLVER STALL"), std::string::npos);
    EXPECT_NE(dump.find("solver grant stalled"), std::string::npos);
}

TEST_F(HealthTest, SportDrainChecksStreamerSideDeadlines) {
    // Capsule -> SPort -> streamer: the handling site is SPort::drain.
    struct Sink : f::Streamer {
        using f::Streamer::Streamer;
        std::uint64_t got = 0;
        void onSignal(f::SPort&, const rt::Message&) override { ++got; }
    };
    obs::Monitor::global().setEnabled(true);
    obs::DeadlineMiss seen{};
    obs::Monitor::global().require(rt::signal("req"), "req", 0.0, false,
                                   [&](const obs::DeadlineMiss& m) { seen = m; });

    Sink streamer{"sink"};
    f::SPort sp(streamer, "ctl", proto(), true);
    rt::Capsule cap{"cap"};
    rt::Port cp(cap, "p", proto(), false);
    rt::connect(cp, sp.rtPort());
    cp.send("req");
    sp.drain();
    obs::Monitor::global().setEnabled(false);

    EXPECT_EQ(streamer.got, 1u);
    EXPECT_GE(obs::Monitor::global().misses(), 1u);
    EXPECT_STREQ(seen.site, "sport.drain");
    EXPECT_NE(seen.spanId, 0u);
}
