#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "solver/difference.hpp"

namespace s = urtx::solver;

TEST(Difference, PureGainHasNoState) {
    s::DifferenceEquation eq({2.5}, {1.0});
    EXPECT_EQ(eq.order(), 0u);
    EXPECT_DOUBLE_EQ(eq.step(2.0), 5.0);
    EXPECT_DOUBLE_EQ(eq.step(-1.0), -2.5);
}

TEST(Difference, NormalizationByA0) {
    // 2 y[n] = 4 u[n]  ==  y[n] = 2 u[n].
    s::DifferenceEquation eq({4.0}, {2.0});
    EXPECT_DOUBLE_EQ(eq.step(1.0), 2.0);
}

TEST(Difference, RejectsBadCoefficients) {
    EXPECT_THROW(s::DifferenceEquation({}, {1.0}), std::invalid_argument);
    EXPECT_THROW(s::DifferenceEquation({1.0}, {}), std::invalid_argument);
    EXPECT_THROW(s::DifferenceEquation({1.0}, {0.0, 1.0}), std::invalid_argument);
}

TEST(Difference, DiscreteIntegratorAccumulates) {
    auto eq = s::makeDiscreteIntegrator(0.5);
    EXPECT_DOUBLE_EQ(eq.step(1.0), 0.5);
    EXPECT_DOUBLE_EQ(eq.step(1.0), 1.0);
    EXPECT_DOUBLE_EQ(eq.step(2.0), 2.0);
}

TEST(Difference, LowPassConvergesToStepInput) {
    auto lp = s::makeLowPass(0.2);
    double y = 0;
    for (int i = 0; i < 200; ++i) y = lp.step(1.0);
    EXPECT_NEAR(y, 1.0, 1e-9);
}

TEST(Difference, LowPassFirstSampleMatchesAlpha) {
    auto lp = s::makeLowPass(0.25);
    EXPECT_NEAR(lp.step(1.0), 0.25, 1e-12);
    EXPECT_NEAR(lp.step(1.0), 0.25 + 0.75 * 0.25, 1e-12);
}

TEST(Difference, MovingAverageWindow) {
    auto ma = s::makeMovingAverage(4);
    EXPECT_DOUBLE_EQ(ma.step(4.0), 1.0);
    EXPECT_DOUBLE_EQ(ma.step(4.0), 2.0);
    EXPECT_DOUBLE_EQ(ma.step(4.0), 3.0);
    EXPECT_DOUBLE_EQ(ma.step(4.0), 4.0);
    EXPECT_DOUBLE_EQ(ma.step(4.0), 4.0) << "window full: steady state";
    EXPECT_THROW(s::makeMovingAverage(0), std::invalid_argument);
}

TEST(Difference, ResetClearsStateKeepsCoefficients) {
    auto eq = s::makeDiscreteIntegrator(1.0);
    eq.step(5.0);
    EXPECT_EQ(eq.samples(), 1u);
    eq.reset();
    EXPECT_EQ(eq.samples(), 0u);
    EXPECT_DOUBLE_EQ(eq.step(1.0), 1.0) << "integrator state must be cleared";
}

TEST(Difference, FirstOrderRecursionMatchesClosedForm) {
    // y[n] = 0.5 y[n-1] + u[n] with unit step: y[n] = 2 (1 - 0.5^{n+1}).
    s::DifferenceEquation eq({1.0}, {1.0, -0.5});
    for (int n = 0; n < 20; ++n) {
        const double expected = 2.0 * (1.0 - std::pow(0.5, n + 1));
        EXPECT_NEAR(eq.step(1.0), expected, 1e-12) << "n=" << n;
    }
}

TEST(Difference, SecondOrderImpulseResponse) {
    // H(z) = 1 / (1 - 1.1 z^-1 + 0.3 z^-2); impulse response via recursion
    // y[n] = 1.1 y[n-1] - 0.3 y[n-2] + delta[n].
    s::DifferenceEquation eq({1.0}, {1.0, -1.1, 0.3});
    std::vector<double> y;
    y.push_back(eq.step(1.0));
    for (int i = 0; i < 10; ++i) y.push_back(eq.step(0.0));
    std::vector<double> ref{1.0};
    double y1 = 1.0, y2 = 0.0;
    for (int i = 0; i < 10; ++i) {
        const double v = 1.1 * y1 - 0.3 * y2;
        ref.push_back(v);
        y2 = y1;
        y1 = v;
    }
    for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(y[i], ref[i], 1e-12) << "n=" << i;
}

TEST(Difference, FirTransferFunctionDelaysInput) {
    // y[n] = u[n-2].
    s::DifferenceEquation eq({0.0, 0.0, 1.0}, {1.0});
    EXPECT_DOUBLE_EQ(eq.step(7.0), 0.0);
    EXPECT_DOUBLE_EQ(eq.step(8.0), 0.0);
    EXPECT_DOUBLE_EQ(eq.step(9.0), 7.0);
    EXPECT_DOUBLE_EQ(eq.step(0.0), 8.0);
    EXPECT_DOUBLE_EQ(eq.step(0.0), 9.0);
}
