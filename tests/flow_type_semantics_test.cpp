/// \file flow_type_semantics_test.cpp
/// Semantic property tests for flow-type projections: a projected transfer
/// must move *fields by name* and *elements by index* — randomized over
/// generated type pairs and values.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "flow/flow_type.hpp"

namespace f = urtx::flow;
using FT = f::FlowType;

namespace {

/// Generate a random record type over a fixed field-name universe; each
/// field is scalar or a small vector.
FT randomRecord(std::mt19937& rng, int minFields) {
    static const char* kNames[] = {"a", "b", "c", "d", "e", "f"};
    std::vector<int> idx{0, 1, 2, 3, 4, 5};
    std::shuffle(idx.begin(), idx.end(), rng);
    std::uniform_int_distribution<int> extra(0, 2);
    const int n = minFields + extra(rng);
    std::vector<FT::Field> fields;
    std::uniform_int_distribution<int> kind(0, 2);
    for (int i = 0; i < n && i < 6; ++i) {
        switch (kind(rng)) {
            case 0: fields.push_back({kNames[idx[static_cast<std::size_t>(i)]], FT::real()}); break;
            case 1: fields.push_back({kNames[idx[static_cast<std::size_t>(i)]], FT::integer()}); break;
            default:
                fields.push_back(
                    {kNames[idx[static_cast<std::size_t>(i)]], FT::vector(FT::real(), 2)});
        }
    }
    return FT::record(std::move(fields));
}

/// A sub-record of `big`: pick a subset of its fields, shuffled.
FT subRecordOf(const FT& big, std::mt19937& rng) {
    std::vector<FT::Field> fields(big.fields().begin(), big.fields().end());
    std::shuffle(fields.begin(), fields.end(), rng);
    std::uniform_int_distribution<std::size_t> count(1, fields.size());
    fields.resize(count(rng));
    return FT::record(std::move(fields));
}

} // namespace

class ProjectionSemantics : public ::testing::TestWithParam<unsigned> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ProjectionSemantics,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u, 88u));

TEST_P(ProjectionSemantics, FieldsTravelByName) {
    std::mt19937 rng(GetParam());
    for (int trial = 0; trial < 20; ++trial) {
        const FT out = randomRecord(rng, 3);
        const FT in = subRecordOf(out, rng);
        ASSERT_TRUE(out.subsetOf(in)) << out.toString() << " vs " << in.toString();

        const auto proj = FT::projection(out, in);
        ASSERT_TRUE(proj.has_value());

        // Fill the source buffer with slot indices as values.
        std::vector<double> src(out.width());
        for (std::size_t i = 0; i < src.size(); ++i) src[i] = static_cast<double>(i) + 100.0;
        std::vector<double> dst(in.width());
        for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = src[(*proj)[i]];

        // Check: for every field of `in`, the transferred values equal the
        // source values at that field's offset in `out`.
        std::size_t dstOff = 0;
        for (const auto& field : in.fields()) {
            const auto srcOff = out.fieldOffset(field.name);
            ASSERT_TRUE(srcOff.has_value()) << field.name;
            for (std::size_t k = 0; k < field.type.width(); ++k) {
                EXPECT_EQ(dst[dstOff + k], src[*srcOff + k])
                    << "field '" << field.name << "' slot " << k << " (types "
                    << out.toString() << " -> " << in.toString() << ")";
            }
            dstOff += field.type.width();
        }
    }
}

TEST_P(ProjectionSemantics, SubsetIsAntisymmetricUpToPermutation) {
    std::mt19937 rng(GetParam() * 7919u);
    for (int trial = 0; trial < 20; ++trial) {
        const FT a = randomRecord(rng, 2);
        const FT b = subRecordOf(a, rng);
        if (a.subsetOf(b) && b.subsetOf(a)) {
            // Mutual subset => same field multiset (name + type).
            ASSERT_EQ(a.fields().size(), b.fields().size());
            for (const auto& field : a.fields()) {
                const FT* other = b.fieldType(field.name);
                ASSERT_NE(other, nullptr) << field.name;
                EXPECT_TRUE(field.type.equals(*other));
            }
        }
    }
}

TEST_P(ProjectionSemantics, WideningPreservesValueThroughIntSlots) {
    // Int ⊆ Real: integer-valued payloads survive widening transfers.
    std::mt19937 rng(GetParam() * 104729u);
    std::uniform_int_distribution<int> v(-1000, 1000);
    const FT out = FT::record({{"x", FT::integer()}, {"y", FT::integer()}});
    const FT in = FT::record({{"y", FT::real()}});
    const auto proj = FT::projection(out, in);
    ASSERT_TRUE(proj.has_value());
    for (int trial = 0; trial < 50; ++trial) {
        const double y = v(rng);
        const std::vector<double> src{static_cast<double>(v(rng)), y};
        EXPECT_EQ(src[(*proj)[0]], y);
    }
}
