/// \file codegen_wire_test.cpp
/// Tests for the descriptor-driven wire-protocol generator: a malformed
/// Protocol must throw std::invalid_argument before any code is emitted,
/// and the serving protocol's generated header must carry the structures
/// the daemon/client compile against.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "codegen/wire_gen.hpp"
#include "codegen/wire_schema.hpp"

namespace cw = urtx::codegen::wire;

namespace {

cw::Protocol minimalProtocol() {
    cw::Protocol p;
    p.ns = "test::wiregen";
    p.magic = "TST0";
    p.frames = {{"Job", 1, ""}};
    p.messages = {{"Msg", {{"value", cw::FieldKind::U64, 1, "", ""}}, ""}};
    return p;
}

} // namespace

TEST(CodegenWireTest, ServingProtocolGeneratesTheExpectedSurface) {
    const std::string header = cw::generateWireHeader(cw::servingProtocol());
    // The pieces every speaker of the protocol compiles against.
    EXPECT_NE(header.find("namespace urtx::srv::wiregen {"), std::string::npos);
    EXPECT_NE(header.find("inline constexpr char kMagic[5] = \"URTX\";"),
              std::string::npos);
    EXPECT_NE(header.find("enum class FrameType : std::uint8_t {"),
              std::string::npos);
    EXPECT_NE(header.find("struct WireJob {"), std::string::npos);
    EXPECT_NE(header.find("struct WireResult {"), std::string::npos);
    EXPECT_NE(header.find("struct Cursor {"), std::string::npos);
    // Encoders and bounds-checked decoders are emitted per message.
    EXPECT_NE(header.find("static bool decode(WireJob& out"), std::string::npos);
    EXPECT_NE(header.find("static bool decode(WireResult& out"), std::string::npos);
    // Maps are guarded against hostile counts in generated code.
    EXPECT_NE(header.find("map count exceeds payload"), std::string::npos);
    EXPECT_NE(header.find("unknown field tag"), std::string::npos);
}

TEST(CodegenWireTest, GeneratedHeaderIsDeterministic) {
    EXPECT_EQ(cw::generateWireHeader(cw::servingProtocol()),
              cw::generateWireHeader(cw::servingProtocol()));
}

TEST(CodegenWireTest, MagicMustBeExactlyFourBytes) {
    cw::Protocol p = minimalProtocol();
    p.magic = "TOOLONG";
    EXPECT_THROW(cw::generateWireHeader(p), std::invalid_argument);
    p.magic = "abc";
    EXPECT_THROW(cw::generateWireHeader(p), std::invalid_argument);
}

TEST(CodegenWireTest, NamespaceIsRequired) {
    cw::Protocol p = minimalProtocol();
    p.ns.clear();
    EXPECT_THROW(cw::generateWireHeader(p), std::invalid_argument);
}

TEST(CodegenWireTest, DuplicateFrameIdsAreRejected) {
    cw::Protocol p = minimalProtocol();
    p.frames.push_back({"Result", 1, ""});
    EXPECT_THROW(cw::generateWireHeader(p), std::invalid_argument);
}

TEST(CodegenWireTest, ZeroFrameIdIsRejected) {
    cw::Protocol p = minimalProtocol();
    p.frames = {{"Job", 0, ""}};
    EXPECT_THROW(cw::generateWireHeader(p), std::invalid_argument);
}

TEST(CodegenWireTest, DuplicateFieldTagsAreRejected) {
    cw::Protocol p = minimalProtocol();
    p.messages[0].fields.push_back({"other", cw::FieldKind::Str, 1, "", ""});
    EXPECT_THROW(cw::generateWireHeader(p), std::invalid_argument);
}

TEST(CodegenWireTest, ZeroFieldTagIsRejected) {
    cw::Protocol p = minimalProtocol();
    p.messages[0].fields[0].id = 0;
    EXPECT_THROW(cw::generateWireHeader(p), std::invalid_argument);
}

TEST(CodegenWireTest, FieldKindsSpellTheRightCppTypes) {
    EXPECT_STREQ(cw::cppType(cw::FieldKind::U8), "std::uint8_t");
    EXPECT_STREQ(cw::cppType(cw::FieldKind::U64), "std::uint64_t");
    EXPECT_STREQ(cw::cppType(cw::FieldKind::F64), "double");
    EXPECT_STREQ(cw::cppType(cw::FieldKind::Bool), "bool");
    EXPECT_STREQ(cw::cppType(cw::FieldKind::Str), "std::string");
    EXPECT_STREQ(cw::cppType(cw::FieldKind::NumMap),
                 "std::map<std::string, double>");
    EXPECT_STREQ(cw::cppType(cw::FieldKind::StrMap),
                 "std::map<std::string, std::string>");
}
