#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "flow/channel.hpp"

namespace f = urtx::flow;

TEST(SpscRing, StartsEmpty) {
    f::SpscRing<int> ring(8);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_FALSE(ring.pop().has_value());
}

TEST(SpscRing, PushPopRoundTrip) {
    f::SpscRing<int> ring(4);
    EXPECT_TRUE(ring.push(1));
    EXPECT_TRUE(ring.push(2));
    EXPECT_EQ(ring.size(), 2u);
    EXPECT_EQ(ring.pop().value(), 1);
    EXPECT_EQ(ring.pop().value(), 2);
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, FullRingRejectsPush) {
    f::SpscRing<int> ring(3); // rounds to capacity 3 usable slots (cap 4)
    std::size_t pushed = 0;
    while (ring.push(static_cast<int>(pushed))) ++pushed;
    EXPECT_EQ(pushed, ring.capacity());
    EXPECT_FALSE(ring.push(99));
    EXPECT_EQ(ring.pop().value(), 0);
    EXPECT_TRUE(ring.push(99)) << "slot freed by pop";
}

TEST(SpscRing, WrapAroundPreservesFifo) {
    f::SpscRing<int> ring(4);
    for (int round = 0; round < 10; ++round) {
        EXPECT_TRUE(ring.push(2 * round));
        EXPECT_TRUE(ring.push(2 * round + 1));
        EXPECT_EQ(ring.pop().value(), 2 * round);
        EXPECT_EQ(ring.pop().value(), 2 * round + 1);
    }
}

TEST(SpscRing, CrossThreadStreamIsLossless) {
    constexpr int kN = 100000;
    f::SpscRing<int> ring(1024);
    std::thread producer([&] {
        for (int i = 0; i < kN;) {
            if (ring.push(i)) ++i;
        }
    });
    long long sum = 0;
    int received = 0;
    while (received < kN) {
        if (auto v = ring.pop()) {
            EXPECT_EQ(*v, received) << "FIFO order violated";
            sum += *v;
            ++received;
        }
    }
    producer.join();
    EXPECT_EQ(sum, static_cast<long long>(kN) * (kN - 1) / 2);
}

TEST(BlockingChannel, TryPopOnEmpty) {
    f::BlockingChannel<int> ch;
    EXPECT_FALSE(ch.tryPop().has_value());
    EXPECT_EQ(ch.size(), 0u);
}

TEST(BlockingChannel, FifoOrder) {
    f::BlockingChannel<int> ch;
    ch.push(1);
    ch.push(2);
    ch.push(3);
    EXPECT_EQ(ch.tryPop().value(), 1);
    EXPECT_EQ(ch.tryPop().value(), 2);
    EXPECT_EQ(ch.tryPop().value(), 3);
}

TEST(BlockingChannel, WaitPopBlocksUntilPush) {
    f::BlockingChannel<int> ch;
    std::thread producer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        ch.push(42);
    });
    EXPECT_EQ(ch.waitPop().value(), 42);
    producer.join();
}

TEST(BlockingChannel, CloseReleasesWaiters) {
    f::BlockingChannel<int> ch;
    std::thread consumer([&] { EXPECT_FALSE(ch.waitPop().has_value()); });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ch.close();
    consumer.join();
}

TEST(BlockingChannel, MultiProducerLosesNothing) {
    f::BlockingChannel<int> ch;
    constexpr int kThreads = 4, kPer = 2500;
    std::vector<std::thread> producers;
    for (int t = 0; t < kThreads; ++t) {
        producers.emplace_back([&] {
            for (int i = 0; i < kPer; ++i) ch.push(1);
        });
    }
    for (auto& t : producers) t.join();
    int total = 0;
    while (auto v = ch.tryPop()) total += *v;
    EXPECT_EQ(total, kThreads * kPer);
}
