#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "rt/capsule.hpp"
#include "rt/controller.hpp"
#include "rt/port.hpp"

namespace rt = urtx::rt;

namespace {

rt::Protocol& pingProto() {
    static rt::Protocol p = [] {
        rt::Protocol q{"PingCtl"};
        q.out("ping").in("pong");
        return q;
    }();
    return p;
}

struct Counter : rt::Capsule {
    using rt::Capsule::Capsule;
    std::atomic<int> got{0};

protected:
    void onMessage(const rt::Message&) override { ++got; }
};

rt::Message to(rt::Capsule& c, const char* sig) {
    rt::Message m(rt::signal(sig));
    m.receiver = &c;
    return m;
}

} // namespace

TEST(Controller, SteppedDispatchDeliversInOrder) {
    rt::Controller ctl{"main"};
    Counter cap{"cap"};
    ctl.attach(cap);
    ctl.post(to(cap, "a"));
    ctl.post(to(cap, "b"));
    EXPECT_TRUE(ctl.dispatchOne());
    EXPECT_EQ(cap.got, 1);
    EXPECT_EQ(ctl.dispatchAll(), 1u);
    EXPECT_EQ(cap.got, 2);
    EXPECT_FALSE(ctl.dispatchOne());
    EXPECT_EQ(ctl.dispatched(), 2u);
}

TEST(Controller, PostWithoutReceiverThrows) {
    rt::Controller ctl{"main"};
    EXPECT_THROW(ctl.post(rt::Message(rt::signal("x"))), std::logic_error);
}

TEST(Controller, AttachSetsContextRecursively) {
    rt::Controller ctl{"main"};
    rt::Capsule sys{"sys"};
    rt::Capsule kid{"kid", &sys};
    ctl.attach(sys);
    EXPECT_EQ(kid.context(), &ctl);
    ASSERT_EQ(ctl.roots().size(), 1u);
    EXPECT_EQ(ctl.roots()[0], &sys);
}

TEST(Controller, InitializeAllInitializesRoots) {
    rt::Controller ctl{"main"};
    rt::Capsule sys{"sys"};
    ctl.attach(sys);
    ctl.initializeAll();
    EXPECT_TRUE(sys.initialized());
}

TEST(Controller, VirtualClockTimersFireOnAdvance) {
    rt::Controller ctl{"main"};
    Counter cap{"cap"};
    ctl.attach(cap);
    cap.informIn(2.0, "tick");
    EXPECT_EQ(ctl.dispatchAll(), 0u) << "not due yet";
    ctl.virtualClock()->advanceTo(2.0);
    EXPECT_EQ(ctl.dispatchAll(), 1u);
    EXPECT_EQ(cap.got, 1);
}

TEST(Controller, PeriodicTimerAccumulates) {
    rt::Controller ctl{"main"};
    Counter cap{"cap"};
    ctl.attach(cap);
    cap.informEvery(1.0, "tick");
    ctl.virtualClock()->advanceTo(5.0);
    EXPECT_EQ(ctl.dispatchAll(), 5u);
    EXPECT_EQ(cap.got, 5);
}

TEST(Controller, NowTracksVirtualClock) {
    rt::Controller ctl{"main"};
    Counter cap{"cap"};
    ctl.attach(cap);
    EXPECT_DOUBLE_EQ(cap.now(), 0.0);
    ctl.virtualClock()->advanceTo(3.5);
    EXPECT_DOUBLE_EQ(cap.now(), 3.5);
}

TEST(Controller, CancelledTimerNeverDelivers) {
    rt::Controller ctl{"main"};
    Counter cap{"cap"};
    ctl.attach(cap);
    auto id = cap.informIn(1.0, "tick");
    EXPECT_TRUE(cap.cancelTimer(id));
    ctl.virtualClock()->advanceTo(2.0);
    EXPECT_EQ(ctl.dispatchAll(), 0u);
}

TEST(Controller, ThreadedModeDeliversCrossThread) {
    rt::Controller ctl{"worker"};
    Counter cap{"cap"};
    ctl.attach(cap);
    ctl.initializeAll();
    ctl.start();
    EXPECT_TRUE(ctl.running());
    for (int i = 0; i < 100; ++i) ctl.post(to(cap, "m"));
    // Wait for delivery.
    for (int spin = 0; spin < 500 && cap.got.load() < 100; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(cap.got.load(), 100);
    ctl.stop();
    EXPECT_FALSE(ctl.running());
}

TEST(Controller, StopDrainsPendingMessages) {
    rt::Controller ctl{"worker"};
    Counter cap{"cap"};
    ctl.attach(cap);
    ctl.start();
    for (int i = 0; i < 50; ++i) ctl.post(to(cap, "m"));
    ctl.stop();
    EXPECT_EQ(cap.got.load(), 50) << "stop() must drain the queue";
}

TEST(Controller, StartIsIdempotent) {
    rt::Controller ctl{"worker"};
    Counter cap{"cap"};
    ctl.attach(cap);
    ctl.start();
    ctl.start();
    ctl.post(to(cap, "m"));
    ctl.stop();
    EXPECT_EQ(cap.got.load(), 1);
}

TEST(Controller, RealClockTimerFiresInThreadedMode) {
    auto clk = std::make_shared<rt::RealClock>();
    rt::Controller ctl{"worker", clk};
    Counter cap{"cap"};
    ctl.attach(cap);
    ctl.start();
    cap.informIn(0.02, "tick"); // 20 ms
    for (int spin = 0; spin < 500 && cap.got.load() < 1; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ctl.stop();
    EXPECT_EQ(cap.got.load(), 1);
}

TEST(Controller, TwoControllersTalkThroughPorts) {
    // The paper's deployment: peers on different threads communicate only
    // via messages.
    struct Echo : rt::Capsule {
        Echo(std::string n) : rt::Capsule(std::move(n)), port(*this, "p", pingProto(), true) {}
        rt::Port port;
        std::atomic<int> got{0};

    protected:
        void onMessage(const rt::Message& m) override {
            ++got;
            if (m.signal == rt::signal("ping")) port.send("pong");
        }
    };
    struct Client : rt::Capsule {
        Client(std::string n) : rt::Capsule(std::move(n)), port(*this, "p", pingProto(), false) {}
        rt::Port port;
        std::atomic<int> pongs{0};

    protected:
        void onMessage(const rt::Message& m) override {
            if (m.signal == rt::signal("pong")) ++pongs;
        }
    };

    rt::Controller c1{"c1"}, c2{"c2"};
    Client client{"client"};
    Echo echo{"echo"};
    rt::connect(client.port, echo.port);
    c1.attach(client);
    c2.attach(echo);
    c1.start();
    c2.start();
    constexpr int kPings = 200;
    for (int i = 0; i < kPings; ++i) client.port.send("ping");
    for (int spin = 0; spin < 2000 && client.pongs.load() < kPings; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    c1.stop();
    c2.stop();
    EXPECT_EQ(echo.got.load(), kPings);
    EXPECT_EQ(client.pongs.load(), kPings);
}

TEST(Controller, DispatchingFlagRaisedOnlyInsideHandlers) {
    rt::Controller ctl{"main"};
    struct Probe : rt::Capsule {
        using rt::Capsule::Capsule;
        bool sawFlag = false;

    protected:
        void onMessage(const rt::Message&) override { sawFlag = context()->dispatching(); }
    } cap{"probe"};
    ctl.attach(cap);
    EXPECT_FALSE(ctl.dispatching());
    ctl.post(to(cap, "m"));
    ctl.dispatchAll();
    EXPECT_TRUE(cap.sawFlag) << "flag must be visible from inside a handler";
    EXPECT_FALSE(ctl.dispatching()) << "flag must clear after the handler returns";
}
