/// \file srv_ring_test.cpp
/// Consistent-hash ring properties the fleet router's cache-affinity story
/// rests on: shard loads stay balanced (virtual nodes smooth the split),
/// and removing one of N backends remaps only that backend's ~1/N of the
/// keyspace — every other key keeps its owner, so the surviving shards'
/// caches stay hot across a rebalance.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "srv/router/ring.hpp"

using urtx::srv::router::HashRing;
using urtx::srv::router::mix64;

namespace {

constexpr std::size_t kKeys = 40000;

std::vector<std::string> makeIds(std::size_t n) {
    std::vector<std::string> ids;
    ids.reserve(n);
    for (std::size_t i = 0; i < n; ++i) ids.push_back("shard" + std::to_string(i));
    return ids;
}

/// Keys in the router are 64-bit FNV-1a warm keys; a mixed counter is a
/// fair stand-in for that distribution.
std::uint64_t key(std::size_t i) { return mix64(0x51ed0badull + i); }

std::map<std::string, std::size_t> loads(const HashRing& ring) {
    std::map<std::string, std::size_t> counts;
    for (const std::string& id : ring.backends()) counts[id] = 0;
    for (std::size_t i = 0; i < kKeys; ++i) {
        const std::string* owner = ring.owner(key(i));
        if (owner == nullptr) {
            ADD_FAILURE() << "empty ring";
            break;
        }
        counts[*owner]++;
    }
    return counts;
}

double maxMinRatio(const std::map<std::string, std::size_t>& counts) {
    std::size_t mn = SIZE_MAX, mx = 0;
    for (const auto& [id, n] : counts) {
        mn = std::min(mn, n);
        mx = std::max(mx, n);
    }
    return mn == 0 ? 1e9 : static_cast<double>(mx) / static_cast<double>(mn);
}

} // namespace

TEST(HashRing, EmptyRingHasNoOwner) {
    HashRing ring(64);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.owner(123), nullptr);
    EXPECT_EQ(ring.successor(123, "x"), nullptr);
    EXPECT_EQ(ring.backendCount(), 0u);
}

TEST(HashRing, AddRemoveContains) {
    HashRing ring(8);
    ring.add("a");
    ring.add("b");
    ring.add("a"); // duplicate add is a no-op
    EXPECT_EQ(ring.backendCount(), 2u);
    EXPECT_TRUE(ring.contains("a"));
    ring.remove("a");
    EXPECT_FALSE(ring.contains("a"));
    EXPECT_EQ(ring.backendCount(), 1u);
    ring.remove("zzz"); // absent remove is a no-op
    EXPECT_EQ(ring.backendCount(), 1u);
}

TEST(HashRing, SingleBackendOwnsEverything) {
    HashRing ring(16);
    ring.add("only");
    for (std::size_t i = 0; i < 100; ++i) {
        ASSERT_EQ(*ring.owner(key(i)), "only");
        EXPECT_EQ(ring.successor(key(i), "only"), nullptr);
    }
}

/// Balance across fleet sizes at the router's default 64 vnodes: the
/// heaviest shard carries no more than ~2x the lightest over a uniform
/// key corpus.
TEST(HashRing, BalancedAcrossFleetSizes) {
    for (const std::size_t fleet : {4u, 8u, 16u}) {
        HashRing ring(64);
        for (const std::string& id : makeIds(fleet)) ring.add(id);
        const auto counts = loads(ring);
        ASSERT_EQ(counts.size(), fleet);
        EXPECT_LT(maxMinRatio(counts), 2.5)
            << "fleet of " << fleet << " unbalanced";
        // Every shard gets a meaningful share (> 1/4 of a fair split).
        for (const auto& [id, n] : counts) {
            EXPECT_GT(n, kKeys / fleet / 4) << id << " starved";
        }
    }
}

/// More virtual nodes tighten the spread: 64 vnodes must beat 4 on the
/// same fleet, and coarse rings still leave no shard empty.
TEST(HashRing, MoreVnodesImproveBalance) {
    std::map<std::size_t, double> ratioByVnodes;
    for (const std::size_t vnodes : {4u, 8u, 16u, 64u}) {
        HashRing ring(vnodes);
        for (const std::string& id : makeIds(8)) ring.add(id);
        const auto counts = loads(ring);
        for (const auto& [id, n] : counts) EXPECT_GT(n, 0u) << id << " empty";
        ratioByVnodes[vnodes] = maxMinRatio(counts);
    }
    EXPECT_LT(ratioByVnodes[64], ratioByVnodes[4]);
    EXPECT_LT(ratioByVnodes[64], 2.5);
}

/// The consistency property itself: ejecting one of N backends remaps
/// exactly the keys it owned (~1/N of the corpus) and nothing else.
TEST(HashRing, RemovalRemapsOnlyTheEjectedShard) {
    constexpr std::size_t kFleet = 8;
    HashRing ring(64);
    for (const std::string& id : makeIds(kFleet)) ring.add(id);

    std::vector<std::string> before(kKeys);
    for (std::size_t i = 0; i < kKeys; ++i) before[i] = *ring.owner(key(i));

    const std::string victim = "shard3";
    ring.remove(victim);

    std::size_t remapped = 0;
    for (std::size_t i = 0; i < kKeys; ++i) {
        const std::string& after = *ring.owner(key(i));
        if (before[i] == victim) {
            EXPECT_NE(after, victim);
            remapped++;
        } else {
            // Survivors keep every key they already owned.
            ASSERT_EQ(after, before[i]) << "key " << i << " moved needlessly";
        }
    }
    // The ejected shard owned ~1/8 of the corpus; allow generous slack.
    EXPECT_GT(remapped, kKeys / kFleet / 2);
    EXPECT_LT(remapped, kKeys / kFleet * 2);
}

/// Re-admission restores the exact original ownership: vnode hashes depend
/// only on the id, not on insertion order, so an eject + rejoin cycle is a
/// true round trip.
TEST(HashRing, ReAdmissionRestoresOwnership) {
    HashRing ring(64);
    for (const std::string& id : makeIds(6)) ring.add(id);
    std::vector<std::string> before(kKeys);
    for (std::size_t i = 0; i < kKeys; ++i) before[i] = *ring.owner(key(i));

    ring.remove("shard2");
    ring.add("shard2");
    for (std::size_t i = 0; i < kKeys; ++i) {
        ASSERT_EQ(*ring.owner(key(i)), before[i]) << "key " << i;
    }
}

/// successor() is where a key lands after its owner is ejected: it must
/// never return the excluded shard, and it must agree with what owner()
/// reports once the shard is actually removed.
TEST(HashRing, SuccessorMatchesPostRemovalOwner) {
    HashRing ring(64);
    for (const std::string& id : makeIds(5)) ring.add(id);

    const std::string victim = "shard1";
    std::vector<std::pair<std::uint64_t, std::string>> predicted;
    for (std::size_t i = 0; i < 2000; ++i) {
        const std::uint64_t k = key(i);
        if (*ring.owner(k) != victim) continue;
        const std::string* next = ring.successor(k, victim);
        ASSERT_NE(next, nullptr);
        EXPECT_NE(*next, victim);
        predicted.emplace_back(k, *next);
    }
    ASSERT_FALSE(predicted.empty());
    ring.remove(victim);
    for (const auto& [k, expected] : predicted) {
        EXPECT_EQ(*ring.owner(k), expected);
    }
}
