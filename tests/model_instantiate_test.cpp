#include <gtest/gtest.h>

#include <cmath>

#include "control/control.hpp"
#include "flow/solver_runner.hpp"
#include "model/instantiate.hpp"
#include "model/validator.hpp"

namespace m = urtx::model;
namespace f = urtx::flow;
namespace c = urtx::control;
namespace s = urtx::solver;
namespace rt = urtx::rt;

namespace {

/// Closed-loop model: step -> diff -> pid-ish gain -> plant(lag) -> back.
m::Model loopModel() {
    m::Model mod;
    mod.name = "loop";
    mod.flowTypes.push_back({"Scalar", f::FlowType::real()});
    mod.protocols.push_back({"Ctl", {{"go", "in"}, {"done", "out"}}});

    auto dport = [](std::string name, std::string dir) {
        return m::PortDecl{std::move(name), m::PortDecl::Kind::Data, "",
                           false, false, "Scalar", std::move(dir)};
    };
    auto leaf = [&](std::string name, std::map<std::string, double> params,
                    std::vector<m::PortDecl> ports) {
        m::StreamerClassDecl cls;
        cls.name = std::move(name);
        cls.solver = "RK4";
        cls.params = std::move(params);
        cls.ports = std::move(ports);
        mod.streamers.push_back(std::move(cls));
    };
    leaf("Step", {{"t0", 0.0}, {"before", 0.0}, {"after", 1.0}}, {dport("out", "out")});
    leaf("Diff", {}, {dport("in0", "in"), dport("in1", "in"), dport("out", "out")});
    leaf("Gain", {{"k", 5.0}}, {dport("in", "in"), dport("out", "out")});
    leaf("FirstOrderLag", {{"tau", 1.0}, {"x0", 0.0}},
         {dport("in", "in"), dport("out", "out")});
    leaf("Recorder", {}, {dport("in", "in")});

    m::StreamerClassDecl top;
    top.name = "Loop";
    top.parts.push_back({"sp", "Step", m::PartDecl::Kind::Streamer});
    top.parts.push_back({"err", "Diff", m::PartDecl::Kind::Streamer});
    top.parts.push_back({"ctl", "Gain", m::PartDecl::Kind::Streamer});
    top.parts.push_back({"plant", "FirstOrderLag", m::PartDecl::Kind::Streamer});
    top.parts.push_back({"rec", "Recorder", m::PartDecl::Kind::Streamer});
    top.relays.push_back({"meas", "Scalar", 2});
    top.flows.push_back({"sp.out", "err.in0"});
    top.flows.push_back({"meas.out0", "err.in1"});
    top.flows.push_back({"err.out", "ctl.in"});
    top.flows.push_back({"ctl.out", "plant.in"});
    top.flows.push_back({"plant.out", "meas.in"});
    top.flows.push_back({"meas.out1", "rec.in"});
    mod.streamers.push_back(top);
    return mod;
}

m::BehaviorRegistry standardRegistry() {
    m::BehaviorRegistry reg;
    reg.registerStandardBlocks();
    return reg;
}

} // namespace

TEST(Instantiate, RegistryKnowsStandardBlocks) {
    const auto reg = standardRegistry();
    for (const char* name : {"Constant", "Step", "Ramp", "Sine", "Gain", "Saturation",
                             "Integrator", "FirstOrderLag", "Pid", "Sum2", "Diff", "Recorder"}) {
        EXPECT_TRUE(reg.has(name)) << name;
    }
    EXPECT_FALSE(reg.has("FluxCapacitor"));
}

TEST(Instantiate, LeafBlockGetsParameters) {
    const auto mod = loopModel();
    const auto reg = standardRegistry();
    m::Instantiator inst(mod, reg);
    auto gain = inst.streamer("Gain", "g");
    ASSERT_NE(gain, nullptr);
    EXPECT_DOUBLE_EQ(gain->param("k"), 5.0);
    EXPECT_NE(dynamic_cast<c::Gain*>(gain.get()), nullptr)
        << "registered class must instantiate the real block type";
}

TEST(Instantiate, UnknownClassThrows) {
    const auto mod = loopModel();
    const auto reg = standardRegistry();
    m::Instantiator inst(mod, reg);
    EXPECT_THROW(inst.streamer("Ghost", "g"), std::invalid_argument);
    EXPECT_THROW(inst.capsule("Ghost", "g"), std::invalid_argument);
}

TEST(Instantiate, CompositeBuildsStructure) {
    const auto mod = loopModel();
    const auto reg = standardRegistry();
    m::Instantiator inst(mod, reg);
    auto loop = inst.streamer("Loop", "loop");
    ASSERT_NE(loop, nullptr);
    EXPECT_TRUE(loop->isComposite());
    EXPECT_EQ(loop->subStreamers().size(), 6u); // 5 parts + relay
    // Children are the real registered types.
    bool sawLag = false;
    for (f::Streamer* child : loop->subStreamers()) {
        if (dynamic_cast<c::FirstOrderLag*>(child)) sawLag = true;
    }
    EXPECT_TRUE(sawLag);
}

TEST(Instantiate, ModelDrivenClosedLoopSimulates) {
    // The headline: a model authored as pure data runs as a live simulation
    // with textbook first-order closed-loop response.
    const auto mod = loopModel();
    const auto reg = standardRegistry();
    m::Instantiator inst(mod, reg);
    auto loop = inst.streamer("Loop", "loop");

    f::SolverRunner runner(*loop, s::makeIntegrator("RK4"), 0.001);
    runner.initialize(0.0);
    runner.advanceTo(3.0);

    // Find the recorder.
    c::Recorder* rec = nullptr;
    for (f::Streamer* child : loop->subStreamers()) {
        rec = dynamic_cast<c::Recorder*>(child);
        if (rec) break;
    }
    ASSERT_NE(rec, nullptr);
    // Closed loop: dx = (5(r - x) - x)/1 -> steady state 5/6, tau = 1/6.
    EXPECT_NEAR(rec->last(), 5.0 / 6.0, 1e-3);
    // Time constant check at t = 1/6: x ~ (5/6)(1 - e^-1).
    bool found = false;
    for (const auto& smp : rec->samples()) {
        if (std::abs(smp.t - 1.0 / 6.0) < 1e-3) {
            EXPECT_NEAR(smp.v, 5.0 / 6.0 * (1.0 - std::exp(-1.0)), 5e-3);
            found = true;
            break;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Instantiate, UnregisteredLeafBecomesStructureOnly) {
    m::Model mod;
    mod.flowTypes.push_back({"Scalar", f::FlowType::real()});
    m::StreamerClassDecl mystery;
    mystery.name = "Mystery";
    mystery.ports.push_back({"in", m::PortDecl::Kind::Data, "", false, false, "Scalar", "in"});
    mystery.ports.push_back({"out", m::PortDecl::Kind::Data, "", false, false, "Scalar", "out"});
    mystery.params["answer"] = 42.0;
    mod.streamers.push_back(mystery);

    m::BehaviorRegistry reg; // empty
    m::Instantiator inst(mod, reg);
    auto leaf = inst.streamer("Mystery", "m");
    ASSERT_NE(leaf, nullptr);
    EXPECT_EQ(leaf->stateSize(), 0u);
    EXPECT_NE(leaf->findDPort("in"), nullptr);
    EXPECT_NE(leaf->findDPort("out"), nullptr);
    EXPECT_DOUBLE_EQ(leaf->param("answer"), 42.0);
}

TEST(Instantiate, SPortsGetBuiltProtocols) {
    m::Model mod;
    mod.protocols.push_back({"Ctl", {{"go", "in"}, {"done", "out"}}});
    m::StreamerClassDecl cls;
    cls.name = "Signaled";
    cls.ports.push_back({"ctl", m::PortDecl::Kind::Signal, "Ctl", true, false, "", ""});
    mod.streamers.push_back(cls);

    m::BehaviorRegistry reg;
    m::Instantiator inst(mod, reg);
    auto leaf = inst.streamer("Signaled", "s");
    ASSERT_EQ(leaf->sports().size(), 1u);
    EXPECT_EQ(leaf->sports()[0]->protocol().name(), "Ctl");
    EXPECT_TRUE(leaf->sports()[0]->conjugated());
    // Protocol cache returns stable references.
    EXPECT_EQ(&inst.protocol("Ctl"), &inst.protocol("Ctl"));
    EXPECT_THROW(inst.protocol("Nope"), std::invalid_argument);
}

TEST(Instantiate, BadFlowReferenceThrows) {
    auto mod = loopModel();
    mod.streamers.back().flows.push_back({"ghost.out", "rec.in"});
    const auto reg = standardRegistry();
    m::Instantiator inst(mod, reg);
    EXPECT_THROW(inst.streamer("Loop", "loop"), std::invalid_argument);
}

TEST(Instantiate, CapsuleMachineAnimates) {
    m::Model mod;
    mod.protocols.push_back({"Sw", {{"toggle", "in"}}});
    m::CapsuleClassDecl cap;
    cap.name = "Switch";
    cap.ports.push_back({"in", m::PortDecl::Kind::Signal, "Sw", false, false, "", ""});
    cap.states.push_back({"Off", "", true});
    cap.states.push_back({"On", "", false});
    cap.transitions.push_back({"Off", "On", "toggle", "", ""});
    cap.transitions.push_back({"On", "Off", "toggle", "", ""});
    mod.capsules.push_back(cap);

    m::BehaviorRegistry reg;
    m::Instantiator inst(mod, reg);
    auto sw = inst.capsule("Switch", "sw");
    sw->initialize();
    EXPECT_EQ(sw->machine().currentPath(), "Off");
    sw->deliver(rt::Message(rt::signal("toggle")));
    EXPECT_EQ(sw->machine().currentPath(), "On");
    sw->deliver(rt::Message(rt::signal("toggle")));
    sw->deliver(rt::Message(rt::signal("toggle")));
    EXPECT_EQ(sw->machine().currentPath(), "On");
    ASSERT_EQ(sw->transitionLog.size(), 3u);
    EXPECT_EQ(sw->transitionLog[0], "Off --toggle--> On");
    EXPECT_EQ(sw->transitionLog[1], "On --toggle--> Off");
}

TEST(Instantiate, CapsuleHierarchicalStates) {
    m::Model mod;
    m::CapsuleClassDecl cap;
    cap.name = "Nested";
    cap.states.push_back({"Run", "", true});
    cap.states.push_back({"Fast", "Run", true});
    cap.states.push_back({"Slow", "Run", false});
    cap.states.push_back({"Stop", "", false});
    cap.transitions.push_back({"Fast", "Slow", "shift", "", ""});
    cap.transitions.push_back({"Run", "Stop", "halt", "", ""});
    mod.capsules.push_back(cap);

    m::BehaviorRegistry reg;
    m::Instantiator inst(mod, reg);
    auto cps = inst.capsule("Nested", "n");
    cps->initialize();
    EXPECT_EQ(cps->machine().currentPath(), "Run/Fast");
    cps->deliver(rt::Message(rt::signal("shift")));
    EXPECT_EQ(cps->machine().currentPath(), "Run/Slow");
    cps->deliver(rt::Message(rt::signal("halt")));
    EXPECT_EQ(cps->machine().currentPath(), "Stop");
}

TEST(Instantiate, CapsuleContainsStreamersNotViceVersa) {
    // Figure 3 containment through the instantiator.
    m::Model mod;
    mod.flowTypes.push_back({"Scalar", f::FlowType::real()});
    m::StreamerClassDecl plant;
    plant.name = "Gain";
    plant.params["k"] = 2.0;
    mod.streamers.push_back(plant);
    m::CapsuleClassDecl cap;
    cap.name = "Holder";
    cap.parts.push_back({"g", "Gain", m::PartDecl::Kind::Streamer});
    mod.capsules.push_back(cap);

    auto reg = standardRegistry();
    m::Instantiator inst(mod, reg);
    auto holder = inst.capsule("Holder", "h");
    ASSERT_EQ(holder->ownedStreamers.size(), 1u);
    EXPECT_EQ(holder->ownedStreamers[0]->name(), "g");
}

TEST(Instantiate, SubCapsulesNestProperly) {
    m::Model mod;
    m::CapsuleClassDecl inner;
    inner.name = "Inner";
    inner.states.push_back({"Idle", "", true});
    mod.capsules.push_back(inner);
    m::CapsuleClassDecl outer;
    outer.name = "Outer";
    outer.parts.push_back({"kid", "Inner", m::PartDecl::Kind::Capsule});
    mod.capsules.push_back(outer);

    m::BehaviorRegistry reg;
    m::Instantiator inst(mod, reg);
    auto top = inst.capsule("Outer", "top");
    ASSERT_EQ(top->subCapsules().size(), 1u);
    EXPECT_EQ(top->subCapsules()[0]->fullPath(), "top/kid");
    top->initialize();
    EXPECT_TRUE(top->subCapsules()[0]->initialized());
}

TEST(Instantiate, ValidatedModelInstantiatesCleanly) {
    const auto mod = loopModel();
    const auto diags = m::Validator().validate(mod);
    EXPECT_TRUE(m::Validator::ok(diags)) << m::Validator::render(diags);
    const auto reg = standardRegistry();
    m::Instantiator inst(mod, reg);
    EXPECT_NO_THROW(inst.streamer("Loop", "loop"));
}
