/// \file srv_router_test.cpp
/// Fleet-tier tests: a RouterDaemon fronting real in-process ServeDaemon
/// shards over loopback TCP (ephemeral ports), driven by a socketpair
/// client. Covers routing + name restoration, cache affinity, aggregated
/// control verbs, failover (shard dies mid-stream: retried jobs stay
/// bit-identical, nothing is lost or duplicated, ejections are counted),
/// re-admission after a shard returns, and graceful drain.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "srv/daemon/daemon.hpp"
#include "srv/daemon/framing.hpp"
#include "srv/json.hpp"
#include "srv/router/router.hpp"
#include "srv/scenarios/scenarios.hpp"

namespace srv = urtx::srv;
namespace router = urtx::srv::router;
namespace json = urtx::srv::json;
namespace wire = urtx::srv::wire;
namespace wiregen = urtx::srv::wiregen;

namespace {

void registerOnce() {
    static const bool done =
        (srv::scenarios::registerBuiltins(srv::ScenarioLibrary::global()), true);
    (void)done;
}

bool waitFor(const std::function<bool()>& pred, double seconds = 15.0) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::duration<double>(seconds);
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred()) return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
}

srv::DaemonConfig shardConfig() {
    srv::DaemonConfig cfg;
    cfg.engine.workers = 1;
    cfg.engine.scopedMetrics = false;
    cfg.engine.postmortems = false;
    cfg.warmCacheCapacity = 4;
    cfg.resultCacheCapacity = 64;
    cfg.tcpEphemeral = true;
    cfg.statsTickSeconds = 0.0;
    return cfg;
}

router::RouterConfig routerConfig(const std::vector<std::uint16_t>& ports) {
    router::RouterConfig cfg;
    for (std::size_t i = 0; i < ports.size(); ++i) {
        router::BackendAddress a;
        a.id = "s" + std::to_string(i);
        a.tcpPort = ports[i];
        cfg.backends.push_back(a);
    }
    cfg.probeIntervalSeconds = 0.05;
    cfg.probeTimeoutSeconds = 0.3;
    cfg.probeFailThreshold = 2;
    cfg.hedgeTimeoutSeconds = 1.0;
    cfg.reconnectSeconds = 0.05;
    cfg.statsTickSeconds = 0.2;
    return cfg;
}

/// A fleet of in-process shards plus the router in front of them.
struct Fleet {
    explicit Fleet(std::size_t n) {
        registerOnce();
        std::vector<std::uint16_t> ports;
        for (std::size_t i = 0; i < n; ++i) {
            shards.push_back(std::make_unique<srv::ServeDaemon>(shardConfig()));
            std::string err;
            EXPECT_TRUE(shards.back()->start(&err)) << err;
            EXPECT_NE(shards.back()->boundTcpPort(), 0);
            ports.push_back(shards.back()->boundTcpPort());
        }
        rt = std::make_unique<router::RouterDaemon>(routerConfig(ports));
        std::string err;
        EXPECT_TRUE(rt->start(&err)) << err;
    }
    ~Fleet() {
        if (rt) rt->stop();
        for (auto& s : shards) s->stop();
    }

    bool waitUp(std::size_t n) {
        return waitFor([&] { return rt->backendsUp() == n; });
    }

    std::vector<std::unique_ptr<srv::ServeDaemon>> shards;
    std::unique_ptr<router::RouterDaemon> rt;
};

/// Line-protocol client on a socketpair the router adopted.
class Client {
public:
    explicit Client(router::RouterDaemon& rt, int timeoutSeconds = 30) {
        int sv[2] = {-1, -1};
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
            ADD_FAILURE() << "socketpair failed";
            return;
        }
        fd_ = sv[0];
        timeval tv{timeoutSeconds, 0};
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        rt.adoptConnection(sv[1]);
    }
    ~Client() { close(); }

    void close() {
        if (fd_ >= 0) ::close(fd_);
        fd_ = -1;
    }

    bool sendLine(const std::string& line) const {
        std::string buf = line + "\n";
        std::size_t off = 0;
        while (off < buf.size()) {
            const ssize_t n =
                ::send(fd_, buf.data() + off, buf.size() - off, MSG_NOSIGNAL);
            if (n <= 0) return false;
            off += static_cast<std::size_t>(n);
        }
        return true;
    }

    std::optional<std::string> readLine() {
        for (;;) {
            const auto nl = pending_.find('\n');
            if (nl != std::string::npos) {
                std::string line = pending_.substr(0, nl);
                pending_.erase(0, nl + 1);
                return line;
            }
            char chunk[65536];
            const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0) return std::nullopt;
            pending_.append(chunk, static_cast<std::size_t>(n));
        }
    }

    json::Value readRecord() {
        const auto line = readLine();
        if (!line) {
            ADD_FAILURE() << "no record (EOF or timeout)";
            return {};
        }
        std::string err;
        auto v = json::parse(*line, &err);
        if (!v) {
            ADD_FAILURE() << "unparseable record: " << err << " in " << *line;
            return {};
        }
        return *v;
    }

private:
    int fd_ = -1;
    std::string pending_;
};

std::string tankJob(const std::string& name, double qin) {
    return "{\"scenario\": \"tank\", \"name\": \"" + name +
           "\", \"horizon\": 1.5, \"mode\": \"single\", \"params\": {\"qin\": " +
           json::number(qin) + "}}";
}

std::uint64_t counterValue(const char* name) {
    return urtx::obs::Registry::process().counter(name).value();
}

/// Pick a currently-free loopback port the kernel just handed out. Used by
/// the re-admission test, which needs a shard to come back on the same
/// address the router knows.
std::uint16_t pickFreePort() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return 0;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    std::uint16_t port = 0;
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
        socklen_t len = sizeof(addr);
        if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
            port = ntohs(addr.sin_port);
        }
    }
    ::close(fd);
    return port;
}

} // namespace

TEST(SrvRouterTest, RoutesJobsRestoresNamesAndKeepsCacheAffinity) {
    Fleet fleet(2);
    ASSERT_TRUE(fleet.waitUp(2));
    Client c(*fleet.rt);

    constexpr std::size_t kJobs = 12;
    std::map<std::string, std::string> hashes;
    for (std::size_t i = 0; i < kJobs; ++i) {
        ASSERT_TRUE(c.sendLine(tankJob("job" + std::to_string(i), 0.3 + 0.01 * i)));
    }
    for (std::size_t i = 0; i < kJobs; ++i) {
        const json::Value rec = c.readRecord();
        EXPECT_EQ(rec.strOr("status", ""), "succeeded");
        EXPECT_TRUE(rec.boolOr("passed", false));
        const std::string name = rec.strOr("name", "");
        EXPECT_TRUE(hashes.emplace(name, rec.strOr("trace_hash", "")).second)
            << "duplicate reply for " << name;
    }
    ASSERT_EQ(hashes.size(), kJobs);
    for (std::size_t i = 0; i < kJobs; ++i) {
        EXPECT_TRUE(hashes.count("job" + std::to_string(i)));
    }

    // Same jobs again: consistent hashing pins each warm key to the same
    // shard, so every rerun replays from that shard's result cache with the
    // identical trace hash.
    for (std::size_t i = 0; i < kJobs; ++i) {
        ASSERT_TRUE(c.sendLine(tankJob("job" + std::to_string(i), 0.3 + 0.01 * i)));
    }
    for (std::size_t i = 0; i < kJobs; ++i) {
        const json::Value rec = c.readRecord();
        EXPECT_EQ(rec.strOr("status", ""), "succeeded");
        EXPECT_TRUE(rec.boolOr("cached_result", false))
            << rec.strOr("name", "") << " missed its shard's result cache";
        EXPECT_EQ(rec.strOr("trace_hash", "x"),
                  hashes[rec.strOr("name", "")]);
    }
}

TEST(SrvRouterTest, HealthFanoutAggregatesShardsAndFleetCaches) {
    Fleet fleet(2);
    ASSERT_TRUE(fleet.waitUp(2));
    Client c(*fleet.rt);

    ASSERT_TRUE(c.sendLine(tankJob("warm", 0.4)));
    EXPECT_EQ(c.readRecord().strOr("status", ""), "succeeded");

    ASSERT_TRUE(c.sendLine("{\"op\": \"health\"}"));
    const json::Value doc = c.readRecord();
    EXPECT_EQ(doc.strOr("op", ""), "health");
    EXPECT_EQ(doc.strOr("status", ""), "ok");

    const json::Value* rt = doc.find("router");
    ASSERT_NE(rt, nullptr);
    EXPECT_EQ(rt->numOr("backends_up", 0), 2.0);
    EXPECT_GE(rt->numOr("jobs_completed", 0), 1.0);
    const json::Value* backends = rt->find("backends");
    ASSERT_NE(backends, nullptr);
    EXPECT_EQ(backends->array.size(), 2u);

    const json::Value* shards = doc.find("shards");
    ASSERT_NE(shards, nullptr);
    ASSERT_TRUE(shards->isObject());
    EXPECT_EQ(shards->object.size(), 2u);
    for (const auto& [id, shard] : shards->object) {
        EXPECT_EQ(shard.strOr("op", ""), "health") << id;
        EXPECT_NE(shard.find("result_cache"), nullptr) << id;
    }

    const json::Value* fleetAgg = doc.find("fleet");
    ASSERT_NE(fleetAgg, nullptr);
    EXPECT_EQ(fleetAgg->numOr("shards_reporting", 0), 2.0);
    const json::Value* rc = fleetAgg->find("result_cache");
    ASSERT_NE(rc, nullptr);
    // Two shards with capacity 64 each: aggregate capacity is the sum.
    EXPECT_EQ(rc->numOr("capacity", 0), 128.0);
    EXPECT_GE(rc->numOr("misses", 0), 1.0);
}

TEST(SrvRouterTest, SetSamplingBroadcastsToEveryShard) {
    Fleet fleet(2);
    ASSERT_TRUE(fleet.waitUp(2));
    Client c(*fleet.rt);

    ASSERT_TRUE(c.sendLine("{\"op\": \"set_sampling\", \"rate\": 1.0}"));
    const json::Value doc = c.readRecord();
    EXPECT_EQ(doc.strOr("op", ""), "set_sampling");
    const json::Value* shards = doc.find("shards");
    ASSERT_NE(shards, nullptr);
    EXPECT_EQ(shards->object.size(), 2u);
    for (const auto& [id, shard] : shards->object) {
        EXPECT_EQ(shard.strOr("status", ""), "ok") << id;
        EXPECT_EQ(shard.numOr("rate", 0.0), 1.0) << id;
    }

    // Bad rate is rejected without touching the fleet.
    ASSERT_TRUE(c.sendLine("{\"op\": \"set_sampling\"}"));
    EXPECT_EQ(c.readRecord().strOr("status", ""), "error");
}

TEST(SrvRouterTest, StatsFanoutCarriesRouterWindows) {
    Fleet fleet(1);
    ASSERT_TRUE(fleet.waitUp(1));
    Client c(*fleet.rt);
    ASSERT_TRUE(c.sendLine(tankJob("stat", 0.5)));
    EXPECT_EQ(c.readRecord().strOr("status", ""), "succeeded");

    ASSERT_TRUE(c.sendLine("{\"op\": \"stats\"}"));
    const json::Value doc = c.readRecord();
    EXPECT_EQ(doc.strOr("op", ""), "stats");
    const json::Value* rt = doc.find("router");
    ASSERT_NE(rt, nullptr);
    EXPECT_NE(rt->find("rates"), nullptr);
    EXPECT_NE(rt->find("latency_seconds"), nullptr);
    const json::Value* shards = doc.find("shards");
    ASSERT_NE(shards, nullptr);
    EXPECT_EQ(shards->object.size(), 1u);
}

TEST(SrvRouterTest, UnknownOpAndBadJsonYieldErrorsNotDisconnects) {
    Fleet fleet(1);
    ASSERT_TRUE(fleet.waitUp(1));
    Client c(*fleet.rt);

    ASSERT_TRUE(c.sendLine("{\"op\": \"launch_missiles\"}"));
    EXPECT_EQ(c.readRecord().strOr("status", ""), "error");
    ASSERT_TRUE(c.sendLine("not json at all"));
    EXPECT_EQ(c.readRecord().strOr("status", ""), "error");
    // The connection survived both.
    ASSERT_TRUE(c.sendLine(tankJob("after", 0.45)));
    EXPECT_EQ(c.readRecord().strOr("status", ""), "succeeded");
}

TEST(SrvRouterTest, FailoverLosesNothingDuplicatesNothingStaysBitIdentical) {
    Fleet fleet(3);
    ASSERT_TRUE(fleet.waitUp(3));
    Client c(*fleet.rt);

    constexpr std::size_t kJobs = 24;
    std::map<std::string, std::string> hashes;
    for (std::size_t i = 0; i < kJobs; ++i) {
        ASSERT_TRUE(c.sendLine(tankJob("fo" + std::to_string(i), 0.3 + 0.005 * i)));
    }
    for (std::size_t i = 0; i < kJobs; ++i) {
        const json::Value rec = c.readRecord();
        ASSERT_EQ(rec.strOr("status", ""), "succeeded") << rec.strOr("name", "");
        hashes[rec.strOr("name", "")] = rec.strOr("trace_hash", "");
    }
    ASSERT_EQ(hashes.size(), kJobs);

    const std::uint64_t ejectionsBefore = counterValue("router.backend_ejections");
    const std::uint64_t retriesBefore = counterValue("router.retries");

    // Kill shard 0 mid-stream: it starts draining, so every job the router
    // has routed (or routes) to it comes back as a structured "draining"
    // rejection -> the router ejects the shard and retries those jobs on
    // their ring successor. The client must still see exactly one reply
    // per job, every one succeeded, every trace hash unchanged.
    fleet.shards[0]->beginDrain();
    std::set<std::string> seen;
    for (std::size_t i = 0; i < kJobs; ++i) {
        ASSERT_TRUE(c.sendLine(tankJob("fo" + std::to_string(i), 0.3 + 0.005 * i)));
    }
    for (std::size_t i = 0; i < kJobs; ++i) {
        const json::Value rec = c.readRecord();
        const std::string name = rec.strOr("name", "");
        ASSERT_EQ(rec.strOr("status", ""), "succeeded")
            << name << ": " << rec.strOr("error_string", "");
        EXPECT_TRUE(seen.insert(name).second) << "duplicate reply for " << name;
        EXPECT_EQ(rec.strOr("trace_hash", "x"), hashes[name])
            << name << " retried with a different trajectory";
    }
    EXPECT_EQ(seen.size(), kJobs);

    ASSERT_TRUE(waitFor([&] { return fleet.rt->backendsUp() == 2; }));
    EXPECT_GE(counterValue("router.backend_ejections"), ejectionsBefore + 1);
    EXPECT_GE(counterValue("router.retries"), retriesBefore);

    // The survivors keep serving.
    ASSERT_TRUE(c.sendLine(tankJob("post-failover", 0.6)));
    EXPECT_EQ(c.readRecord().strOr("status", ""), "succeeded");
}

TEST(SrvRouterTest, HardShardDeathAlsoEjectsAndRecovers) {
    Fleet fleet(2);
    ASSERT_TRUE(fleet.waitUp(2));
    Client c(*fleet.rt);

    const std::uint64_t ejectionsBefore = counterValue("router.backend_ejections");
    // A full stop closes the shard's listener and its router connection:
    // the router sees EOF (or a draining probe) and must eject.
    fleet.shards[1]->stop();
    ASSERT_TRUE(waitFor([&] { return fleet.rt->backendsUp() == 1; }));
    EXPECT_GE(counterValue("router.backend_ejections"), ejectionsBefore + 1);

    constexpr std::size_t kJobs = 8;
    std::set<std::string> seen;
    for (std::size_t i = 0; i < kJobs; ++i) {
        ASSERT_TRUE(c.sendLine(tankJob("hd" + std::to_string(i), 0.35 + 0.01 * i)));
    }
    for (std::size_t i = 0; i < kJobs; ++i) {
        const json::Value rec = c.readRecord();
        EXPECT_EQ(rec.strOr("status", ""), "succeeded");
        seen.insert(rec.strOr("name", ""));
    }
    EXPECT_EQ(seen.size(), kJobs);
}

TEST(SrvRouterTest, ShardReadmissionRejoinsTheRing) {
    registerOnce();
    const std::uint16_t port = pickFreePort();
    ASSERT_NE(port, 0);

    srv::DaemonConfig cfg = shardConfig();
    cfg.tcpEphemeral = false;
    cfg.tcpPort = port;
    auto shard = std::make_unique<srv::ServeDaemon>(cfg);
    std::string err;
    ASSERT_TRUE(shard->start(&err)) << err;

    router::RouterDaemon rt(routerConfig({port}));
    ASSERT_TRUE(rt.start(&err)) << err;
    ASSERT_TRUE(waitFor([&] { return rt.backendsUp() == 1; }));

    const std::uint64_t readmitBefore = counterValue("router.backend_readmissions");
    shard->stop();
    ASSERT_TRUE(waitFor([&] { return rt.backendsUp() == 0; }));

    // With the ring empty, jobs are rejected with a structured verdict.
    {
        Client c(rt);
        ASSERT_TRUE(c.sendLine(tankJob("while-down", 0.4)));
        const json::Value rec = c.readRecord();
        EXPECT_EQ(rec.strOr("status", ""), "rejected");
        EXPECT_EQ(rec.strOr("verdict", ""), "no_backend");
    }

    // The shard comes back on the same address; the router's reconnect
    // probe readmits it and jobs flow again.
    shard = std::make_unique<srv::ServeDaemon>(cfg);
    ASSERT_TRUE(shard->start(&err)) << err;
    ASSERT_TRUE(waitFor([&] { return rt.backendsUp() == 1; }));
    EXPECT_GE(counterValue("router.backend_readmissions"), readmitBefore + 1);

    Client c(rt);
    ASSERT_TRUE(c.sendLine(tankJob("after-return", 0.4)));
    EXPECT_EQ(c.readRecord().strOr("status", ""), "succeeded");

    rt.stop();
    shard->stop();
}

TEST(SrvRouterTest, DrainRejectsNewJobsAndStopsCleanly) {
    Fleet fleet(1);
    ASSERT_TRUE(fleet.waitUp(1));
    Client c(*fleet.rt);

    constexpr std::size_t kJobs = 4;
    for (std::size_t i = 0; i < kJobs; ++i) {
        ASSERT_TRUE(c.sendLine(tankJob("dr" + std::to_string(i), 0.4 + 0.01 * i)));
    }
    for (std::size_t i = 0; i < kJobs; ++i) {
        EXPECT_EQ(c.readRecord().strOr("status", ""), "succeeded");
    }

    fleet.rt->beginDrain();
    ASSERT_TRUE(c.sendLine(tankJob("late", 0.9)));
    const json::Value rec = c.readRecord();
    EXPECT_EQ(rec.strOr("status", ""), "rejected");
    EXPECT_EQ(rec.strOr("verdict", ""), "draining");
    EXPECT_EQ(rec.strOr("error_string", ""), "router is draining");

    // Health must stay answerable while draining.
    ASSERT_TRUE(c.sendLine("{\"op\": \"health\"}"));
    const json::Value health = c.readRecord();
    EXPECT_EQ(health.strOr("status", ""), "ok");
    ASSERT_NE(health.find("router"), nullptr);
    EXPECT_TRUE(health.find("router")->boolOr("draining", false));

    fleet.rt->stop(); // no routed jobs outstanding: returns promptly
    EXPECT_EQ(fleet.rt->pendingJobs(), 0u);
}

TEST(SrvRouterTest, BinaryFramedClientRoundTripsThroughTheFleet) {
    Fleet fleet(2);
    ASSERT_TRUE(fleet.waitUp(2));

    int sv[2] = {-1, -1};
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    timeval tv{30, 0};
    ::setsockopt(sv[0], SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    fleet.rt->adoptConnection(sv[1]);
    const int fd = sv[0];

    const auto sendRaw = [&](const std::string& bytes) {
        std::size_t off = 0;
        while (off < bytes.size()) {
            const ssize_t n =
                ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
            ASSERT_GT(n, 0);
            off += static_cast<std::size_t>(n);
        }
    };
    std::string pending;
    const auto readExact = [&](std::size_t want, std::string* out) {
        while (pending.size() < want) {
            char chunk[65536];
            const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            ASSERT_GT(n, 0) << "EOF/timeout from router";
            pending.append(chunk, static_cast<std::size_t>(n));
        }
        *out = pending.substr(0, want);
        pending.erase(0, want);
    };

    sendRaw(wire::preamble());
    std::string hello;
    readExact(wiregen::kPreambleBytes, &hello);
    ASSERT_TRUE(wire::checkPreamble(hello.data()));

    srv::ScenarioSpec spec;
    spec.scenario = "tank";
    spec.name = "bin0";
    spec.horizon = 1.5;
    spec.params.set("qin", 0.42);
    std::string frame;
    wire::appendFrame(frame, wire::FrameType::Job, wire::jobToWire(spec).encode());
    sendRaw(frame);

    std::string header;
    readExact(wiregen::kFrameHeaderBytes, &header);
    const auto h = wire::peekFrameHeader(header);
    ASSERT_TRUE(h.has_value());
    ASSERT_EQ(static_cast<wire::FrameType>(h->type), wire::FrameType::Result);
    std::string payload;
    readExact(h->length, &payload);
    wiregen::WireResult w;
    std::string err;
    ASSERT_TRUE(wiregen::WireResult::decode(w, payload.data(), payload.size(), &err))
        << err;
    const srv::ResultRecord rec = wire::resultFromWire(w);
    EXPECT_EQ(rec.name, "bin0");
    EXPECT_EQ(rec.status, srv::ScenarioStatus::Succeeded);
    EXPECT_NE(rec.traceHash, 0u);
    ::close(sv[0]);
}
