#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/window.hpp"

namespace obs = urtx::obs;

namespace {

constexpr std::uint64_t kSec = 1000000000ull;

} // namespace

// --- quantileFromDeltas -----------------------------------------------------

TEST(QuantileFromDeltas, InterpolatesInsideBucket) {
    const std::vector<double> bounds = {1.0, 2.0, 4.0};
    // All mass in the (1, 2] bucket: rank fraction interpolates linearly.
    const std::vector<std::uint64_t> deltas = {0, 10, 0, 0};
    EXPECT_DOUBLE_EQ(obs::StatsWindow::quantileFromDeltas(bounds, deltas, 0.50), 1.5);
    EXPECT_DOUBLE_EQ(obs::StatsWindow::quantileFromDeltas(bounds, deltas, 0.90), 1.9);
    EXPECT_DOUBLE_EQ(obs::StatsWindow::quantileFromDeltas(bounds, deltas, 1.0), 2.0);
}

TEST(QuantileFromDeltas, ExactBucketEdgeAndFirstBucket) {
    const std::vector<double> bounds = {1.0, 2.0, 4.0};
    // First bucket interpolates from an implicit lower edge of 0.
    const std::vector<std::uint64_t> deltas = {10, 0, 0, 0};
    EXPECT_DOUBLE_EQ(obs::StatsWindow::quantileFromDeltas(bounds, deltas, 0.50), 0.5);
    // q landing exactly on a bucket's cumulative edge returns that bound.
    const std::vector<std::uint64_t> split = {5, 5, 0, 0};
    EXPECT_DOUBLE_EQ(obs::StatsWindow::quantileFromDeltas(bounds, split, 0.50), 1.0);
    EXPECT_DOUBLE_EQ(obs::StatsWindow::quantileFromDeltas(bounds, split, 0.75), 1.5);
}

TEST(QuantileFromDeltas, InfBucketClampsToHighestBound) {
    const std::vector<double> bounds = {1.0, 2.0, 4.0};
    const std::vector<std::uint64_t> deltas = {0, 0, 0, 5};
    EXPECT_DOUBLE_EQ(obs::StatsWindow::quantileFromDeltas(bounds, deltas, 0.50), 4.0);
    EXPECT_DOUBLE_EQ(obs::StatsWindow::quantileFromDeltas(bounds, deltas, 0.99), 4.0);
}

TEST(QuantileFromDeltas, DegenerateInputsReturnZero) {
    EXPECT_DOUBLE_EQ(obs::StatsWindow::quantileFromDeltas({}, {}, 0.5), 0.0);
    // No mass in the window.
    EXPECT_DOUBLE_EQ(obs::StatsWindow::quantileFromDeltas({1.0}, {0, 0}, 0.5), 0.0);
    // Size mismatch between bounds and deltas.
    EXPECT_DOUBLE_EQ(obs::StatsWindow::quantileFromDeltas({1.0, 2.0}, {1, 2}, 0.5), 0.0);
}

// --- StatsWindow rates ------------------------------------------------------

TEST(StatsWindow, RateFromSnapshotDeltas) {
    obs::Registry reg;
    obs::Counter& c = reg.counter("jobs");
    obs::StatsWindow win(reg);

    c.add(10);
    win.tickAt(1 * kSec);
    c.add(20);
    // Baseline is the tick 2s ago; 20 new counts over 2s = 10/s.
    EXPECT_DOUBLE_EQ(win.rateAt("jobs", 1.0, 3 * kSec), 10.0);
    // Unknown counter and empty window both read 0.
    EXPECT_DOUBLE_EQ(win.rateAt("nope", 1.0, 3 * kSec), 0.0);
    obs::StatsWindow empty(reg);
    EXPECT_DOUBLE_EQ(empty.rateAt("jobs", 1.0, 3 * kSec), 0.0);
}

TEST(StatsWindow, RatePicksNewestBaselineOldEnough) {
    obs::Registry reg;
    obs::Counter& c = reg.counter("jobs");
    obs::StatsWindow win(reg);

    win.tickAt(0);
    c.add(100);
    win.tickAt(1 * kSec);
    c.add(100);
    win.tickAt(2 * kSec);
    // now = 2.5s, window = 1s: the 1s tick (age 1.5s, value 100) is the
    // newest old-enough baseline; 100 new counts over 1.5s.
    const double r = win.rateAt("jobs", 1.0, 2 * kSec + kSec / 2);
    EXPECT_NEAR(r, 100.0 / 1.5, 1e-9);
}

TEST(StatsWindow, NonIncreasingCounterReadsZero) {
    obs::Registry reg;
    obs::Counter& c = reg.counter("jobs");
    obs::StatsWindow win(reg);
    c.add(5);
    win.tickAt(1 * kSec);
    EXPECT_DOUBLE_EQ(win.rateAt("jobs", 1.0, 3 * kSec), 0.0);
}

TEST(StatsWindow, CapacityTrimsOldestAndCoverageTracksSpan) {
    obs::Registry reg;
    obs::StatsWindow win(reg, 2);
    win.tickAt(0);
    win.tickAt(1 * kSec);
    win.tickAt(2 * kSec);
    EXPECT_EQ(win.ticks(), 2u);
    EXPECT_DOUBLE_EQ(win.coverageSeconds(), 1.0);
}

// --- StatsWindow quantiles --------------------------------------------------

TEST(StatsWindow, WindowedQuantilesSeeOnlyInWindowMass) {
    obs::Registry reg;
    obs::Histogram& h = reg.histogram("lat", {1.0, 2.0, 4.0});
    obs::StatsWindow win(reg);

    // Pre-window mass: 5 observations in (1, 2].
    for (int i = 0; i < 5; ++i) h.observe(1.5);
    win.tickAt(1 * kSec);
    // In-window mass: 10 observations in (2, 4].
    for (int i = 0; i < 10; ++i) h.observe(3.0);

    const auto q = win.quantilesAt("lat", 1.0, 3 * kSec);
    EXPECT_EQ(q.count, 10u);
    EXPECT_DOUBLE_EQ(q.windowSeconds, 2.0);
    // All windowed mass sits in (2, 4]: p50 interpolates to the middle.
    EXPECT_DOUBLE_EQ(q.p50, 3.0);
    EXPECT_DOUBLE_EQ(q.p90, 2.0 + 2.0 * 0.9);
    EXPECT_NEAR(q.p99, 2.0 + 2.0 * 0.99, 1e-12);
}

TEST(StatsWindow, QuantilesUnknownHistogramIsZeroFilled) {
    obs::Registry reg;
    obs::StatsWindow win(reg);
    const auto q = win.quantilesAt("missing", 1.0, kSec);
    EXPECT_EQ(q.count, 0u);
    EXPECT_DOUBLE_EQ(q.p50, 0.0);
    EXPECT_DOUBLE_EQ(q.p99, 0.0);
}

// --- WcetTracker ------------------------------------------------------------

TEST(WcetTracker, RolloverKeepsRollingStatsAndLifetimeWorst) {
    obs::WcetTracker wcet(4);
    for (double s : {10.0, 1.0, 2.0, 3.0, 4.0, 5.0}) wcet.observe("tank", "rk45", s);
    const auto table = wcet.table();
    ASSERT_EQ(table.size(), 1u);
    const auto& e = table[0];
    EXPECT_EQ(e.scenario, "tank");
    EXPECT_EQ(e.solver, "rk45");
    EXPECT_EQ(e.count, 6u);
    EXPECT_DOUBLE_EQ(e.last, 5.0);
    // The 10.0 sample rolled out of the window but stays the lifetime worst.
    EXPECT_DOUBLE_EQ(e.worst, 10.0);
    EXPECT_DOUBLE_EQ(e.rollingMax, 5.0);
    EXPECT_DOUBLE_EQ(e.p99, 5.0); // nearest rank over {2, 3, 4, 5}
}

TEST(WcetTracker, RejectsNonFiniteAndNegative) {
    obs::WcetTracker wcet;
    wcet.observe("tank", "rk45", -1.0);
    wcet.observe("tank", "rk45", std::nan(""));
    EXPECT_TRUE(wcet.table().empty());
    wcet.observe("tank", "rk45", 0.25);
    ASSERT_EQ(wcet.table().size(), 1u);
    EXPECT_EQ(wcet.table()[0].count, 1u);
}

TEST(WcetTracker, TableSortedByScenarioThenSolver) {
    obs::WcetTracker wcet;
    wcet.observe("tank", "rk45", 0.1);
    wcet.observe("cruise", "rk4", 0.2);
    wcet.observe("cruise", "euler", 0.3);
    const auto table = wcet.table();
    ASSERT_EQ(table.size(), 3u);
    EXPECT_EQ(table[0].scenario, "cruise");
    EXPECT_EQ(table[0].solver, "euler");
    EXPECT_EQ(table[1].solver, "rk4");
    EXPECT_EQ(table[2].scenario, "tank");
}

// --- StageProfile -----------------------------------------------------------

TEST(StageProfile, StampsAreMonotoneOffsetsFromOrigin) {
    obs::StageProfile p;
    p.originNanos = 100;
    p.stampNanos[static_cast<std::size_t>(obs::Stage::Decode)] = 150;
    p.stampNanos[static_cast<std::size_t>(obs::Stage::Admission)] = 200;
    p.stampNanos[static_cast<std::size_t>(obs::Stage::Solve)] = 1100;
    EXPECT_DOUBLE_EQ(p.offsetSeconds(obs::Stage::Decode), 50e-9);
    EXPECT_DOUBLE_EQ(p.offsetSeconds(obs::Stage::Solve), 1000e-9);
    // Unstamped stages are absent from the map, not zero entries.
    const auto m = p.toMap();
    EXPECT_EQ(m.size(), 3u);
    EXPECT_EQ(m.count("queue_wait"), 0u);
    EXPECT_DOUBLE_EQ(m.at("admission"), 100e-9);
}

TEST(StageProfile, MergeAdoptsOriginAndMissingStamps) {
    obs::StageProfile daemon;
    daemon.originNanos = 100;
    daemon.stampNanos[static_cast<std::size_t>(obs::Stage::Decode)] = 150;

    obs::StageProfile engine;
    engine.enabled = true;
    engine.stampNanos[static_cast<std::size_t>(obs::Stage::QueueWait)] = 300;
    engine.stampNanos[static_cast<std::size_t>(obs::Stage::Solve)] = 900;

    daemon.merge(engine);
    EXPECT_TRUE(daemon.enabled);
    EXPECT_EQ(daemon.originNanos, 100u); // earlier origin wins
    EXPECT_TRUE(daemon.stamped(obs::Stage::Decode));
    EXPECT_DOUBLE_EQ(daemon.offsetSeconds(obs::Stage::QueueWait), 200e-9);
    EXPECT_DOUBLE_EQ(daemon.offsetSeconds(obs::Stage::Solve), 800e-9);
}

TEST(StageProfile, FirstStampAdoptsOriginWhenUnset) {
    obs::StageProfile p;
    p.stamp(obs::Stage::QueueWait);
    EXPECT_NE(p.originNanos, 0u);
    EXPECT_EQ(p.originNanos, p.stampOf(obs::Stage::QueueWait));
    EXPECT_DOUBLE_EQ(p.offsetSeconds(obs::Stage::QueueWait), 0.0);
}
