/// \file obs_sampling_test.cpp
/// Causal span sampling: the per-span admission decision made once at the
/// emitting site (Port::send / timer fire), its deterministic 1-in-N
/// countdown, the obs.spans_sampled accounting that ties the hop-latency
/// histogram back to the sampler, and the invariance of simulation results
/// (TraceData hashes) under any sampling rate.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "obs/obs.hpp"
#include "rt/rt.hpp"
#include "srv/engine.hpp"
#include "srv/scenarios/scenarios.hpp"

namespace obs = urtx::obs;
namespace rt = urtx::rt;
namespace srv = urtx::srv;

namespace {

rt::Protocol& proto() {
    static rt::Protocol p = [] {
        rt::Protocol q{"Sampling"};
        q.out("req").in("rsp");
        return q;
    }();
    return p;
}

/// One-way receiver: never replies, so every causal span in a test comes
/// from the client's sends and the counts below are exact.
struct Sink : rt::Capsule {
    explicit Sink(std::string n) : rt::Capsule(std::move(n)), port(*this, "p", proto(), true) {}
    rt::Port port;
    std::size_t received = 0;
    std::size_t stamped = 0;

protected:
    void onMessage(const rt::Message& m) override {
        ++received;
        if (m.spanId != 0) ++stamped;
    }
};

struct Client : rt::Capsule {
    explicit Client(std::string n)
        : rt::Capsule(std::move(n)), port(*this, "p", proto(), false) {}
    rt::Port port;
};

/// Counts the tracer's 's' (emit) flow events named \p signal.
std::size_t emitEventsNamed(const char* signal) {
    std::size_t n = 0;
    for (const auto& ev : obs::Tracer::global().collect()) {
        if (ev.phase == 's' && ev.name && std::string(ev.name) == signal) ++n;
    }
    return n;
}

struct SamplingTest : ::testing::Test {
    void SetUp() override {
#if !URTX_OBS
        GTEST_SKIP() << "observability compiled out (URTX_OBS=0)";
#endif
        obs::Registry::process().setSpanSamplingRate(1.0);
        obs::Registry::process().reset();
        obs::Tracer::global().clear();
        obs::Monitor::global().clear();
    }
    void TearDown() override {
        obs::Tracer::global().setEnabled(false);
        obs::Monitor::global().setEnabled(false);
        obs::Registry::process().setSpanSamplingRate(1.0);
        obs::Registry::process().reset();
        obs::Tracer::global().clear();
        obs::Monitor::global().clear();
    }
};

/// Drive \p sends one-way messages through a fresh controller under a
/// private scoped registry carrying \p rate. Using a fresh Registry per
/// call gives the sampler's thread-local countdown a fresh uid, so the
/// admission phase is deterministic regardless of what earlier tests did
/// on this thread.
struct RunStats {
    std::size_t received = 0;
    std::size_t stamped = 0;
    std::uint64_t sampledCounter = 0;
    obs::Snapshot snapshot;
};

RunStats runOneWay(double rate, std::size_t sends) {
    obs::Registry reg;
    reg.setSpanSamplingRate(rate);
    obs::ScopedRegistry scope(&reg);

    rt::Controller ctl{"ctl"};
    Client client{"client"};
    Sink sink{"sink"};
    rt::connect(client.port, sink.port);
    ctl.attach(client);
    ctl.attach(sink);
    for (std::size_t i = 0; i < sends; ++i) client.port.send("req");
    ctl.dispatchAll();

    RunStats st;
    st.received = sink.received;
    st.stamped = sink.stamped;
    st.snapshot = reg.snapshot();
    if (const auto* c = st.snapshot.counter("obs.spans_sampled")) st.sampledCounter = c->value;
    return st;
}

} // namespace

TEST_F(SamplingTest, RateMapsToIntegerPeriod) {
    obs::Registry reg;
    EXPECT_EQ(reg.spanSamplingPeriod(), 1u) << "default: sample everything";
    reg.setSpanSamplingRate(0.5);
    EXPECT_EQ(reg.spanSamplingPeriod(), 2u);
    reg.setSpanSamplingRate(0.01);
    EXPECT_EQ(reg.spanSamplingPeriod(), 100u);
    EXPECT_DOUBLE_EQ(reg.spanSamplingRate(), 0.01);
    reg.setSpanSamplingRate(2.0);
    EXPECT_EQ(reg.spanSamplingPeriod(), 1u) << "rates above 1 clamp to all";
    reg.setSpanSamplingRate(0.0);
    EXPECT_EQ(reg.spanSamplingPeriod(), 0u) << "zero (above the default floor) = never";
    EXPECT_DOUBLE_EQ(reg.spanSamplingRate(), 0.0);
    reg.setSpanSamplingRate(-1.0);
    EXPECT_EQ(reg.spanSamplingPeriod(), 0u) << "negative clamps to the floor";
    reg.setSpanSamplingRate(1e-12);
    EXPECT_EQ(reg.spanSamplingPeriod(), 4294967295u) << "tiny rates saturate the period";
}

TEST_F(SamplingTest, DefaultRateStampsEverySpan) {
    obs::Tracer::global().setEnabled(true);
    const RunStats st = runOneWay(1.0, 20);
    obs::Tracer::global().setEnabled(false);

    EXPECT_EQ(st.received, 20u);
    EXPECT_EQ(st.stamped, 20u) << "rate 1.0 must behave exactly like unsampled tracing";
    EXPECT_EQ(st.sampledCounter, 20u);
    EXPECT_EQ(emitEventsNamed("req"), 20u);
}

TEST_F(SamplingTest, RateZeroNeverStampsAndRecordsNoFlowEvents) {
    obs::Tracer::global().setEnabled(true);
    const RunStats st = runOneWay(0.0, 20);
    obs::Tracer::global().setEnabled(false);

    EXPECT_EQ(st.received, 20u) << "sampling must not drop the messages themselves";
    EXPECT_EQ(st.stamped, 0u) << "rate 0: every span stays unstamped";
    EXPECT_EQ(st.sampledCounter, 0u);
    EXPECT_EQ(emitEventsNamed("req"), 0u) << "no 's' flow events without admitted spans";
}

TEST_F(SamplingTest, FractionalRateAdmitsExactlyEveryNth) {
    obs::Tracer::global().setEnabled(true);
    const RunStats st = runOneWay(0.25, 40);
    obs::Tracer::global().setEnabled(false);

    // Single emitting thread, period 4, 40 sends: exactly 10 admissions at
    // any countdown phase — the decision is deterministic, not statistical.
    EXPECT_EQ(st.stamped, 10u);
    EXPECT_EQ(st.sampledCounter, 10u);
    EXPECT_EQ(emitEventsNamed("req"), 10u);
}

TEST_F(SamplingTest, HopHistogramCountMatchesSamplerAdmissions) {
    obs::Monitor::global().setEnabled(true);
    const RunStats st = runOneWay(0.25, 40);
    obs::Monitor::global().setEnabled(false);

    const auto* hops = st.snapshot.histogram("rt.hop_latency_seconds");
    ASSERT_NE(hops, nullptr);
    EXPECT_EQ(hops->count, st.sampledCounter)
        << "every admitted span is measured once; unadmitted spans never reach the monitor";
    EXPECT_EQ(hops->count, 10u);
}

TEST_F(SamplingTest, SpanIdsStayUniqueUnderSampling) {
    obs::Tracer::global().setEnabled(true);
    obs::Registry reg;
    reg.setSpanSamplingRate(0.5);
    obs::ScopedRegistry scope(&reg);

    rt::Controller ctl{"ctl"};
    Client client{"client"};
    Sink sink{"sink"};
    rt::connect(client.port, sink.port);
    ctl.attach(client);
    ctl.attach(sink);
    for (int i = 0; i < 30; ++i) client.port.send("req");
    ctl.dispatchAll();
    obs::Tracer::global().setEnabled(false);

    std::set<std::uint64_t> ids;
    for (const auto& ev : obs::Tracer::global().collect()) {
        if (ev.phase == 's' && ev.id != 0) ids.insert(ev.id);
    }
    EXPECT_EQ(ids.size(), 15u) << "admitted spans keep globally unique ids";
}

TEST_F(SamplingTest, TraceHashesInvariantUnderSamplingRate) {
    // The sampler must only thin *observability*, never the simulation:
    // the same scenario at rate 1.0, 1% and 0 yields bit-identical
    // trajectories. Jobs inherit the process rate into their scoped
    // registries (ServeEngine::executeScenario).
    srv::ScenarioLibrary lib;
    srv::scenarios::registerBuiltins(lib);
    srv::ScenarioSpec spec;
    spec.scenario = "tank";
    spec.name = "tank";
    spec.horizon = 2.0;

    obs::Tracer::global().setEnabled(true);
    std::set<std::uint64_t> hashes;
    for (double rate : {1.0, 0.01, 0.0}) {
        obs::Registry::process().setSpanSamplingRate(rate);
        srv::ServeEngine engine;
        const srv::BatchResult r = engine.run({spec}, lib);
        ASSERT_EQ(r.results.size(), 1u);
        ASSERT_EQ(r.results[0].status, srv::ScenarioStatus::Succeeded)
            << r.results[0].error;
        hashes.insert(r.results[0].trace.hash());
    }
    obs::Tracer::global().setEnabled(false);
    obs::Registry::process().setSpanSamplingRate(1.0);
    EXPECT_EQ(hashes.size(), 1u) << "sampling rate leaked into simulation results";
}
