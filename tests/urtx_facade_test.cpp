/// \file urtx_facade_test.cpp
/// The urtx:: facade is sugar over the layer APIs, never a divergence:
/// a SystemBuilder-assembled system must be bit-identical to the same
/// system wired by hand, and reset() must restore bit-identical reruns.

#include <gtest/gtest.h>

#include <memory>
#include <span>

#include "srv/scenario.hpp"
#include "urtx.hpp"

namespace f = urtx::flow;
namespace rt = urtx::rt;
namespace sim = urtx::sim;
namespace srv = urtx::srv;

namespace {

rt::Protocol& pingProtocol() {
    static rt::Protocol p = [] {
        rt::Protocol q{"FacadePing"};
        q.out("crossed");
        return q;
    }();
    return p;
}

/// dx/dt = -k x with a zero-crossing event at x = half of x0.
class Decay final : public f::Streamer {
public:
    Decay(std::string name, f::Streamer* parent)
        : f::Streamer(std::move(name), parent),
          out(*this, "out", f::DPortDir::Out, f::FlowType::real()),
          ctl(*this, "ctl", pingProtocol(), /*conjugated=*/false) {
        setParam("k", 0.7);
        setParam("x0", 2.0);
    }

    f::DPort out;
    f::SPort ctl;

    std::size_t stateSize() const override { return 1; }
    void initState(double, std::span<double> x) override { x[0] = param("x0"); }
    void derivatives(double, std::span<const double> x, std::span<double> dx) override {
        dx[0] = -param("k") * x[0];
    }
    void outputs(double, std::span<const double> x) override { out.set(x[0]); }
    bool directFeedthrough() const override { return false; }
    bool hasEvent() const override { return true; }
    double eventFunction(double, std::span<const double> x) const override {
        return x[0] - 0.5 * param("x0");
    }
    void onEvent(double t, bool rising) override {
        if (!rising) ctl.send("crossed", t);
    }
};

class Watcher final : public rt::Capsule {
public:
    explicit Watcher(std::string name)
        : rt::Capsule(std::move(name)), port(*this, "port", pingProtocol(), true) {}
    rt::Port port;
    int crossings = 0;

protected:
    void onMessage(const rt::Message& m) override {
        if (m.signal == rt::signal("crossed")) ++crossings;
    }
};

std::uint64_t runAndHash(sim::HybridSystem& sys, Decay& plant) {
    (void)plant;
    sys.run(4.0, sim::ExecutionMode::SingleThread);
    return srv::TraceData::from(sys.trace()).hash();
}

} // namespace

TEST(UrtxFacadeTest, BuilderMatchesLayerApiBitForBit) {
    std::uint64_t layerHash = 0;
    int layerCrossings = 0;
    {
        f::Streamer group{"group"};
        Decay plant("plant", &group);
        Watcher watcher("watcher");

        sim::HybridSystem sys;
        sys.addCapsule(watcher);
        sys.addStreamerGroup(group, urtx::solver::makeIntegrator("RK4"), 0.01);
        rt::connect(watcher.port, plant.ctl.rtPort());
        sys.trace().channel("x", [&] { return plant.out.get(); });
        layerHash = runAndHash(sys, plant);
        layerCrossings = watcher.crossings;
    }

    f::Streamer group{"group"};
    Decay plant("plant", &group);
    Watcher watcher("watcher");

    urtx::SystemBuilder b;
    b.capsule(watcher)
        .streamer(group, "RK4", 0.01)
        .flow(watcher.port, plant.ctl)
        .trace("x", [&] { return plant.out.get(); });
    auto sys = b.build();

    EXPECT_EQ(runAndHash(*sys, plant), layerHash);
    EXPECT_EQ(watcher.crossings, layerCrossings);
    EXPECT_GT(watcher.crossings, 0);
}

TEST(UrtxFacadeTest, NamedControllerIsCreatedOnceAndReused) {
    Watcher a("a");
    Watcher b("b");
    urtx::SystemBuilder builder;
    builder.controller("io").capsule(a).controller("io").capsule(b);
    sim::HybridSystem& sys = builder.peek();
    // Default main controller plus exactly one "io" despite two mentions.
    ASSERT_EQ(sys.controllers().size(), 2u);
    EXPECT_EQ(sys.controllers()[1]->name(), "io");
}

TEST(UrtxFacadeTest, ResetRestoresBitIdenticalRuns) {
    f::Streamer group{"group"};
    Decay plant("plant", &group);
    Watcher watcher("watcher");

    urtx::SystemBuilder b;
    b.capsule(watcher)
        .streamer(group, "RK45", 0.02)
        .flow(watcher.port, plant.ctl)
        .trace("x", [&] { return plant.out.get(); });
    auto sys = b.build();

    const std::uint64_t first = runAndHash(*sys, plant);
    const int firstCrossings = watcher.crossings;

    sys->reset();
    EXPECT_EQ(sys->trace().rows(), 0u);

    const std::uint64_t second = runAndHash(*sys, plant);
    EXPECT_EQ(second, first);
    EXPECT_EQ(watcher.crossings, 2 * firstCrossings);
}

TEST(UrtxFacadeTest, LastRunnerExposesTheNewestGroup) {
    f::Streamer g1{"g1"};
    Decay d1("d1", &g1);
    f::Streamer g2{"g2"};
    Decay d2("d2", &g2);

    urtx::SystemBuilder b;
    b.streamer(g1, "Euler", 0.01);
    f::SolverRunner* first = &b.lastRunner();
    b.streamer(g2, "Euler", 0.01);
    EXPECT_NE(&b.lastRunner(), first);
    auto sys = b.build();
    sys->run(0.5, sim::ExecutionMode::SingleThread);
    EXPECT_GT(d1.out.get(), 0.0);
    EXPECT_GT(d2.out.get(), 0.0);
}
