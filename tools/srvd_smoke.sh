#!/usr/bin/env sh
# Daemon smoke test: start urtx_served on a throwaway Unix socket, push a
# batch through urtx_client in strict mode, then SIGTERM the daemon and
# require a clean drain. Usage:
#
#   srvd_smoke.sh <urtx_served> <urtx_client> <batch.json>
#
# Exit 0 only when every job verdict passed AND the daemon drained on
# SIGTERM with exit code 0. Used by ctest (urtx_served_smoke) and the
# release CI leg.
set -eu

SERVED=$1
CLIENT=$2
BATCH=$3

DIR=$(mktemp -d)
SOCK="$DIR/srvd.sock"
trap 'kill "$SERVED_PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

"$SERVED" --socket "$SOCK" --workers 2 --quiet &
SERVED_PID=$!

# Wait for the listener (the daemon unlinks a stale path, then binds).
i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "FAIL: $SOCK never appeared" >&2
        exit 1
    fi
    sleep 0.1
done

"$CLIENT" --socket "$SOCK" --strict "$BATCH" > "$DIR/records.jsonl"
RECORDS=$(wc -l < "$DIR/records.jsonl")
echo "client streamed $RECORDS records, all verdicts passed"

# Second pass must be served from the result cache, bit-identically.
"$CLIENT" --socket "$SOCK" --strict "$BATCH" > "$DIR/records2.jsonl"
if ! grep -q '"cached_result": true' "$DIR/records2.jsonl"; then
    echo "FAIL: second pass produced no cached_result records" >&2
    exit 1
fi
echo "second pass replayed from the result cache"

# Live observability verbs against the same daemon: the metrics verb must
# return scrapeable exposition text that saw the jobs above, and the health
# verb must answer ok with the sampling state embedded.
"$CLIENT" --socket "$SOCK" --metrics > "$DIR/metrics.txt"
if ! grep -q '^# TYPE urtx_srvd_jobs_received counter$' "$DIR/metrics.txt"; then
    echo "FAIL: metrics verb returned no exposition TYPE line" >&2
    exit 1
fi
if grep -q '^urtx_srvd_jobs_received 0$' "$DIR/metrics.txt"; then
    echo "FAIL: metrics verb did not see the jobs this script ran" >&2
    exit 1
fi
echo "metrics verb returned live exposition text"

"$CLIENT" --socket "$SOCK" --health > "$DIR/health.json"
for needle in '"op": "health"' '"status": "ok"' '"draining": false' '"sampling":'; do
    if ! grep -qF "$needle" "$DIR/health.json"; then
        echo "FAIL: health verb response lacks $needle" >&2
        cat "$DIR/health.json" >&2
        exit 1
    fi
done
echo "health verb answered ok"

"$CLIENT" --socket "$SOCK" --trace --trace-last 100 > "$DIR/trace.json"
for needle in '"op": "trace"' '"status": "ok"' '"traceEvents":'; do
    if ! grep -qF "$needle" "$DIR/trace.json"; then
        echo "FAIL: trace verb response lacks $needle" >&2
        cat "$DIR/trace.json" >&2
        exit 1
    fi
done
echo "trace verb returned an embedded Chrome trace"

kill -TERM "$SERVED_PID"
STATUS=0
wait "$SERVED_PID" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
    echo "FAIL: urtx_served exited $STATUS on SIGTERM" >&2
    exit 1
fi
echo "daemon drained cleanly on SIGTERM"
