#!/usr/bin/env sh
# Daemon smoke test: start urtx_served on a throwaway Unix socket, push a
# batch through urtx_client in strict mode, then SIGTERM the daemon and
# require a clean drain. Usage:
#
#   srvd_smoke.sh <urtx_served> <urtx_client> <batch.json>
#
# Exit 0 only when every job verdict passed AND the daemon drained on
# SIGTERM with exit code 0. Used by ctest (urtx_served_smoke) and the
# release CI leg.
set -eu

SERVED=$1
CLIENT=$2
BATCH=$3

DIR=$(mktemp -d)
SOCK="$DIR/srvd.sock"
trap 'kill "$SERVED_PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

# Fast stats ticks so the windowed-rates assertion below doesn't have to
# wait out the 1 s default cadence.
"$SERVED" --socket "$SOCK" --workers 2 --stats-tick 0.05 --quiet &
SERVED_PID=$!

# Wait for the listener (the daemon unlinks a stale path, then binds).
i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "FAIL: $SOCK never appeared" >&2
        exit 1
    fi
    sleep 0.1
done

"$CLIENT" --socket "$SOCK" --strict "$BATCH" > "$DIR/records.jsonl"
RECORDS=$(wc -l < "$DIR/records.jsonl")
echo "client streamed $RECORDS records, all verdicts passed"

# Second pass must be served from the result cache, bit-identically.
"$CLIENT" --socket "$SOCK" --strict "$BATCH" > "$DIR/records2.jsonl"
if ! grep -q '"cached_result": true' "$DIR/records2.jsonl"; then
    echo "FAIL: second pass produced no cached_result records" >&2
    exit 1
fi
echo "second pass replayed from the result cache"

# The stats verb must report nonzero windowed request rates after the two
# passes above. Rates are snapshot deltas, so retry briefly while the
# ticker catches up.
i=0
while :; do
    "$CLIENT" --socket "$SOCK" --stats > "$DIR/stats.json"
    for needle in '"op": "stats"' '"status": "ok"' '"ticker":' '"rates":' \
                  '"latency_seconds":' '"wcet":'; do
        if ! grep -qF "$needle" "$DIR/stats.json"; then
            echo "FAIL: stats verb response lacks $needle" >&2
            cat "$DIR/stats.json" >&2
            exit 1
        fi
    done
    if grep -o '"req_per_s": [0-9.eE+-]*' "$DIR/stats.json" |
        awk '{ if ($2 + 0 > 0) found = 1 } END { exit found ? 0 : 1 }'; then
        break
    fi
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "FAIL: stats verb never reported a nonzero windowed request rate" >&2
        cat "$DIR/stats.json" >&2
        exit 1
    fi
    sleep 0.1
done
echo "stats verb reported nonzero windowed request rates"

# A profiled job (distinct horizon so the result cache can't answer it)
# must echo a stage table whose offsets are monotone non-decreasing in the
# rendered (canonical) order.
echo '{"scenario": "tank", "name": "prof-smoke", "horizon": 2.75, "mode": "single"}' |
    "$CLIENT" --socket "$SOCK" --profile --strict - > "$DIR/profiled.jsonl"
STAGES=$(sed -n 's/.*"stages": {\([^}]*\)}.*/\1/p' "$DIR/profiled.jsonl")
if [ -z "$STAGES" ]; then
    echo "FAIL: profiled job record carries no stage table" >&2
    cat "$DIR/profiled.jsonl" >&2
    exit 1
fi
if ! printf '%s\n' "$STAGES" | awk -F'[:,]' '{
        prev = -1
        for (i = 2; i <= NF; i += 2) {
            v = $i + 0
            if (v < prev) exit 1
            prev = v
        }
    }'; then
    echo "FAIL: profiled stage offsets are not monotone: $STAGES" >&2
    exit 1
fi
echo "profiled job echoed a monotone stage table"

# Third pass over the binary framing: the generated wire protocol must
# produce records identical to the JSON passes (same names, same trace
# hashes — the client re-renders decoded frames through the same
# renderer), not merely "a" result.
"$CLIENT" --socket "$SOCK" --strict --binary "$BATCH" > "$DIR/records_bin.jsonl"
extract_hashes() {
    sed -n 's/.*"name": "\([^"]*\)".*"trace_hash": "\([^"]*\)".*/\1 \2/p' "$1" | sort
}
extract_hashes "$DIR/records.jsonl" > "$DIR/hashes_json.txt"
extract_hashes "$DIR/records_bin.jsonl" > "$DIR/hashes_bin.txt"
if ! cmp -s "$DIR/hashes_json.txt" "$DIR/hashes_bin.txt"; then
    echo "FAIL: binary pass trace hashes differ from the JSON pass" >&2
    diff "$DIR/hashes_json.txt" "$DIR/hashes_bin.txt" >&2 || true
    exit 1
fi
if [ ! -s "$DIR/hashes_json.txt" ]; then
    echo "FAIL: no name/trace_hash pairs extracted to compare" >&2
    exit 1
fi
echo "binary pass produced bit-identical trace hashes"

# Control verbs ride the binary framing too (Control/ControlResponse
# frames carry the JSON text verbatim).
"$CLIENT" --socket "$SOCK" --binary --health > "$DIR/health_bin.json"
if ! grep -qF '"status": "ok"' "$DIR/health_bin.json"; then
    echo "FAIL: binary health verb did not answer ok" >&2
    cat "$DIR/health_bin.json" >&2
    exit 1
fi
echo "binary health verb answered ok"

# Live observability verbs against the same daemon: the metrics verb must
# return scrapeable exposition text that saw the jobs above, and the health
# verb must answer ok with the sampling state embedded.
"$CLIENT" --socket "$SOCK" --metrics > "$DIR/metrics.txt"
if ! grep -q '^# TYPE urtx_srvd_jobs_received counter$' "$DIR/metrics.txt"; then
    echo "FAIL: metrics verb returned no exposition TYPE line" >&2
    exit 1
fi
if grep -q '^urtx_srvd_jobs_received 0$' "$DIR/metrics.txt"; then
    echo "FAIL: metrics verb did not see the jobs this script ran" >&2
    exit 1
fi
echo "metrics verb returned live exposition text"

"$CLIENT" --socket "$SOCK" --health > "$DIR/health.json"
for needle in '"op": "health"' '"status": "ok"' '"draining": false' '"sampling":'; do
    if ! grep -qF "$needle" "$DIR/health.json"; then
        echo "FAIL: health verb response lacks $needle" >&2
        cat "$DIR/health.json" >&2
        exit 1
    fi
done
echo "health verb answered ok"

"$CLIENT" --socket "$SOCK" --trace --trace-last 100 > "$DIR/trace.json"
for needle in '"op": "trace"' '"status": "ok"' '"traceEvents":'; do
    if ! grep -qF "$needle" "$DIR/trace.json"; then
        echo "FAIL: trace verb response lacks $needle" >&2
        cat "$DIR/trace.json" >&2
        exit 1
    fi
done
echo "trace verb returned an embedded Chrome trace"

# Model upload: define the committed tank model document, run it cold and
# then warm/cached, and require the trace hash to be bit-identical to the
# builtin tank factory at the same horizon/params.
MODEL="$(dirname "$0")/../examples/models/tank.model.json"
if [ -f "$MODEL" ]; then
    echo '{"scenario": "tank", "name": "builtin-ref", "horizon": 37.5, "mode": "single"}' |
        "$CLIENT" --socket "$SOCK" --strict --quiet - > "$DIR/model_ref.jsonl"
    echo '{"scenario": "tank-model", "name": "uploaded", "horizon": 37.5, "mode": "single"}' |
        "$CLIENT" --socket "$SOCK" --strict --quiet --define-model "$MODEL" - \
            > "$DIR/model_up.jsonl"
    echo '{"scenario": "tank-model", "name": "uploaded-warm", "horizon": 37.5, "mode": "single"}' |
        "$CLIENT" --socket "$SOCK" --strict --quiet - > "$DIR/model_warm.jsonl"
    if ! grep -qF '"status": "ok", "op": "define_scenario", "model": "tank-model"' \
        "$DIR/model_up.jsonl"; then
        echo "FAIL: define_scenario did not accept the tank model" >&2
        cat "$DIR/model_up.jsonl" >&2
        exit 1
    fi
    REF_HASH=$(sed -n 's/.*"trace_hash": "\([^"]*\)".*/\1/p' "$DIR/model_ref.jsonl")
    UP_HASH=$(sed -n 's/.*"trace_hash": "\([^"]*\)".*/\1/p' "$DIR/model_up.jsonl")
    WARM_HASH=$(sed -n 's/.*"trace_hash": "\([^"]*\)".*/\1/p' "$DIR/model_warm.jsonl")
    if [ -z "$REF_HASH" ] || [ "$REF_HASH" != "$UP_HASH" ] ||
        [ "$REF_HASH" != "$WARM_HASH" ]; then
        echo "FAIL: uploaded tank model hashes ($UP_HASH / $WARM_HASH) != builtin ($REF_HASH)" >&2
        exit 1
    fi
    if ! grep -q '"cached_result": true\|"warm_reuse": true' "$DIR/model_warm.jsonl"; then
        echo "FAIL: second tank-model run was neither warm nor cached" >&2
        cat "$DIR/model_warm.jsonl" >&2
        exit 1
    fi
    echo "uploaded tank model is bit-identical to the builtin factory (warm/cached too)"

    "$CLIENT" --socket "$SOCK" --list-scenarios > "$DIR/scenarios.json"
    for needle in '"op": "list_scenarios"' '"name": "tank-model"' '"schema":'; do
        if ! grep -qF "$needle" "$DIR/scenarios.json"; then
            echo "FAIL: list_scenarios response lacks $needle" >&2
            cat "$DIR/scenarios.json" >&2
            exit 1
        fi
    done
    echo "list_scenarios shows the uploaded model beside the builtins"
else
    echo "SKIP: $MODEL not found; model-upload leg skipped" >&2
fi

kill -TERM "$SERVED_PID"
STATUS=0
wait "$SERVED_PID" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
    echo "FAIL: urtx_served exited $STATUS on SIGTERM" >&2
    exit 1
fi
echo "daemon drained cleanly on SIGTERM"
