#!/usr/bin/env sh
# Fleet smoke test: spawn three urtx_served shards on ephemeral loopback
# ports, front them with urtx_router, and drive the whole tier end to end
# through urtx_client. Usage:
#
#   fleet_smoke.sh <urtx_served> <urtx_router> <urtx_client> <batch.json>
#
# Checks, in order: a strict batch pass through the router succeeds; the
# aggregated health verb sees all three shards; a second pass replays from
# the shards' result caches; after one shard is killed hard the same batch
# still succeeds with bit-identical trace hashes (consistent hashing moved
# only the dead shard's keys); and SIGTERM drains the router cleanly,
# propagating the drain to the surviving shards. Exit 0 only when every
# stage holds. Used by ctest (urtx_fleet_smoke) and the release CI leg.
set -eu

SERVED=$1
ROUTER=$2
CLIENT=$3
BATCH=$4

DIR=$(mktemp -d)
S1_PID=""; S2_PID=""; S3_PID=""; ROUTER_PID=""
trap 'kill $S1_PID $S2_PID $S3_PID $ROUTER_PID 2>/dev/null || true; rm -rf "$DIR"' EXIT

# A shard on an ephemeral port announces "PORT <n>" on stdout; scrape it.
spawn_shard() {
    "$SERVED" --port 0 --workers 1 --quiet > "$DIR/$1.port" &
    eval "$2=$!"
    i=0
    while ! grep -q '^PORT ' "$DIR/$1.port" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "FAIL: shard $1 never announced its port" >&2
            exit 1
        fi
        sleep 0.1
    done
}

spawn_shard s1 S1_PID
spawn_shard s2 S2_PID
spawn_shard s3 S3_PID
P1=$(awk '{print $2; exit}' "$DIR/s1.port")
P2=$(awk '{print $2; exit}' "$DIR/s2.port")
P3=$(awk '{print $2; exit}' "$DIR/s3.port")
echo "3 shards up on ports $P1 $P2 $P3"

# Fast probe knobs so ejection/health convergence doesn't stall the test.
"$ROUTER" --backend "s1=$P1" --backend "s2=$P2" --backend "s3=$P3" \
    --port 0 --probe-interval 0.1 --probe-timeout 0.5 --reconnect 0.1 \
    --shard-pid "$S2_PID" --shard-pid "$S3_PID" --quiet > "$DIR/router.port" &
ROUTER_PID=$!
i=0
while ! grep -q '^PORT ' "$DIR/router.port" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "FAIL: router never announced its port" >&2
        exit 1
    fi
    sleep 0.1
done
RPORT=$(awk '{print $2; exit}' "$DIR/router.port")
echo "router up on port $RPORT"

# The router connects to its backends asynchronously; wait until the
# aggregated health verb reports the full ring.
i=0
while :; do
    "$CLIENT" --tcp "$RPORT" --health > "$DIR/health.json" 2>/dev/null || true
    if grep -qF '"backends_up": 3' "$DIR/health.json"; then
        break
    fi
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "FAIL: router never admitted all 3 backends" >&2
        cat "$DIR/health.json" >&2
        exit 1
    fi
    sleep 0.1
done
for needle in '"op": "health"' '"status": "ok"' '"shards":' '"fleet":'; do
    if ! grep -qF "$needle" "$DIR/health.json"; then
        echo "FAIL: aggregated health lacks $needle" >&2
        cat "$DIR/health.json" >&2
        exit 1
    fi
done
echo "aggregated health sees all 3 shards"

# Pass 1: strict batch through the router (names restored, all verdicts).
"$CLIENT" --tcp "$RPORT" --strict "$BATCH" > "$DIR/pass1.jsonl"
echo "pass 1 streamed $(wc -l < "$DIR/pass1.jsonl") records through the router"

# Pass 2: consistent hashing pins each job to the same shard, so the rerun
# must replay from the fleet's result caches.
"$CLIENT" --tcp "$RPORT" --strict "$BATCH" > "$DIR/pass2.jsonl"
if ! grep -q '"cached_result": true' "$DIR/pass2.jsonl"; then
    echo "FAIL: second pass produced no cached_result records" >&2
    exit 1
fi
echo "pass 2 replayed from the fleet's result caches"

extract_hashes() {
    sed -n 's/.*"name": "\([^"]*\)".*"trace_hash": "\([^"]*\)".*/\1 \2/p' "$1" | sort
}

# Model upload through the router: define_scenario must land on every live
# shard, and the uploaded models must run bit-identically to their builtin
# factories — over JSON and binary framing alike.
MODELS="$(dirname "$0")/../examples/models"
hash_of() { sed -n 's/.*"name": "'"$2"'".*"trace_hash": "\([^"]*\)".*/\1/p' "$1"; }
if [ -f "$MODELS/tank.model.json" ] && [ -f "$MODELS/pendulum.model.json" ]; then
    "$CLIENT" --tcp "$RPORT" --strict --quiet \
        --define-model "$MODELS/tank.model.json" \
        --define-model "$MODELS/pendulum.model.json" - > "$DIR/models.jsonl" <<'EOF'
{"scenario": "tank", "name": "tank-ref", "horizon": 41.5, "mode": "single"}
{"scenario": "tank-model", "name": "tank-up", "horizon": 41.5, "mode": "single"}
{"scenario": "pendulum", "name": "pend-ref", "horizon": 4.5, "mode": "single"}
{"scenario": "pendulum-model", "name": "pend-up", "horizon": 4.5, "mode": "single"}
EOF
    for shard in s1 s2 s3; do
        if ! grep -q "\"$shard\": {\"status\": \"ok\", \"op\": \"define_scenario\"" \
            "$DIR/models.jsonl"; then
            echo "FAIL: define_scenario fan-out missed shard $shard" >&2
            cat "$DIR/models.jsonl" >&2
            exit 1
        fi
    done
    if [ "$(hash_of "$DIR/models.jsonl" tank-ref)" != "$(hash_of "$DIR/models.jsonl" tank-up)" ] ||
        [ "$(hash_of "$DIR/models.jsonl" pend-ref)" != "$(hash_of "$DIR/models.jsonl" pend-up)" ] ||
        [ -z "$(hash_of "$DIR/models.jsonl" tank-ref)" ]; then
        echo "FAIL: uploaded models are not bit-identical to the builtins via the router" >&2
        cat "$DIR/models.jsonl" >&2
        exit 1
    fi
    echo '{"scenario": "tank-model", "name": "tank-bin", "horizon": 41.5, "mode": "single"}' |
        "$CLIENT" --tcp "$RPORT" --strict --quiet --binary - > "$DIR/model_bin.jsonl"
    if [ "$(hash_of "$DIR/models.jsonl" tank-ref)" != "$(hash_of "$DIR/model_bin.jsonl" tank-bin)" ]; then
        echo "FAIL: binary-framed tank-model hash differs from the builtin" >&2
        cat "$DIR/model_bin.jsonl" >&2
        exit 1
    fi
    echo "uploaded models landed on all 3 shards, bit-identical over JSON and binary"
else
    echo "SKIP: committed model documents not found; model leg skipped" >&2
fi
extract_hashes "$DIR/pass1.jsonl" > "$DIR/hashes1.txt"
if [ ! -s "$DIR/hashes1.txt" ]; then
    echo "FAIL: no name/trace_hash pairs in pass 1" >&2
    exit 1
fi

# Kill one shard hard (no drain) and rerun: the router must eject it,
# reroute its keys to the ring successor, and the replayed batch must stay
# bit-identical — deterministic runs survive failover.
kill -9 "$S1_PID"
"$CLIENT" --tcp "$RPORT" --strict "$BATCH" > "$DIR/pass3.jsonl"
extract_hashes "$DIR/pass3.jsonl" > "$DIR/hashes3.txt"
if ! cmp -s "$DIR/hashes1.txt" "$DIR/hashes3.txt"; then
    echo "FAIL: post-failover trace hashes differ from pass 1" >&2
    diff "$DIR/hashes1.txt" "$DIR/hashes3.txt" >&2 || true
    exit 1
fi
echo "shard kill survived: batch bit-identical on the surviving shards"

i=0
while :; do
    "$CLIENT" --tcp "$RPORT" --health > "$DIR/health2.json" 2>/dev/null || true
    if grep -qF '"backends_up": 2' "$DIR/health2.json"; then
        break
    fi
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "FAIL: health never reported the dead shard's ejection" >&2
        cat "$DIR/health2.json" >&2
        exit 1
    fi
    sleep 0.1
done
if ! grep -qF '"backend_ejections"' "$DIR/health2.json"; then
    echo "FAIL: health carries no backend_ejections counter" >&2
    exit 1
fi
echo "health reports the ejection (2 backends up)"

# Restart the dead shard on its old port: the router must re-admit it and
# replay the uploaded model documents, so the re-admitted shard serves the
# same catalogue as the fleet.
if [ -f "$MODELS/tank.model.json" ]; then
    "$SERVED" --port "$P1" --workers 1 --quiet > "$DIR/s1b.port" &
    S1_PID=$!
    i=0
    while :; do
        "$CLIENT" --tcp "$RPORT" --health > "$DIR/health3.json" 2>/dev/null || true
        if grep -qF '"backends_up": 3' "$DIR/health3.json"; then
            break
        fi
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "FAIL: restarted shard was never re-admitted" >&2
            cat "$DIR/health3.json" >&2
            exit 1
        fi
        sleep 0.1
    done
    "$CLIENT" --tcp "$RPORT" --list-scenarios > "$DIR/scenarios.json"
    # One "tank-model" entry per shard payload plus one in the fleet union
    # (compact, no space): fewer than 4 means a shard (the re-admitted one)
    # missed the replay.
    COUNT=$(grep -o '"name": *"tank-model"' "$DIR/scenarios.json" | wc -l)
    if [ "$COUNT" -lt 4 ]; then
        echo "FAIL: re-admitted shard did not replay the uploaded model ($COUNT/4)" >&2
        cat "$DIR/scenarios.json" >&2
        exit 1
    fi
    echo "re-admitted shard replayed the uploaded models (list_scenarios agrees fleet-wide)"
fi

# Fleet-wide graceful drain: SIGTERM to the router must exit 0 and pass
# SIGTERM to the shards it was given; the surviving shards must drain to 0.
kill -TERM "$ROUTER_PID"
STATUS=0
wait "$ROUTER_PID" || STATUS=$?
ROUTER_PID=""
if [ "$STATUS" -ne 0 ]; then
    echo "FAIL: urtx_router exited $STATUS on SIGTERM" >&2
    exit 1
fi
for pid in "$S2_PID" "$S3_PID"; do
    STATUS=0
    wait "$pid" || STATUS=$?
    if [ "$STATUS" -ne 0 ]; then
        echo "FAIL: shard $pid exited $STATUS after propagated drain" >&2
        exit 1
    fi
done
S2_PID=""; S3_PID=""
echo "fleet drained cleanly on SIGTERM"
