/// \file bench_solver.cpp
/// Supporting experiment S1: why the extension needs a *solver* stereotype
/// at all — "these equations must be continuous computed, and UML-RT has a
/// 'run-to-complete' semantic".
///
/// Sweeps every integration strategy over three canonical systems (linear
/// decay, nonlinear oscillator, stiff decay) and prints the accuracy-cost
/// frontier (global error vs derivative evaluations), plus google-benchmark
/// per-step costs. Expected shape: higher-order methods dominate except at
/// very loose accuracy; implicit methods pay per-step (Newton+LU) but are
/// the only stable choice on the stiff system at large steps.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "solver/solver.hpp"

namespace s = urtx::solver;

namespace {

/// High-accuracy Van der Pol endpoint, filled in by frontierTable().
double vdpolRef0 = 0.0;

struct Problem {
    std::string name;
    std::size_t dim;
    std::function<void(double, const s::Vec&, s::Vec&)> rhs;
    s::Vec x0;
    double tEnd;
    std::function<double(const s::Vec&)> errorVs; // |x - exact| at tEnd
};

std::vector<Problem> problems() {
    std::vector<Problem> ps;
    ps.push_back({"decay  dx=-x",
                  1,
                  [](double, const s::Vec& x, s::Vec& dx) { dx[0] = -x[0]; },
                  {1.0},
                  2.0,
                  [](const s::Vec& x) { return std::abs(x[0] - std::exp(-2.0)); }});
    ps.push_back({"vdpol  mu=1",
                  2,
                  [](double, const s::Vec& x, s::Vec& dx) {
                      dx[0] = x[1];
                      dx[1] = (1.0 - x[0] * x[0]) * x[1] - x[0];
                  },
                  {2.0, 0.0},
                  2.0,
                  [](const s::Vec& x) { return std::abs(x[0] - vdpolRef0); }});
    ps.push_back({"stiff  dx=-500x",
                  1,
                  [](double, const s::Vec& x, s::Vec& dx) { dx[0] = -500.0 * x[0]; },
                  {1.0},
                  0.1,
                  [](const s::Vec& x) { return std::abs(x[0] - std::exp(-50.0)); }});
    return ps;
}

double vdpolRefValue() {
    // High-accuracy reference for the Van der Pol endpoint.
    s::FnOde sys(2, [](double, const s::Vec& x, s::Vec& dx) {
        dx[0] = x[1];
        dx[1] = (1.0 - x[0] * x[0]) * x[1] - x[0];
    });
    s::Rk45Integrator rk(1e-13, 1e-14);
    s::Vec x{2.0, 0.0};
    rk.step(sys, 0.0, 2.0, x);
    return x[0];
}

void frontierTable() {
    std::puts("==============================================================");
    std::puts("S1 — accuracy-cost frontier of the solver strategies");
    std::puts("==============================================================");
    vdpolRef0 = vdpolRefValue();

    for (const Problem& p : problems()) {
        std::printf("\nproblem: %s,  T = %.2f\n", p.name.c_str(), p.tEnd);
        std::printf("  %-14s %8s %14s %12s %10s\n", "method", "steps", "global err",
                    "f-evals", "stable?");
        for (const char* name :
             {"Euler", "Heun", "AB2", "RK4", "RK45", "ImplicitEuler", "Trapezoidal"}) {
            for (int n : {50, 400, 3200}) {
                auto m = s::makeIntegrator(name);
                s::FnOde sys(p.dim, p.rhs);
                s::Vec x = p.x0;
                const double dt = p.tEnd / n;
                bool blewUp = false;
                try {
                    double t = 0;
                    for (int i = 0; i < n; ++i, t += dt) {
                        m->step(sys, t, dt, x);
                        if (!std::isfinite(x[0]) || std::abs(x[0]) > 1e12) {
                            blewUp = true;
                            break;
                        }
                    }
                } catch (const std::exception&) {
                    blewUp = true; // Newton divergence on huge steps
                }
                const double err = blewUp ? INFINITY : p.errorVs(x);
                std::printf("  %-14s %8d %14.3e %12llu %10s\n", name, n, err,
                            static_cast<unsigned long long>(sys.evals()),
                            blewUp ? "NO" : "yes");
            }
        }
    }
    std::puts("\nShape check: error falls as h^order for the explicit methods; the");
    std::puts("stiff system diverges for explicit methods at 50 steps (dt=2e-3,");
    std::puts("|1-500dt|>1) while the A-stable implicit methods stay bounded.");
    std::puts("\nPer-step costs follow (google-benchmark):\n");
}

void BM_step(benchmark::State& state, const char* method, std::size_t dim) {
    auto m = s::makeIntegrator(method);
    s::FnOde sys(dim, [](double, const s::Vec& x, s::Vec& dx) {
        for (std::size_t i = 0; i < x.size(); ++i)
            dx[i] = -x[i] + (i > 0 ? 0.1 * x[i - 1] : 0.0);
    });
    s::Vec x(dim, 1.0);
    double t = 0;
    for (auto _ : state) {
        m->step(sys, t, 1e-4, x);
        t += 1e-4;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void registerStepBenches() {
    for (const char* method :
         {"Euler", "Heun", "AB2", "RK4", "RK45", "ImplicitEuler", "Trapezoidal"}) {
        for (std::size_t dim : {1u, 8u, 64u}) {
            benchmark::RegisterBenchmark(
                (std::string("BM_step/") + method + "/dim:" + std::to_string(dim)).c_str(),
                [method, dim](benchmark::State& st) { BM_step(st, method, dim); });
        }
    }
}

void BM_zero_crossing_localize(benchmark::State& state) {
    s::FnOde sys(2, [](double, const s::Vec& x, s::Vec& dx) {
        dx[0] = x[1];
        dx[1] = -9.81;
    });
    s::Rk4Integrator rk4;
    for (auto _ : state) {
        s::ZeroCrossingDetector det(1e-10);
        det.addEvent([](double, const s::Vec& x) { return x[0]; });
        s::Vec x{10.0, 0.0};
        det.prime(0.0, x);
        double t = 0;
        s::Crossing c{};
        bool found = false;
        while (!found) {
            s::Vec x0 = x;
            rk4.step(sys, t, 0.1, x);
            found = det.check(sys, rk4, t, 0.1, x0, x, c);
            t += 0.1;
        }
        benchmark::DoNotOptimize(c.t);
    }
}

} // namespace
BENCHMARK(BM_zero_crossing_localize);

int main(int argc, char** argv) {
    frontierTable();
    registerStepBenches();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
