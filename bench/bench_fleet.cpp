/// \file bench_fleet.cpp
/// Fleet-tier throughput: a RouterDaemon fronting N in-process urtx_served
/// shards (loopback TCP, ephemeral ports), driven by one pipelined JSON
/// client over a 600-distinct-job working set that deliberately exceeds a
/// single shard's 256-entry result cache.
///
/// The claim being measured is *aggregate cache capacity scaling*: with
/// one shard the working set cycles through the LRU result cache and every
/// request pays a full scenario solve; with four shards consistent hashing
/// splits the same keys ~150 per shard, the whole set fits in the fleet's
/// 4 x 256 aggregate capacity, and steady-state passes replay from cache.
/// Rows report sustained QPS over three timed passes (after one untimed
/// populate pass) and the fleet result-cache hit ratio measured over the
/// timed window via the router's aggregated health verb. A standalone
/// (router-less) single daemon runs the same workload to anchor the
/// baseline the router must not regress.
///
/// A failover probe runs against the hot 4-shard fleet: one shard is
/// stopped, detection is the time for the router to eject it, recovery is
/// the time for a 64-job burst (every reply required, no duplicates) to
/// complete on the survivors.
///
/// A machine-readable summary is written to BENCH_fleet.json. Headline
/// acceptance: 4-shard cached QPS >= 3x the 1-shard QPS through the same
/// router, and the 4-shard per-shard hit ratio >= the standalone daemon's.

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "srv/daemon/daemon.hpp"
#include "srv/json.hpp"
#include "srv/router/router.hpp"
#include "srv/scenarios/scenarios.hpp"

namespace srv = urtx::srv;
namespace router = urtx::srv::router;
namespace json = urtx::srv::json;
namespace scen = urtx::srv::scenarios;

namespace {

constexpr std::size_t kDistinct = 600; ///< > one shard's result cache (256)
constexpr int kPasses = 3;             ///< timed steady-state passes
constexpr std::size_t kWindow = 64;    ///< client pipelining depth

using clock_t_ = std::chrono::steady_clock;

bool sendAll(int fd, const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
        if (n <= 0) return false;
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/// Pipelined newline-JSON client on the test end of an adopted socketpair.
class PipeClient {
public:
    explicit PipeClient(const std::function<void(int)>& adopt) {
        int sv[2] = {-1, -1};
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return;
        fd_ = sv[0];
        adopt(sv[1]);
    }
    ~PipeClient() {
        if (fd_ >= 0) ::close(fd_);
    }
    bool ok() const { return fd_ >= 0; }

    bool sendLine(const std::string& line) {
        return sendAll(fd_, line + "\n");
    }

    bool readLine(std::string* out) {
        for (;;) {
            const auto nl = pending_.find('\n');
            if (nl != std::string::npos) {
                out->assign(pending_, 0, nl);
                pending_.erase(0, nl + 1);
                return true;
            }
            char chunk[65536];
            const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0) return false;
            pending_.append(chunk, static_cast<std::size_t>(n));
        }
    }

    /// One control verb round-trip, parsed.
    bool verb(const std::string& line, json::Value* out) {
        if (!sendLine(line)) return false;
        std::string reply;
        if (!readLine(&reply)) return false;
        const auto v = json::parse(reply);
        if (!v) return false;
        *out = *v;
        return true;
    }

private:
    int fd_ = -1;
    std::string pending_;
};

srv::DaemonConfig shardConfig() {
    srv::DaemonConfig cfg;
    cfg.engine.workers = 1;
    cfg.engine.scopedMetrics = false;
    cfg.engine.postmortems = false;
    cfg.warmCacheCapacity = 8;
    cfg.resultCacheCapacity = 256;
    cfg.tcpEphemeral = true;
    cfg.statsTickSeconds = 0.0;
    return cfg;
}

/// The working set: kDistinct tank jobs with distinct parameter overrides,
/// so each carries a distinct warm/result-cache key.
std::vector<std::string> makeJobs() {
    std::vector<std::string> jobs;
    jobs.reserve(kDistinct);
    for (std::size_t i = 0; i < kDistinct; ++i) {
        jobs.push_back("{\"scenario\": \"tank\", \"name\": \"w" + std::to_string(i) +
                       "\", \"horizon\": 4.0, \"mode\": \"single\", \"params\": "
                       "{\"qin\": " +
                       json::number(0.3 + 0.0003 * static_cast<double>(i)) + "}}");
    }
    return jobs;
}

struct WorkloadResult {
    double wallSeconds = 0;
    std::size_t completed = 0;
    std::size_t succeeded = 0;
};

/// Drive \p passes full passes over \p jobs with kWindow requests in
/// flight; counts replies by substring so parse cost stays off the path.
WorkloadResult runPasses(PipeClient& c, const std::vector<std::string>& jobs,
                         int passes) {
    WorkloadResult res;
    const std::size_t total = jobs.size() * static_cast<std::size_t>(passes);
    std::size_t sent = 0;
    std::string line;
    const auto start = clock_t_::now();
    while (res.completed < total) {
        while (sent < total && sent - res.completed < kWindow) {
            if (!c.sendLine(jobs[sent % jobs.size()])) return res;
            ++sent;
        }
        if (!c.readLine(&line)) return res;
        ++res.completed;
        if (line.find("\"status\": \"succeeded\"") != std::string::npos) {
            ++res.succeeded;
        }
    }
    res.wallSeconds = std::chrono::duration<double>(clock_t_::now() - start).count();
    return res;
}

struct CacheCounts {
    double hits = 0, misses = 0;
};

/// Result-cache hit/miss totals from a health document: the router's
/// aggregated "fleet" section when present, the daemon's own
/// "result_cache" section otherwise.
CacheCounts cacheCounts(const json::Value& health) {
    const json::Value* rc = nullptr;
    if (const json::Value* fleet = health.find("fleet")) {
        rc = fleet->find("result_cache");
    }
    if (rc == nullptr) rc = health.find("result_cache");
    CacheCounts c;
    if (rc != nullptr) {
        c.hits = rc->numOr("hits", 0);
        c.misses = rc->numOr("misses", 0);
    }
    return c;
}

struct Row {
    std::string mode;
    std::size_t shards = 0;
    double qps = 0;
    double hitRatio = 0; ///< over the timed window only
    std::size_t completed = 0;
    std::size_t succeeded = 0;
};

struct Fleet {
    std::vector<std::unique_ptr<srv::ServeDaemon>> shards;
    std::unique_ptr<router::RouterDaemon> rt;

    explicit Fleet(std::size_t n) {
        std::vector<std::uint16_t> ports;
        for (std::size_t i = 0; i < n; ++i) {
            shards.push_back(std::make_unique<srv::ServeDaemon>(shardConfig()));
            if (!shards.back()->start()) std::abort();
            ports.push_back(shards.back()->boundTcpPort());
        }
        router::RouterConfig cfg;
        for (std::size_t i = 0; i < n; ++i) {
            router::BackendAddress a;
            a.id = "s" + std::to_string(i);
            a.tcpPort = ports[i];
            cfg.backends.push_back(a);
        }
        cfg.probeIntervalSeconds = 0.1;
        cfg.probeTimeoutSeconds = 0.5;
        cfg.reconnectSeconds = 0.1;
        cfg.statsTickSeconds = 0.0;
        rt = std::make_unique<router::RouterDaemon>(std::move(cfg));
        if (!rt->start()) std::abort();
        const auto deadline = clock_t_::now() + std::chrono::seconds(10);
        while (rt->backendsUp() < n && clock_t_::now() < deadline) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        if (rt->backendsUp() < n) std::abort();
    }
    ~Fleet() {
        if (rt) rt->stop();
        for (auto& s : shards) s->stop();
    }
};

Row measureFleet(std::size_t n, const std::vector<std::string>& jobs) {
    Fleet fleet(n);
    PipeClient c([&](int fd) { fleet.rt->adoptConnection(fd); });
    if (!c.ok()) std::abort();

    runPasses(c, jobs, 1); // untimed populate pass

    json::Value before;
    if (!c.verb("{\"op\": \"health\"}", &before)) std::abort();
    const WorkloadResult w = runPasses(c, jobs, kPasses);
    json::Value after;
    if (!c.verb("{\"op\": \"health\"}", &after)) std::abort();

    const CacheCounts b = cacheCounts(before), a = cacheCounts(after);
    const double dh = a.hits - b.hits, dm = a.misses - b.misses;

    Row row;
    row.mode = "routed";
    row.shards = n;
    row.completed = w.completed;
    row.succeeded = w.succeeded;
    row.qps = w.wallSeconds > 0 ? static_cast<double>(w.completed) / w.wallSeconds : 0;
    row.hitRatio = (dh + dm) > 0 ? dh / (dh + dm) : 0;
    return row;
}

Row measureStandalone(const std::vector<std::string>& jobs) {
    srv::ServeDaemon daemon(shardConfig());
    if (!daemon.start()) std::abort();
    PipeClient c([&](int fd) { daemon.adoptConnection(fd); });
    if (!c.ok()) std::abort();

    runPasses(c, jobs, 1);
    json::Value before;
    if (!c.verb("{\"op\": \"health\"}", &before)) std::abort();
    const WorkloadResult w = runPasses(c, jobs, kPasses);
    json::Value after;
    if (!c.verb("{\"op\": \"health\"}", &after)) std::abort();
    daemon.stop();

    const CacheCounts b = cacheCounts(before), a = cacheCounts(after);
    const double dh = a.hits - b.hits, dm = a.misses - b.misses;

    Row row;
    row.mode = "standalone";
    row.shards = 1;
    row.completed = w.completed;
    row.succeeded = w.succeeded;
    row.qps = w.wallSeconds > 0 ? static_cast<double>(w.completed) / w.wallSeconds : 0;
    row.hitRatio = (dh + dm) > 0 ? dh / (dh + dm) : 0;
    return row;
}

struct FailoverResult {
    double detectSeconds = 0;
    double recoverSeconds = 0;
    std::size_t burstJobs = 0;
    std::size_t replies = 0;
    std::size_t succeeded = 0;
    bool noDuplicates = false;
};

/// Stop one shard of a hot 4-shard fleet and require a 64-job burst to
/// complete on the survivors: detection = ejection latency, recovery =
/// burst completion from the instant of the kill.
FailoverResult measureFailover(const std::vector<std::string>& jobs) {
    Fleet fleet(4);
    PipeClient c([&](int fd) { fleet.rt->adoptConnection(fd); });
    if (!c.ok()) std::abort();
    runPasses(c, jobs, 1); // make the caches hot

    FailoverResult res;
    res.burstJobs = 64;
    const auto t0 = clock_t_::now();
    fleet.shards[0]->stop();
    while (fleet.rt->backendsUp() != 3 &&
           clock_t_::now() - t0 < std::chrono::seconds(10)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    res.detectSeconds = std::chrono::duration<double>(clock_t_::now() - t0).count();

    std::set<std::string> names;
    for (std::size_t i = 0; i < res.burstJobs; ++i) {
        if (!c.sendLine(jobs[i])) std::abort();
    }
    std::string line;
    for (std::size_t i = 0; i < res.burstJobs; ++i) {
        if (!c.readLine(&line)) break;
        ++res.replies;
        if (line.find("\"status\": \"succeeded\"") != std::string::npos) {
            ++res.succeeded;
        }
        const auto v = json::parse(line);
        if (v) names.insert(v->strOr("name", ""));
    }
    res.recoverSeconds = std::chrono::duration<double>(clock_t_::now() - t0).count();
    res.noDuplicates = names.size() == res.replies;
    return res;
}

} // namespace

int main() {
    scen::registerBuiltins();
    const std::vector<std::string> jobs = makeJobs();
    std::printf("fleet throughput: %zu distinct jobs, %d timed passes, "
                "result cache 256/shard\n\n",
                kDistinct, kPasses);
    std::printf("%12s %8s %12s %12s %12s\n", "mode", "shards", "qps", "hit ratio",
                "succeeded");

    std::vector<Row> rows;
    rows.push_back(measureStandalone(jobs));
    for (const std::size_t n : {1u, 2u, 4u}) {
        rows.push_back(measureFleet(n, jobs));
    }
    for (const Row& r : rows) {
        std::printf("%12s %8zu %12.0f %12.3f %9zu/%zu\n", r.mode.c_str(), r.shards,
                    r.qps, r.hitRatio, r.succeeded, r.completed);
    }

    const Row& standalone = rows[0];
    const Row& one = rows[1];
    const Row& four = rows[3];
    const double speedup = one.qps > 0 ? four.qps / one.qps : 0;
    const bool scalingOk = speedup >= 3.0;
    const bool hitRatioOk = four.hitRatio >= standalone.hitRatio;
    std::printf("\n4-shard vs 1-shard routed QPS: %.2fx (bound >= 3x: %s)\n", speedup,
                scalingOk ? "ok" : "MISSED");
    std::printf("4-shard hit ratio %.3f vs standalone %.3f (>=: %s)\n", four.hitRatio,
                standalone.hitRatio, hitRatioOk ? "ok" : "MISSED");

    const FailoverResult fo = measureFailover(jobs);
    std::printf("failover: detect %.3fs, recover %.3fs, burst %zu/%zu succeeded, "
                "duplicates: %s\n",
                fo.detectSeconds, fo.recoverSeconds, fo.succeeded, fo.burstJobs,
                fo.noDuplicates ? "none" : "FOUND");

    std::ofstream f("BENCH_fleet.json");
    f << "{\n  \"benchmark\": \"fleet_router\",\n";
    f << "  \"distinct_jobs\": " << kDistinct << ",\n  \"timed_passes\": " << kPasses
      << ",\n  \"result_cache_per_shard\": 256,\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        char buf[224];
        std::snprintf(buf, sizeof(buf),
                      "    {\"mode\": \"%s\", \"shards\": %zu, \"qps\": %.0f, "
                      "\"hit_ratio\": %.4f, \"completed\": %zu, \"succeeded\": %zu}%s\n",
                      rows[i].mode.c_str(), rows[i].shards, rows[i].qps,
                      rows[i].hitRatio, rows[i].completed, rows[i].succeeded,
                      i + 1 < rows.size() ? "," : "");
        f << buf;
    }
    char buf[352];
    std::snprintf(buf, sizeof(buf),
                  "  ],\n  \"speedup_4shard_vs_1shard\": %.2f,\n"
                  "  \"cached_qps_scaling_ge_3x\": %s,\n"
                  "  \"per_shard_hit_ratio_ge_standalone\": %s,\n"
                  "  \"failover\": {\"fleet\": 4, \"detect_seconds\": %.4f, "
                  "\"recover_seconds\": %.4f, \"burst_jobs\": %zu, \"replies\": %zu, "
                  "\"succeeded\": %zu, \"no_duplicates\": %s}\n}\n",
                  speedup, scalingOk ? "true" : "false", hitRatioOk ? "true" : "false",
                  fo.detectSeconds, fo.recoverSeconds, fo.burstJobs, fo.replies,
                  fo.succeeded, fo.noDuplicates ? "true" : "false");
    f << buf;
    std::puts("\nwrote BENCH_fleet.json");
    return scalingOk && hitRatioOk && fo.replies == fo.burstJobs ? 0 : 1;
}
