/// \file bench_table1_stereotypes.cpp
/// Regenerates the paper's **Table 1** ("New stereotypes comparing with
/// UML-RT") and characterizes the runtime cost of each stereotype's core
/// operation, pairing every UML-RT concept with its extension counterpart:
///
///   capsule/port/connect      -> message send through ports (+ relays)
///   streamer/DPort/flow/relay -> dataflow refresh & relay duplication
///   protocol vs flow type     -> signal-direction check vs subset check
///   state machine vs solver   -> RTC dispatch vs one integration step
///   Time service vs Time      -> timer scheduling vs continuous clock read
///
/// The paper reports no numbers; EXPERIMENTS.md records the measured costs
/// next to the reproduced table.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>

#include "control/control.hpp"
#include "flow/flow.hpp"
#include "model/stereotype.hpp"
#include "obs/obs.hpp"
#include "rt/rt.hpp"

namespace rt = urtx::rt;
namespace f = urtx::flow;
namespace c = urtx::control;
namespace s = urtx::solver;

namespace {

rt::Protocol& benchProto() {
    static rt::Protocol p = [] {
        rt::Protocol q{"Bench"};
        q.out("ping").in("pong");
        return q;
    }();
    return p;
}

struct Sink : rt::Capsule {
    using rt::Capsule::Capsule;
    std::uint64_t got = 0;

protected:
    void onMessage(const rt::Message&) override { ++got; }
};

struct Plain : f::Streamer {
    using f::Streamer::Streamer;
};

// ------------------------------- UML-RT side --------------------------------

void BM_capsule_port_send_synchronous(benchmark::State& state) {
    Sink a{"a"}, b{"b"};
    rt::Port pa(a, "p", benchProto(), false);
    rt::Port pb(b, "p", benchProto(), true);
    rt::connect(pa, pb);
    for (auto _ : state) {
        pa.send("ping");
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_capsule_port_send_synchronous);

void BM_capsule_port_send_queued(benchmark::State& state) {
    rt::Controller ctl{"bench"};
    Sink a{"a"}, b{"b"};
    ctl.attach(b);
    rt::Port pa(a, "p", benchProto(), false);
    rt::Port pb(b, "p", benchProto(), true);
    rt::connect(pa, pb);
    for (auto _ : state) {
        pa.send("ping");
        ctl.dispatchOne();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_capsule_port_send_queued);

void BM_connect_relay_chain(benchmark::State& state) {
    // Message resolution across N relay boundaries.
    const int depth = static_cast<int>(state.range(0));
    Sink sender{"sender"};
    std::vector<std::unique_ptr<Sink>> shells;
    std::vector<std::unique_ptr<rt::Port>> relays;
    rt::Port out(sender, "out", benchProto(), false);

    Sink* parent = nullptr;
    rt::Port* prev = &out;
    for (int i = 0; i < depth; ++i) {
        shells.push_back(std::make_unique<Sink>("shell" + std::to_string(i), parent));
        relays.push_back(std::make_unique<rt::Port>(*shells.back(), "r", benchProto(), true,
                                                    rt::PortKind::Relay));
        rt::connect(*prev, *relays.back());
        prev = relays.back().get();
        parent = shells.back().get();
    }
    Sink leaf{"leaf", parent};
    rt::Port in(leaf, "in", benchProto(), true);
    rt::connect(*prev, in);

    for (auto _ : state) {
        out.send("ping");
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_connect_relay_chain)->Arg(1)->Arg(4)->Arg(16);

void BM_protocol_direction_check(benchmark::State& state) {
    const auto sig = rt::signal("ping");
    for (auto _ : state) {
        benchmark::DoNotOptimize(benchProto().sendable(sig, false));
    }
}
BENCHMARK(BM_protocol_direction_check);

void BM_state_machine_dispatch(benchmark::State& state) {
    rt::Capsule cap{"cap"};
    auto& a = cap.machine().state("A");
    auto& b = cap.machine().state("B");
    cap.machine().transition(a, b).on("go");
    cap.machine().transition(b, a).on("go");
    cap.initialize();
    rt::Message m(rt::signal("go"));
    for (auto _ : state) {
        cap.machine().dispatch(m);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_state_machine_dispatch);

void BM_timer_service_schedule_cancel(benchmark::State& state) {
    rt::Capsule cap{"cap"};
    rt::TimerService ts;
    for (auto _ : state) {
        const auto id = ts.informIn(cap, 0.0, 1.0, rt::signal("t"));
        ts.cancel(id);
    }
}
BENCHMARK(BM_timer_service_schedule_cancel);

// ------------------------------ extension side -------------------------------

void BM_streamer_dport_refresh(benchmark::State& state) {
    const auto width = static_cast<std::size_t>(state.range(0));
    Plain parent{"p"};
    Plain a{"a", &parent}, b{"b", &parent};
    const auto type = width == 1 ? f::FlowType::real()
                                 : f::FlowType::vector(f::FlowType::real(), width);
    f::DPort out(a, "out", f::DPortDir::Out, type);
    f::DPort in(b, "in", f::DPortDir::In, type);
    f::flow(out, in);
    auto proj = f::FlowType::projection(out.type(), in.type());
    in.bindResolved(&out, *proj);
    for (auto _ : state) {
        in.refresh();
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * width * sizeof(double)));
}
BENCHMARK(BM_streamer_dport_refresh)->Arg(1)->Arg(16)->Arg(256);

void BM_relay_duplication(benchmark::State& state) {
    const auto fanout = static_cast<std::size_t>(state.range(0));
    Plain parent{"p"};
    f::Relay relay("r", &parent, f::FlowType::real(), fanout);
    relay.in().set(1.0);
    for (auto _ : state) {
        relay.outputs(0.0, {});
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * fanout));
}
BENCHMARK(BM_relay_duplication)->Arg(2)->Arg(4)->Arg(8);

void BM_flowtype_subset_check(benchmark::State& state) {
    const auto big = f::FlowType::record({{"pos", f::FlowType::real()},
                                          {"vel", f::FlowType::real()},
                                          {"acc", f::FlowType::real()}});
    const auto small = f::FlowType::record({{"vel", f::FlowType::real()}});
    for (auto _ : state) {
        benchmark::DoNotOptimize(big.subsetOf(small));
    }
}
BENCHMARK(BM_flowtype_subset_check);

void BM_solver_step_rk4(benchmark::State& state) {
    const auto dim = static_cast<std::size_t>(state.range(0));
    s::FnOde sys(dim, [](double, const s::Vec& x, s::Vec& dx) {
        for (std::size_t i = 0; i < x.size(); ++i) dx[i] = -x[i];
    });
    s::Rk4Integrator rk4;
    s::Vec x(dim, 1.0);
    double t = 0;
    for (auto _ : state) {
        rk4.step(sys, t, 1e-3, x);
        t += 1e-3;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_solver_step_rk4)->Arg(1)->Arg(4)->Arg(16);

void BM_sport_signal_roundtrip(benchmark::State& state) {
    struct Echo : f::Streamer {
        using f::Streamer::Streamer;
        int got = 0;
        void onSignal(f::SPort&, const rt::Message&) override { ++got; }
    };
    Echo streamer{"s"};
    f::SPort sp(streamer, "ctl", benchProto(), true);
    Sink cap{"cap"};
    rt::Port cp(cap, "p", benchProto(), false);
    rt::connect(cp, sp.rtPort());
    for (auto _ : state) {
        cp.send("ping");
        sp.drain();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_sport_signal_roundtrip);

void BM_time_stereotype_read(benchmark::State& state) {
    f::Time time(0.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(time.now());
    }
}
BENCHMARK(BM_time_stereotype_read);

void printTable1() {
    std::puts("==============================================================");
    std::puts("Table 1 — New stereotypes comparing with UML-RT (reproduced)");
    std::puts("==============================================================");
    std::printf("%-18s | %s\n", "UML-RT", "Extension");
    std::puts("-------------------+------------------------------------------");
    for (const auto& row : urtx::model::table1()) {
        std::string ext;
        for (auto st : row.extension) {
            if (!ext.empty()) ext += ", ";
            ext += urtx::model::to_string(st);
        }
        std::printf("%-18s | %s\n", urtx::model::to_string(row.umlrt), ext.c_str());
    }
    std::printf("new stereotypes listed: %zu\n\n", urtx::model::newStereotypeCount());
    std::puts("Measured per-operation costs follow (google-benchmark):\n");
}

} // namespace

int main(int argc, char** argv) {
    printTable1();
    // Count operations while the benchmarks run (timing stays off the
    // measured loops' critical path only when metrics are disabled; with
    // them on, the numbers include the instrumentation — which is itself a
    // stereotype cost worth recording).
    urtx::obs::setMetricsEnabled(true);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    urtx::obs::setMetricsEnabled(false);
    // JSON sidecar so later PRs can diff perf trajectories from counters.
    const std::string sidecar = "bench_table1_metrics.json";
    std::ofstream(sidecar) << urtx::obs::Registry::global().snapshot().toJson();
    std::printf("\nmetrics sidecar: %s\n", sidecar.c_str());
    return 0;
}
