/// \file bench_obs_overhead.cpp
/// Measures the cost of the observability layer on the two hot paths it
/// instruments — Controller dispatch and SolverRunner::step — in three
/// configurations:
///
///   off      — metrics, tracer and health monitors runtime-disabled (the
///              default): every instrumented site pays one relaxed atomic
///              load. This is the configuration whose overhead must be
///              within noise of the uninstrumented seed (<= 2%).
///   metrics  — metrics on (clock reads + striped counters/histograms).
///   full     — metrics + tracer on (ring-buffer spans on top).
///   causal   — everything on: tracer flow events, deadline monitor and
///              flight recorder riding the causal span path.
///   causal@N% — causal with span sampling at rate N/100: the admission
///              decision is made once per span at the emitting site, so
///              unadmitted spans skip the stamp, the flow events and the
///              hop-latency observes entirely.
///   stats-ticker on — metrics plus a background StatsWindow ticking a
///              full registry snapshot every 10 ms (the daemon's windowed
///              stats engine at 100x its default cadence). Bounds what the
///              snapshot walk steals from the hot paths.
///
/// Compiling with -DURTX_OBS_DISABLE=ON removes even the relaxed loads; the
/// "off" row here is the upper bound on what a default build pays.
///
/// A machine-readable summary is written to BENCH_obs.json.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "control/control.hpp"
#include "flow/flow.hpp"
#include "obs/obs.hpp"
#include "obs/window.hpp"
#include "rt/rt.hpp"

namespace f = urtx::flow;
namespace c = urtx::control;
namespace s = urtx::solver;
namespace rt = urtx::rt;
namespace b = urtx::bench;
namespace obs = urtx::obs;

namespace {

rt::Protocol& proto() {
    static rt::Protocol p = [] {
        rt::Protocol q{"ObsBench"};
        q.out("req").in("rsp");
        return q;
    }();
    return p;
}

struct Echo : rt::Capsule {
    explicit Echo(std::string n) : rt::Capsule(std::move(n)), port(*this, "p", proto(), true) {}
    rt::Port port;

protected:
    void onMessage(const rt::Message& m) override {
        if (m.signal == rt::signal("req")) port.send("rsp");
    }
};

struct Client : rt::Capsule {
    explicit Client(std::string n)
        : rt::Capsule(std::move(n)), port(*this, "p", proto(), false) {}
    rt::Port port;
    std::uint64_t rsps = 0;

protected:
    void onMessage(const rt::Message& m) override {
        if (m.signal == rt::signal("rsp")) ++rsps;
    }
};

struct Plain : f::Streamer {
    using f::Streamer::Streamer;
};

/// Per-op seconds for N request/response round trips through the
/// controller queue (2 dispatches per round trip).
double dispatchHotPath(int rounds) {
    rt::Controller ctl{"bench"};
    Client client{"client"};
    Echo echo{"echo"};
    rt::connect(client.port, echo.port);
    ctl.attach(client);
    ctl.attach(echo);
    const double wall = b::timeMedian(
        [&] {
            for (int i = 0; i < rounds; ++i) {
                client.port.send("req");
                ctl.dispatchAll();
            }
        },
        5);
    return wall / (2.0 * rounds); // per dispatch
}

/// Per-step seconds for a small coupled plant advanced one major step at a
/// time (dim kept small so instrumentation cost is visible, not drowned).
double solverHotPath(int steps, std::size_t dim) {
    Plain top{"plant"};
    struct Coupled : f::Streamer {
        Coupled(std::string n, f::Streamer* p, std::size_t d)
            : f::Streamer(std::move(n), p), dim_(d) {}
        std::size_t dim_;
        std::size_t stateSize() const override { return dim_; }
        void initState(double, std::span<double> x) override {
            for (std::size_t i = 0; i < dim_; ++i) x[i] = 1.0;
        }
        void derivatives(double, std::span<const double> x, std::span<double> dx) override {
            for (std::size_t i = 0; i < dim_; ++i) dx[i] = -x[i];
        }
        bool directFeedthrough() const override { return false; }
    };
    Coupled plant("p", &top, dim);
    f::SolverRunner runner(top, s::makeIntegrator("RK4"), 1e-3);
    runner.initialize(0.0);
    const double wall = b::timeMedian(
        [&] {
            for (int i = 0; i < steps; ++i) runner.step();
        },
        5);
    return wall / steps;
}

struct Config {
    const char* name;
    bool metrics;
    bool tracer;
    bool causal; ///< monitor + flight recorder (deadline checks on the hop path)
    double sampling = 1.0; ///< span sampling rate fed to the registry
    bool ticker = false;   ///< background StatsWindow snapshotting at 10 ms
};

struct Row {
    const char* name;
    double dispatchNs;
    double dispatchPct;
    double solverNs;
    double solverPct;
};

void writeJson(const std::vector<Row>& rows) {
    std::ofstream f("BENCH_obs.json");
    f << "{\"bench\":\"obs_overhead\",\"urtx_obs\":" << (URTX_OBS ? 1 : 0) << ",\"configs\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        if (i) f << ",";
        f << "{\"name\":\"" << r.name << "\",\"dispatch_ns\":" << r.dispatchNs
          << ",\"dispatch_vs_off_pct\":" << r.dispatchPct << ",\"solver_step_ns\":" << r.solverNs
          << ",\"solver_vs_off_pct\":" << r.solverPct << "}";
    }
    f << "]}\n";
}

} // namespace

int main() {
    std::puts("==============================================================");
    std::puts("Observability overhead on the runtime hot paths");
    std::puts("==============================================================");
#if URTX_OBS
    std::puts("compiled with URTX_OBS=1 (instrumentation present, runtime-gated)\n");
#else
    std::puts("compiled with URTX_OBS=0 (instrumentation compiled out)\n");
#endif

    const Config configs[] = {
        {"off (default)", false, false, false},
        {"metrics", true, false, false},
        {"metrics+tracer", true, true, false},
        {"causal (all on)", true, true, true},
        // Sampled causal tracing: the per-span admission decision, made
        // once at the emit site, thins the whole causal path — stamp, flow
        // events, dispatch slice, monitor hop check. Metrics timing is an
        // orthogonal knob with its own row, so these rows run it disabled
        // to isolate what always-on causal tracing costs at a production
        // rate (the acceptance bound is the 1% row's dispatch column).
        {"causal@10%", false, true, true, 0.1},
        {"causal@1%", false, true, true, 0.01},
        // The daemon's windowed stats engine: a reactor tick snapshots the
        // whole registry into a ring. 10 ms here vs the daemon's 1 s
        // default, so the row is a 100x upper bound on ticker steal.
        {"stats-ticker on", true, false, false, 1.0, true},
    };

    constexpr int kDispatchRounds = 100000;
    constexpr int kSolverSteps = 20000;
    constexpr std::size_t kDim = 16;

    std::vector<Row> rows;
    double dispatchBase = 0, solverBase = 0;
    std::printf("%-16s %18s %10s %18s %10s\n", "config", "dispatch [ns/op]", "vs off",
                "solver step [ns]", "vs off");
    b::rule();
    for (const Config& cfg : configs) {
        obs::setMetricsEnabled(cfg.metrics);
        obs::Tracer::global().setEnabled(cfg.tracer);
        obs::Monitor::global().setEnabled(cfg.causal);
        obs::FlightRecorder::global().setEnabled(cfg.causal);
        obs::Registry::global().setSpanSamplingRate(cfg.sampling);
        obs::Registry::global().reset();
        obs::Tracer::global().clear();

        std::atomic<bool> tickerStop{false};
        std::thread tickerThread;
        if (cfg.ticker) {
            tickerThread = std::thread([&tickerStop] {
                obs::StatsWindow win(obs::Registry::global(), 128);
                while (!tickerStop.load(std::memory_order_relaxed)) {
                    win.tick();
                    std::this_thread::sleep_for(std::chrono::milliseconds(10));
                }
            });
        }

        const double dispatch = dispatchHotPath(kDispatchRounds);
        const double solver = solverHotPath(kSolverSteps, kDim);
        if (tickerThread.joinable()) {
            tickerStop.store(true, std::memory_order_relaxed);
            tickerThread.join();
        }
        if (!cfg.metrics && !cfg.tracer && !cfg.causal) {
            dispatchBase = dispatch;
            solverBase = solver;
        }
        const double dPct = (dispatch / dispatchBase - 1.0) * 100.0;
        const double sPct = (solver / solverBase - 1.0) * 100.0;
        std::printf("%-16s %18.1f %9.1f%% %18.1f %9.1f%%\n", cfg.name, dispatch * 1e9, dPct,
                    solver * 1e9, sPct);
        rows.push_back(Row{cfg.name, dispatch * 1e9, dPct, solver * 1e9, sPct});
    }
    obs::setMetricsEnabled(false);
    obs::Tracer::global().setEnabled(false);
    obs::Monitor::global().setEnabled(false);
    obs::FlightRecorder::global().setEnabled(false);
    obs::Registry::global().setSpanSamplingRate(1.0);
    writeJson(rows);
    std::puts("\nwrote BENCH_obs.json");

    std::puts("\nWhat the enabled run recorded (sanity that the cost bought data):");
    obs::setMetricsEnabled(true);
    obs::Tracer::global().setEnabled(true);
    obs::Registry::global().reset();
    obs::Tracer::global().clear();
    b::keep(dispatchHotPath(1000));
    b::keep(solverHotPath(1000, kDim));
    obs::setMetricsEnabled(false);
    obs::Tracer::global().setEnabled(false);

    const obs::Snapshot snap = obs::Registry::global().snapshot();
    const auto* disp = snap.counter("rt.messages_dispatched");
    const auto* steps = snap.counter("flow.solver_major_steps");
    const auto* lat = snap.histogram("rt.dispatch_latency_seconds.general");
    const auto* step = snap.histogram("flow.solver_step_seconds");
    std::printf("  dispatches counted: %llu (mean service %.0f ns)\n",
                static_cast<unsigned long long>(disp ? disp->value : 0),
                (lat ? lat->mean() : 0.0) * 1e9);
    std::printf("  solver steps counted: %llu (mean %.0f ns)\n",
                static_cast<unsigned long long>(steps ? steps->value : 0),
                (step ? step->mean() : 0.0) * 1e9);
    std::printf("  trace events retained: %zu (dropped by ring wrap: %llu)\n",
                obs::Tracer::global().eventCount(),
                static_cast<unsigned long long>(obs::Tracer::global().droppedCount()));

    std::puts("\nAcceptance: the 'off (default)' rows ARE the shipped configuration —");
    std::puts("their deltas vs the seed hot paths are one relaxed atomic load per");
    std::puts("site, which the vs-off columns bound from above. Enabled overhead is");
    std::puts("the price of per-dispatch clock reads + histogram updates, and the");
    std::puts("tracer adds two clock reads + a ring write per span. The causal@N%");
    std::puts("rows show sampled causal tracing: unadmitted spans pay only the");
    std::puts("sampler's thread-local countdown, so the causal path's cost scales");
    std::puts("with the admission rate instead of the message rate.");
    return 0;
}
