/// \file bench_fig3_threading.cpp
/// Regenerates the paper's **Figure 3** (capsules containing streamers,
/// deployed on separate threads) and tests its central architectural
/// claim: "we assign event-driven capsule and time-continuous dataflow to
/// different threads ... making the architecture of software very sound".
///
/// Experiment: a hybrid system with an event-driven supervisor (periodic
/// timer messages + state machine work) and a continuous plant of growing
/// ODE size, executed two ways:
///
///   SingleThread — what a plain UML-RT platform forces: the equations run
///                  interleaved with the run-to-completion message loop;
///   MultiThread  — the paper's deployment: solver thread(s) + controller
///                  thread, synchronized on the time grid.
///
/// Reported per configuration: wall-clock time, speedup, and capsule
/// message-service latency. Expected shape: the two-thread design wins
/// once continuous work per step dominates; at tiny ODE sizes the barrier
/// overhead makes it slower (crossover).
///
/// A machine-readable summary of every table is written to BENCH_fig3.json.

#include <atomic>
#include <cmath>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include <fstream>

#include "bench_util.hpp"
#include "control/control.hpp"
#include "flow/flow.hpp"
#include "obs/obs.hpp"
#include "rt/rt.hpp"
#include "sim/sim.hpp"

namespace f = urtx::flow;
namespace c = urtx::control;
namespace s = urtx::solver;
namespace rt = urtx::rt;
namespace sim = urtx::sim;
namespace b = urtx::bench;
namespace obs = urtx::obs;

namespace {

struct Plain : f::Streamer {
    using f::Streamer::Streamer;
};

/// Machine-readable rows mirrored into BENCH_fig3.json for scripted
/// consumption (CI artifact diffing, paper figure regeneration).
struct JsonReport {
    struct Scaling {
        std::size_t dim;
        double stMs, mtMs, measured, projected;
        int ticks;
    };
    struct TwoGroup {
        std::size_t dim;
        double stMs, mtMs, speedup;
    };
    struct Handoff {
        std::size_t runners;
        double legacyUs, poolUs, ratio, barrierMeanUs;
    };
    std::vector<Scaling> scaling;
    std::vector<TwoGroup> twoGroup;
    std::vector<Handoff> handoff;

    void write(const char* path) const {
        std::ofstream j(path);
        j << "{\"bench\":\"fig3_threading\",\"scaling\":[";
        for (std::size_t i = 0; i < scaling.size(); ++i) {
            const auto& r = scaling[i];
            j << (i ? "," : "") << "{\"dim\":" << r.dim << ",\"single_thread_ms\":" << r.stMs
              << ",\"multi_thread_ms\":" << r.mtMs << ",\"measured_speedup\":" << r.measured
              << ",\"projected_speedup\":" << r.projected << ",\"ticks\":" << r.ticks << "}";
        }
        j << "],\"two_groups\":[";
        for (std::size_t i = 0; i < twoGroup.size(); ++i) {
            const auto& r = twoGroup[i];
            j << (i ? "," : "") << "{\"dim\":" << r.dim << ",\"single_thread_ms\":" << r.stMs
              << ",\"multi_thread_ms\":" << r.mtMs << ",\"speedup\":" << r.speedup << "}";
        }
        j << "],\"handoff\":[";
        for (std::size_t i = 0; i < handoff.size(); ++i) {
            const auto& r = handoff[i];
            j << (i ? "," : "") << "{\"runners\":" << r.runners
              << ",\"legacy_us_per_grant\":" << r.legacyUs << ",\"pool_us_per_grant\":" << r.poolUs
              << ",\"ratio\":" << r.ratio << ",\"barrier_wait_mean_us\":" << r.barrierMeanUs
              << "}";
        }
        j << "]}\n";
    }
};

JsonReport gReport;

/// A dense coupled linear plant: dx_i = -x_i + 0.1 * mean(x) + u. Work per
/// derivative evaluation is O(n^2/8) to emulate nontrivial equations.
struct DensePlant : f::Streamer {
    DensePlant(std::string n, f::Streamer* parent, std::size_t dim)
        : f::Streamer(std::move(n), parent), dim_(dim) {}

    std::size_t dim_;
    std::size_t stateSize() const override { return dim_; }
    void initState(double, std::span<double> x) override {
        for (std::size_t i = 0; i < dim_; ++i) x[i] = 1.0 + 0.01 * static_cast<double>(i);
    }
    void derivatives(double, std::span<const double> x, std::span<double> dx) override {
        for (std::size_t i = 0; i < dim_; ++i) {
            double coupling = 0.0;
            for (std::size_t j = i % 8; j < dim_; j += 8) coupling += x[j];
            dx[i] = -x[i] + 0.1 * coupling / static_cast<double>(dim_);
        }
    }
    bool directFeedthrough() const override { return false; }
};

/// Event-driven side: a supervisor with a periodic timer, a state machine
/// and a realistic slab of reactive computation per message (signal
/// filtering / decision logic) — the work that would starve inside a
/// run-to-completion loop shared with the equations.
struct Supervisor : rt::Capsule {
    explicit Supervisor(std::string n) : rt::Capsule(std::move(n)) {
        auto& a = machine().state("A");
        auto& bSt = machine().state("B");
        machine().transition(a, bSt).on("tick");
        machine().transition(bSt, a).on("tick");
    }
    std::atomic<int> ticks{0};

protected:
    void onInit() override { informEvery(1e-3, "tick"); }
    void onMessage(const rt::Message& m) override {
        if (m.signal == rt::signal("tick")) {
            ++ticks;
            machine().dispatch(m);
            // ~0.1-0.5 ms of reactive computation.
            double acc = 0;
            for (int i = 0; i < 30000; ++i) acc += std::sin(1e-3 * i);
            b::keep(acc);
        }
    }
};

/// Replica of the pre-pool per-runner SolverWorker (one mutex + condvar
/// pair per runner, 2 wakeups per worker per grant) — kept here as the
/// baseline for the handoff-overhead comparison against sim::SolverPool.
class LegacyWorker {
public:
    explicit LegacyWorker(f::SolverRunner& r) : runner_(&r) {
        thread_ = std::thread([this] { loop(); });
    }

    ~LegacyWorker() {
        {
            std::lock_guard lock(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        if (thread_.joinable()) thread_.join();
    }

    void grant(double target) {
        {
            std::lock_guard lock(mu_);
            target_ = target;
            work_ = true;
            done_ = false;
        }
        cv_.notify_all();
    }

    void awaitDone() {
        std::unique_lock lock(mu_);
        cv_.wait(lock, [this] { return done_; });
    }

private:
    void loop() {
        std::unique_lock lock(mu_);
        while (true) {
            cv_.wait(lock, [this] { return work_ || stop_; });
            if (stop_) return;
            const double target = target_;
            work_ = false;
            lock.unlock();
            runner_->advanceTo(target);
            lock.lock();
            done_ = true;
            cv_.notify_all();
        }
    }

    f::SolverRunner* runner_;
    std::thread thread_;
    std::mutex mu_;
    std::condition_variable cv_;
    double target_ = 0.0;
    bool work_ = false;
    bool done_ = true;
    bool stop_ = false;
};

/// Pure synchronization cost: no-op grants (target == current runner time,
/// so advanceTo returns immediately) through both handoff designs.
void handoffOverhead() {
    std::puts("\nSolver handoff overhead (no-op grants, pure synchronization):");
    std::puts("(legacy = per-runner mutex/condvar SolverWorker, the pre-pool design;");
    std::puts(" pool   = persistent epoch-barrier SolverPool used by MultiThread now)");
    std::printf("  %-8s %12s %12s %7s %s\n", "runners", "legacy", "pool", "ratio",
                "pool barrier wait (sim.barrier_wait_seconds)");
    b::rule();

    constexpr int S = 20000; // grants per configuration
    for (std::size_t nr : {1u, 2u, 4u}) {
        std::vector<std::unique_ptr<Plain>> tops;
        std::vector<std::unique_ptr<c::Constant>> consts;
        std::vector<std::unique_ptr<f::SolverRunner>> runners;
        for (std::size_t i = 0; i < nr; ++i) {
            tops.push_back(std::make_unique<Plain>("noop" + std::to_string(i)));
            consts.push_back(std::make_unique<c::Constant>("k", tops.back().get(), 0.0));
            runners.push_back(std::make_unique<f::SolverRunner>(
                *tops.back(), s::makeIntegrator("Euler"), 1.0));
            runners.back()->initialize(0.0);
        }

        double legacy;
        {
            std::vector<std::unique_ptr<LegacyWorker>> workers;
            for (auto& r : runners) workers.push_back(std::make_unique<LegacyWorker>(*r));
            legacy = b::timeOnce([&] {
                for (int s = 0; s < S; ++s) {
                    for (auto& w : workers) w->grant(0.0);
                    for (auto& w : workers) w->awaitDone();
                }
            });
        }

        double poolWall;
        double barrierMean;
        {
            std::vector<f::SolverRunner*> raw;
            for (auto& r : runners) raw.push_back(r.get());
            sim::SolverPool pool(std::move(raw));
            // Timed loop runs with metrics off so both sides pay zero
            // instrumentation cost; a second, metrics-on loop populates the
            // sim.barrier_wait_seconds histogram the executor exports.
            poolWall = b::timeOnce([&] {
                for (int s = 0; s < S; ++s) pool.advanceAllTo(0.0, 0.0);
            });
            obs::Registry::global().reset();
            obs::setMetricsEnabled(true);
            for (int s = 0; s < S; ++s) pool.advanceAllTo(0.0, 0.0);
            obs::setMetricsEnabled(false);
            const obs::Snapshot snap = obs::Registry::global().snapshot();
            barrierMean = snap.histogram("sim.barrier_wait_seconds")->mean();
            obs::Registry::global().reset();
        }

        std::printf("  %-8zu %9.2f us %9.2f us %6.2fx %23.2f us mean\n", nr,
                    legacy / S * 1e6, poolWall / S * 1e6, legacy / poolWall,
                    barrierMean * 1e6);
        gReport.handoff.push_back({nr, legacy / S * 1e6, poolWall / S * 1e6, legacy / poolWall,
                                   barrierMean * 1e6});
    }
    std::puts("  (one epoch publish + one latch wait per grant regardless of runner");
    std::puts("   count, vs 2 lock/wake round-trips per worker per grant before)");
}

struct Result {
    double wall;
    int ticks;
};

Result runOnce(std::size_t dim, sim::ExecutionMode mode, double tEnd) {
    sim::HybridSystem sys;
    Plain group{"plant"};
    DensePlant plant("dense", &group, dim);
    Supervisor sup{"supervisor"};
    sys.addCapsule(sup);
    sys.addStreamerGroup(group, s::makeIntegrator("RK4"), 1e-3);
    Result r{};
    r.wall = b::timeOnce([&] { sys.run(tEnd, mode); });
    r.ticks = sup.ticks.load();
    return r;
}

/// Re-run one configuration with full telemetry and report *where* the
/// time goes, not just the end-to-end wall clock. Writes a Prometheus-text
/// + JSON metrics sidecar and a chrome://tracing trace next to the binary.
void telemetryRun(std::size_t dim, double tEnd) {
    std::puts("\nTelemetry run (dim=256, MultiThread, metrics + tracer enabled):");

    obs::setMetricsEnabled(true);
    obs::Tracer::global().setEnabled(true);
    obs::Registry::global().reset();
    obs::Tracer::global().clear();
    const Result r = runOnce(dim, sim::ExecutionMode::MultiThread, tEnd);
    obs::Tracer::global().setEnabled(false);
    obs::setMetricsEnabled(false);

    const obs::Snapshot snap = obs::Registry::global().snapshot();
    const auto* lat = snap.histogram("rt.dispatch_latency_seconds.general");
    const auto* step = snap.histogram("flow.solver_step_seconds");
    std::printf("  wall %.2f ms, ticks %d\n", r.wall * 1e3, r.ticks);
    std::printf("  solver: %llu major steps, mean step %.1f us (total %.2f ms = %.0f%% of wall)\n",
                static_cast<unsigned long long>(snap.counter("flow.solver_major_steps")->value),
                step->mean() * 1e6, step->sum * 1e3, 100.0 * step->sum / r.wall);
    std::printf("  capsule: %llu messages dispatched, mean service %.1f us (total %.2f ms = "
                "%.0f%% of wall)\n",
                static_cast<unsigned long long>(snap.counter("rt.messages_dispatched")->value),
                lat->mean() * 1e6, lat->sum * 1e3, 100.0 * lat->sum / r.wall);
    std::printf("  queue depth high-water %.0f, timers fired %llu, zero crossings %llu\n",
                snap.gauge("rt.queue_depth_hwm")->value,
                static_cast<unsigned long long>(snap.counter("rt.timers_fired")->value),
                static_cast<unsigned long long>(snap.counter("sim.zero_crossings")->value));

    std::ofstream("bench_fig3_metrics.prom") << snap.toPrometheus();
    std::ofstream("bench_fig3_metrics.json") << snap.toJson();
    obs::Tracer::global().writeChromeTrace(std::string("bench_fig3_trace.json"));
    std::printf("  wrote bench_fig3_metrics.prom / .json and bench_fig3_trace.json "
                "(%zu events; open in chrome://tracing)\n",
                obs::Tracer::global().eventCount());
    obs::Tracer::global().clear();
}

} // namespace

int main() {
    std::puts("==============================================================");
    std::puts("Figure 3 — capsules + streamers on separate threads (measured)");
    std::puts("==============================================================");
    std::puts("Structure (as in the paper):");
    std::puts("  Top capsule [state machine, timers]  <-- controller thread");
    std::puts("    +-- streamer1, streamer2 [solver]  <-- solver thread(s)\n");

    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("host parallelism: %u hardware thread(s)%s\n\n", hw,
                hw <= 1 ? "  ** single-core host: the separate-thread deployment can "
                          "only show overhead here; a projected multi-core speedup is "
                          "derived from per-phase timings below **"
                        : "");

    const double tEnd = 0.2; // simulated seconds; dt=1e-3 -> 200 grid steps
    const int expectedTicks = 200;

    // Isolate the capsule-side work: 200 ticks of supervisor computation.
    const double capsuleOnly = b::timeOnce([&] {
        double acc = 0;
        for (int t = 0; t < expectedTicks; ++t) {
            for (int i = 0; i < 30000; ++i) acc += std::sin(1e-3 * i);
        }
        b::keep(acc);
    });
    std::printf("capsule-side reactive work (200 ticks): %.2f ms\n\n", capsuleOnly * 1e3);

    std::puts("Single-thread (UML-RT style interleaving) vs multi-thread (paper):");
    std::printf("  %-10s %13s %13s %10s %12s %8s\n", "ODE dim", "1-thr [ms]", "2-thr [ms]",
                "measured", "projected*", "ticks");
    b::rule();

    for (std::size_t dim : {2u, 16u, 64u, 256u, 1024u, 2048u}) {
        const Result st = runOnce(dim, sim::ExecutionMode::SingleThread, tEnd);
        const Result mt = runOnce(dim, sim::ExecutionMode::MultiThread, tEnd);
        // Projected wall on a >=2-core machine: phases overlap, so the
        // critical path is max(solver work, capsule work).
        const double solverOnly = std::max(1e-9, st.wall - capsuleOnly);
        const double projected = st.wall / std::max(solverOnly, capsuleOnly);
        std::printf("  %-10zu %13.2f %13.2f %9.2fx %11.2fx %5d/%d\n", dim, st.wall * 1e3,
                    mt.wall * 1e3, st.wall / mt.wall, projected, mt.ticks, expectedTicks);
        gReport.scaling.push_back(
            {dim, st.wall * 1e3, mt.wall * 1e3, st.wall / mt.wall, projected, mt.ticks});
        if (st.ticks < expectedTicks - 2 || mt.ticks < expectedTicks - 2) {
            std::printf("  WARNING: tick shortfall (st=%d mt=%d)\n", st.ticks, mt.ticks);
        }
    }
    std::puts("  (*) projected = 1-thread / max(solver phase, capsule phase); the");
    std::puts("      overlap a multi-core host would realize (crossover where the");
    std::puts("      phases are equal). Measured column shows barrier overhead only");
    std::puts("      when hardware threads = 1.");

    // --- two plants: the multi-thread executor can overlap them -------------
    std::puts("\nTwo independent streamer groups (one solver thread each):");
    std::printf("  %-10s %14s %14s %10s\n", "ODE dim", "1-thread [ms]", "3-thread [ms]",
                "speedup");
    b::rule();
    for (std::size_t dim : {256u, 1024u, 2048u}) {
        auto runTwo = [&](sim::ExecutionMode mode) {
            sim::HybridSystem sys;
            Plain g1{"p1"}, g2{"p2"};
            DensePlant d1("dense1", &g1, dim);
            DensePlant d2("dense2", &g2, dim);
            Supervisor sup{"supervisor"};
            sys.addCapsule(sup);
            sys.addStreamerGroup(g1, s::makeIntegrator("RK4"), 1e-3);
            sys.addStreamerGroup(g2, s::makeIntegrator("RK4"), 1e-3);
            return b::timeOnce([&] { sys.run(tEnd, mode); });
        };
        const double st = runTwo(sim::ExecutionMode::SingleThread);
        const double mt = runTwo(sim::ExecutionMode::MultiThread);
        std::printf("  %-10zu %14.2f %14.2f %9.2fx\n", dim, st * 1e3, mt * 1e3, st / mt);
        gReport.twoGroup.push_back({dim, st * 1e3, mt * 1e3, st / mt});
    }

    // --- capsule service latency under continuous load -----------------------
    std::puts("\nMessage service latency while the plant integrates (dim=2048):");
    std::puts("(time from SPort send on the solver side to capsule handling)");
    for (auto mode : {sim::ExecutionMode::SingleThread, sim::ExecutionMode::MultiThread}) {
        // The streamer emits a signal every major step; the capsule replies.
        static rt::Protocol pingProto = [] {
            rt::Protocol q{"Fig3Ping"};
            q.out("ping").in("pong");
            return q;
        }();
        struct Emitter : DensePlant {
            Emitter(std::string n, f::Streamer* parent, std::size_t dim)
                : DensePlant(std::move(n), parent, dim), sp(*this, "sp", pingProto, false) {}
            f::SPort sp;
            std::atomic<int> pongs{0};
            void update(double, std::span<double>) override { sp.send("ping"); }
            void onSignal(f::SPort&, const rt::Message& m) override {
                if (m.signal == rt::signal("pong")) ++pongs;
            }
        };
        struct Responder : rt::Capsule {
            Responder() : rt::Capsule("responder"), port(*this, "p", pingProto, true) {}
            rt::Port port;
            std::atomic<int> pings{0};

        protected:
            void onMessage(const rt::Message& m) override {
                if (m.signal == rt::signal("ping")) {
                    ++pings;
                    port.send("pong");
                }
            }
        };

        sim::HybridSystem sys;
        Plain group{"plant"};
        Emitter emitter("emitter", &group, 2048);
        Responder responder;
        rt::connect(responder.port, emitter.sp.rtPort());
        sys.addCapsule(responder);
        sys.addStreamerGroup(group, s::makeIntegrator("RK4"), 1e-3);
        const double wall = b::timeOnce([&] { sys.run(0.5, mode); });
        std::printf("  %-14s: %4d pings answered with %4d pongs in %.1f ms wall\n",
                    sim::to_string(mode), responder.pings.load(), emitter.pongs.load(),
                    wall * 1e3);
    }

    handoffOverhead();

    telemetryRun(256, tEnd);

    gReport.write("BENCH_fig3.json");
    std::puts("\nwrote BENCH_fig3.json");

    std::puts("\nShape check: the projected column shows the paper's claim — the");
    std::puts("two-thread deployment wins once continuous work rivals the reactive");
    std::puts("work, with a crossover at small ODE sizes where barrier overhead");
    std::puts("dominates. On a single-core host the measured column isolates that");
    std::puts("overhead (0.85-1.0x), and the ping/pong run shows the capsule still");
    std::puts("being serviced while equations integrate — the soundness half of");
    std::puts("the Figure 3 claim.");
    return 0;
}
