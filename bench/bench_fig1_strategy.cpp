/// \file bench_fig1_strategy.cpp
/// Regenerates the paper's **Figure 1** (State pattern beside Strategy
/// pattern: solvers are interchangeable strategies) and quantifies what the
/// strategy indirection costs:
///
///  1. hand-inlined RK4 on the raw equations        (no abstraction)
///  2. RK4 through the Integrator strategy interface (Figure 1's Strategy)
///  3. RK4 through a full streamer network           (ports + scheduler)
///
/// plus the cost of *swapping* strategies mid-run and the relative accuracy
/// of ConcreteStrategyA/B/C (Euler/RK4/RK45) at equal step budgets.
/// Expected shape: the virtual-call indirection is a small constant factor;
/// the network layer adds port-refresh overhead proportional to block count.

#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "control/control.hpp"
#include "flow/flow.hpp"

namespace f = urtx::flow;
namespace c = urtx::control;
namespace s = urtx::solver;
namespace b = urtx::bench;

namespace {

constexpr double kDt = 1e-4;
constexpr double kTend = 1.0;
constexpr int kSteps = static_cast<int>(kTend / kDt);

/// Harmonic oscillator used throughout: x'' = -x.
void rhs(double, const s::Vec& x, s::Vec& dx) {
    dx[0] = x[1];
    dx[1] = -x[0];
}

/// 1. Hand-inlined classic RK4, no abstraction at all.
double runInlined() {
    double x0 = 1.0, x1 = 0.0;
    auto fx = [](double a, double v, double& da, double& dv) {
        da = v;
        dv = -a;
    };
    for (int i = 0; i < kSteps; ++i) {
        double k1a, k1b, k2a, k2b, k3a, k3b, k4a, k4b;
        fx(x0, x1, k1a, k1b);
        fx(x0 + 0.5 * kDt * k1a, x1 + 0.5 * kDt * k1b, k2a, k2b);
        fx(x0 + 0.5 * kDt * k2a, x1 + 0.5 * kDt * k2b, k3a, k3b);
        fx(x0 + kDt * k3a, x1 + kDt * k3b, k4a, k4b);
        x0 += kDt / 6.0 * (k1a + 2 * k2a + 2 * k3a + k4a);
        x1 += kDt / 6.0 * (k1b + 2 * k2b + 2 * k3b + k4b);
    }
    return x0;
}

/// 2. Through the Integrator strategy interface.
double runStrategy(s::Integrator& method) {
    s::FnOde sys(2, rhs);
    s::Vec x{1.0, 0.0};
    double t = 0;
    for (int i = 0; i < kSteps; ++i, t += kDt) method.step(sys, t, kDt, x);
    return x[0];
}

/// 3. Through a full streamer network (Integrator blocks + Gain feedback).
double runNetwork(std::unique_ptr<s::Integrator> method) {
    f::Streamer top{"osc"};
    c::Integrator pos("pos", &top, 1.0);
    c::Integrator vel("vel", &top, 0.0);
    c::Gain neg("neg", &top, -1.0);
    f::flow(vel.out(), pos.in());
    f::flow(pos.out(), neg.in());
    f::flow(neg.out(), vel.in());
    f::SolverRunner runner(top, std::move(method), kDt * 10); // 10 minor per major
    runner.initialize(0.0);
    runner.advanceTo(kTend);
    return runner.state()[0];
}

} // namespace

int main() {
    std::puts("==============================================================");
    std::puts("Figure 1 — State x Strategy: solvers as interchangeable");
    std::puts("strategies, and what the abstraction costs");
    std::puts("==============================================================");
    std::puts("Class diagram (reproduced):");
    std::puts("  Capsule *--- State           Streamer *--- Strategy(=Solver)");
    std::puts("            ConcreteStrategyA = Euler");
    std::puts("            ConcreteStrategyB = RK4");
    std::puts("            ConcreteStrategyC = RK45\n");

    const double exact = std::cos(kTend);

    // --- abstraction-cost ladder -------------------------------------------
    std::puts("Abstraction cost (harmonic oscillator, RK4, dt=1e-4, T=1 s):");
    std::printf("  %-34s %12s %14s %10s\n", "layer", "time [ms]", "rel. slowdown", "|err|");
    b::rule();

    double xInl = 0;
    const double tInl = b::timeMedian([&] { xInl = runInlined(); });
    std::printf("  %-34s %12.3f %14s %10.2e\n", "hand-inlined equations", tInl * 1e3, "1.00x",
                std::abs(xInl - exact));

    s::Rk4Integrator rk4;
    double xStr = 0;
    const double tStr = b::timeMedian([&] { xStr = runStrategy(rk4); });
    std::printf("  %-34s %12.3f %13.2fx %10.2e\n", "Integrator strategy interface",
                tStr * 1e3, tStr / tInl, std::abs(xStr - exact));

    double xNet = 0;
    const double tNet =
        b::timeMedian([&] { xNet = runNetwork(s::makeIntegrator("RK4")); }, 3);
    std::printf("  %-34s %12.3f %13.2fx %10.2e\n", "full streamer network", tNet * 1e3,
                tNet / tInl, std::abs(xNet - exact));

    // --- strategy comparison at equal step budget ----------------------------
    std::puts("\nConcrete strategies at the same step budget (dt=1e-4):");
    std::printf("  %-22s %12s %12s %14s\n", "strategy", "time [ms]", "|err|", "f-evals");
    b::rule();
    for (const char* name : {"Euler", "Heun", "AB2", "RK4", "RK45"}) {
        auto m = s::makeIntegrator(name);
        s::FnOde sys(2, rhs);
        double xe = 0;
        const double tm = b::timeMedian([&] {
            s::Vec x{1.0, 0.0};
            double t = 0;
            sys.resetEvalCount();
            for (int i = 0; i < kSteps; ++i, t += kDt) m->step(sys, t, kDt, x);
            xe = x[0];
        });
        std::printf("  %-22s %12.3f %12.2e %14llu\n", name, tm * 1e3, std::abs(xe - exact),
                    static_cast<unsigned long long>(sys.evals()));
    }

    // --- runtime swap --------------------------------------------------------
    std::puts("\nRuntime strategy swap (Euler -> RK45 at t = 0.5 s), full network:");
    f::Streamer top{"osc"};
    c::Integrator pos("pos", &top, 1.0);
    c::Integrator vel("vel", &top, 0.0);
    c::Gain neg("neg", &top, -1.0);
    f::flow(vel.out(), pos.in());
    f::flow(pos.out(), neg.in());
    f::flow(neg.out(), vel.in());
    f::SolverRunner runner(top, s::makeIntegrator("Euler"), 1e-3);
    runner.initialize(0.0);
    runner.advanceTo(0.5);
    const double swapCost = b::timeOnce([&] { runner.setIntegrator(s::makeIntegrator("RK45")); });
    runner.advanceTo(1.0);
    std::printf("  swap cost: %.1f ns; final |err| = %.2e (state preserved across swap)\n",
                swapCost * 1e9, std::abs(runner.state()[0] - exact));

    std::puts("\nShape check: strategy interface ~= inlined (small constant), network");
    std::puts("adds per-block port traffic; higher-order strategies dominate on");
    std::puts("accuracy at equal budget. Matches the paper's Figure 1 motivation.");
    return 0;
}
