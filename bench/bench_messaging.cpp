/// \file bench_messaging.cpp
/// Supporting experiment S2: "communication between capsules and streamers
/// is realized by communication mechanism of threads". Benchmarks every
/// mechanism the runtime offers so the deployment choice in Figure 3 is
/// grounded in numbers:
///
///  * intra-controller capsule-to-capsule messaging (queue round trip)
///  * cross-controller (cross-thread) messaging
///  * capsule -> SPort -> streamer hand-off (the hybrid boundary)
///  * SpscRing vs BlockingChannel raw throughput
///  * timer service scheduling under load

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <thread>

#include "flow/channel.hpp"
#include "flow/sport.hpp"
#include "flow/streamer.hpp"
#include "obs/obs.hpp"
#include "rt/rt.hpp"

namespace rt = urtx::rt;
namespace f = urtx::flow;

namespace {

rt::Protocol& msgProto() {
    static rt::Protocol p = [] {
        rt::Protocol q{"Msg"};
        q.out("req").in("rsp");
        return q;
    }();
    return p;
}

struct Echo : rt::Capsule {
    explicit Echo(std::string n) : rt::Capsule(std::move(n)), port(*this, "p", msgProto(), true) {}
    rt::Port port;

protected:
    void onMessage(const rt::Message& m) override {
        if (m.signal == rt::signal("req")) port.send("rsp");
    }
};

struct Client : rt::Capsule {
    explicit Client(std::string n)
        : rt::Capsule(std::move(n)), port(*this, "p", msgProto(), false) {}
    rt::Port port;
    std::atomic<std::uint64_t> rsps{0};

protected:
    void onMessage(const rt::Message& m) override {
        if (m.signal == rt::signal("rsp")) ++rsps;
    }
};

void BM_intra_controller_roundtrip(benchmark::State& state) {
    rt::Controller ctl{"one"};
    Client client{"client"};
    Echo echo{"echo"};
    rt::connect(client.port, echo.port);
    ctl.attach(client);
    ctl.attach(echo);
    for (auto _ : state) {
        client.port.send("req");
        ctl.dispatchAll(); // req then rsp
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_intra_controller_roundtrip);

void BM_cross_thread_roundtrip(benchmark::State& state) {
    rt::Controller c1{"c1"}, c2{"c2"};
    Client client{"client"};
    Echo echo{"echo"};
    rt::connect(client.port, echo.port);
    c1.attach(client);
    c2.attach(echo);
    c1.start();
    c2.start();
    std::uint64_t sent = 0;
    for (auto _ : state) {
        client.port.send("req");
        ++sent;
        // Pipelined: wait only every 64 messages to amortize sync.
        if ((sent & 63u) == 0) {
            while (client.rsps.load(std::memory_order_relaxed) + 32 < sent) {
                std::this_thread::yield();
            }
        }
    }
    while (client.rsps.load() < sent) std::this_thread::yield();
    c1.stop();
    c2.stop();
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_cross_thread_roundtrip);

void BM_capsule_to_streamer_handoff(benchmark::State& state) {
    struct Tunable : f::Streamer {
        using f::Streamer::Streamer;
        std::uint64_t got = 0;
        void onSignal(f::SPort&, const rt::Message&) override { ++got; }
    };
    Tunable streamer{"s"};
    f::SPort sp(streamer, "ctl", msgProto(), true);
    rt::Capsule cap{"cap"};
    rt::Port cp(cap, "p", msgProto(), false);
    rt::connect(cp, sp.rtPort());
    for (auto _ : state) {
        cp.send("req");
        sp.drain();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_capsule_to_streamer_handoff);

void BM_spsc_ring_throughput(benchmark::State& state) {
    f::SpscRing<double> ring(4096);
    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> consumed{0};
    std::thread consumer([&] {
        while (!done.load(std::memory_order_acquire)) {
            while (ring.pop()) consumed.fetch_add(1, std::memory_order_relaxed);
        }
        while (ring.pop()) consumed.fetch_add(1, std::memory_order_relaxed);
    });
    std::uint64_t produced = 0;
    for (auto _ : state) {
        while (!ring.push(1.0)) {
        }
        ++produced;
    }
    done.store(true, std::memory_order_release);
    consumer.join();
    state.SetItemsProcessed(static_cast<int64_t>(produced));
    state.counters["occupancy_hwm"] =
        benchmark::Counter(static_cast<double>(ring.highWater()));
}
BENCHMARK(BM_spsc_ring_throughput);

void BM_blocking_channel_throughput(benchmark::State& state) {
    f::BlockingChannel<double> ch;
    std::atomic<bool> done{false};
    std::thread consumer([&] {
        while (!done.load(std::memory_order_acquire)) {
            while (ch.tryPop()) {
            }
        }
        while (ch.tryPop()) {
        }
    });
    for (auto _ : state) {
        ch.push(1.0);
    }
    done.store(true, std::memory_order_release);
    consumer.join();
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
    state.counters["occupancy_hwm"] =
        benchmark::Counter(static_cast<double>(ch.highWater()));
}
BENCHMARK(BM_blocking_channel_throughput);

void BM_timer_heap_under_load(benchmark::State& state) {
    const auto preload = static_cast<std::size_t>(state.range(0));
    rt::Capsule cap{"cap"};
    rt::TimerService ts;
    for (std::size_t i = 0; i < preload; ++i) {
        ts.informIn(cap, 0.0, 1.0 + 1e-6 * static_cast<double>(i), rt::signal("t"));
    }
    for (auto _ : state) {
        const auto id = ts.informIn(cap, 0.0, 0.5, rt::signal("t"));
        ts.cancel(id);
    }
}
BENCHMARK(BM_timer_heap_under_load)->Arg(0)->Arg(1000)->Arg(100000);

void BM_priority_queue_mixed(benchmark::State& state) {
    rt::MessageQueue q;
    int i = 0;
    for (auto _ : state) {
        rt::Message m(rt::signal("x"), {},
                      static_cast<rt::Priority>(static_cast<unsigned>(i++) % 5));
        q.push(std::move(m));
        benchmark::DoNotOptimize(q.tryPop());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_priority_queue_mixed);

} // namespace

int main(int argc, char** argv) {
    // The causal-tracing fields (spanId + enqueueNanos) ride in every
    // message; keep their footprint visible so a regression in the struct
    // layout (message.hpp documents 64 bytes on LP64) shows up here.
    std::printf("sizeof(rt::Message) = %zu bytes (documented layout: 64 on x86-64/LP64)\n\n",
                sizeof(rt::Message));

    // Run the mechanisms with the telemetry layer counting, then summarize
    // what actually moved — grounds the per-op timings in traffic volumes.
    urtx::obs::setMetricsEnabled(true);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    urtx::obs::setMetricsEnabled(false);

    namespace obs = urtx::obs;
    const obs::Snapshot snap = obs::Registry::global().snapshot();
    auto counter = [&](const char* name) -> unsigned long long {
        const auto* c = snap.counter(name);
        return c ? static_cast<unsigned long long>(c->value) : 0ull;
    };
    std::printf("\nTelemetry totals across all mechanism benchmarks:\n");
    std::printf("  rt.messages_dispatched : %llu\n", counter("rt.messages_dispatched"));
    std::printf("  flow.sport_sends       : %llu\n", counter("flow.sport_sends"));
    std::printf("  flow.sport_drained     : %llu\n", counter("flow.sport_drained"));
    if (const auto* g = snap.gauge("rt.queue_depth_hwm")) {
        std::printf("  rt.queue_depth_hwm     : %.0f\n", g->value);
    }
    if (const auto* h = snap.histogram("rt.dispatch_latency_seconds.general")) {
        std::printf("  dispatch latency mean  : %.0f ns over %llu dispatches\n",
                    h->mean() * 1e9, static_cast<unsigned long long>(h->count));
    }
    return 0;
}
