/// \file bench_ablation.cpp
/// Ablations of the implementation's design choices (beyond the paper's
/// artifacts): what each mechanism costs relative to the obvious
/// alternative it replaced.
///
///  A1  DPort projection binding: composed-at-flatten slot map vs
///      recomputing the projection on every transfer vs a raw memcpy
///      (the unreachable lower bound).
///  A2  zero-crossing localization tolerance: bisection probes and event
///      time error vs tolerance.
///  A3  priority-lane message queue vs a single FIFO lane.
///  A4  run-to-completion innermost-first transition lookup vs state
///      machine depth.
///  A5  solver major-step size: signal service latency vs integration
///      cost (the communication-grid tradeoff in SolverRunner).

#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>

#include "bench_util.hpp"
#include "control/control.hpp"
#include "flow/flow.hpp"
#include "rt/rt.hpp"

namespace f = urtx::flow;
namespace c = urtx::control;
namespace s = urtx::solver;
namespace rt = urtx::rt;
namespace b = urtx::bench;

namespace {

struct Plain : f::Streamer {
    using f::Streamer::Streamer;
};

void ablationProjection() {
    std::puts("A1 — DPort transfer mechanism (width 64 record, 1M transfers)");
    std::printf("  %-38s %12s\n", "mechanism", "time [ms]");
    b::rule();

    constexpr std::size_t kWidth = 64;
    constexpr int kIters = 1000000;
    std::vector<f::FlowType::Field> fields;
    for (std::size_t i = 0; i < kWidth; ++i)
        fields.push_back({"f" + std::to_string(i), f::FlowType::real()});
    const auto type = f::FlowType::record(fields);

    Plain parent{"p"};
    Plain a{"a", &parent}, bb{"b", &parent};
    f::DPort out(a, "out", f::DPortDir::Out, type);
    f::DPort in(bb, "in", f::DPortDir::In, type);
    f::flow(out, in);

    // (i) bound projection (the shipped design).
    auto proj = f::FlowType::projection(out.type(), in.type());
    in.bindResolved(&out, *proj);
    const double bound = b::timeMedian([&] {
        for (int i = 0; i < kIters; ++i) in.refresh();
    });
    std::printf("  %-38s %12.2f\n", "bound slot map (shipped)", bound * 1e3);

    // (ii) recomputing the projection per transfer (the rejected design).
    const double recompute = b::timeMedian(
        [&] {
            for (int i = 0; i < kIters / 100; ++i) { // scaled: 100x fewer iters
                auto p2 = f::FlowType::projection(out.type(), in.type());
                in.bindResolved(&out, std::move(*p2));
                in.refresh();
            }
        },
        3);
    std::printf("  %-38s %12.2f   (x100 scaled)\n", "recompute projection per transfer",
                recompute * 100 * 1e3);

    // (iii) raw memcpy lower bound.
    std::vector<double> src(kWidth, 1.0), dst(kWidth);
    const double raw = b::timeMedian([&] {
        for (int i = 0; i < kIters; ++i) {
            std::memcpy(dst.data(), src.data(), kWidth * sizeof(double));
            b::keep(dst[0]);
        }
    });
    std::printf("  %-38s %12.2f\n", "raw memcpy (lower bound)", raw * 1e3);
    std::printf("  => bound map costs %.1fx memcpy; recompute would cost %.0fx\n\n",
                bound / raw, recompute * 100 / raw);
}

void ablationZeroCrossing() {
    std::puts("A2 — zero-crossing localization tolerance (falling ball)");
    std::printf("  %-10s %14s %14s\n", "tol [s]", "f-evals", "time err [s]");
    b::rule();
    const double tTrue = std::sqrt(2.0 * 10.0 / 9.81);
    for (double tol : {1e-3, 1e-6, 1e-9, 1e-12}) {
        s::FnOde sys(2, [](double, const s::Vec& x, s::Vec& dx) {
            dx[0] = x[1];
            dx[1] = -9.81;
        });
        s::Rk4Integrator rk4;
        s::ZeroCrossingDetector det(tol);
        det.addEvent([](double, const s::Vec& x) { return x[0]; });
        s::Vec x{10.0, 0.0};
        det.prime(0.0, x);
        double t = 0;
        s::Crossing cross{};
        bool found = false;
        sys.resetEvalCount();
        while (!found && t < 3.0) {
            s::Vec x0 = x;
            rk4.step(sys, t, 0.05, x);
            found = det.check(sys, rk4, t, 0.05, x0, x, cross);
            t += 0.05;
        }
        std::printf("  %-10.0e %14llu %14.2e\n", tol,
                    static_cast<unsigned long long>(sys.evals()),
                    found ? std::abs(cross.t - tTrue) : -1.0);
    }
    std::puts("  => each decade of tolerance costs ~3-4 bisection probes (log2 10)\n");
}

void ablationPriorityLanes() {
    std::puts("A3 — priority-lane queue vs single FIFO (1M push+pop, mixed prio)");
    constexpr int kIters = 1000000;

    rt::MessageQueue lanes;
    const double lanesTime = b::timeMedian([&] {
        for (int i = 0; i < kIters; ++i) {
            lanes.push(rt::Message(0, {}, static_cast<rt::Priority>(i % 5)));
            auto msg = lanes.tryPop();
            b::keep(static_cast<double>(msg->sequence));
        }
    });

    std::deque<rt::Message> fifo;
    std::mutex mu;
    const double fifoTime = b::timeMedian([&] {
        for (int i = 0; i < kIters; ++i) {
            {
                std::lock_guard lock(mu);
                fifo.push_back(rt::Message(0, {}, rt::Priority::General));
            }
            std::lock_guard lock(mu);
            b::keep(static_cast<double>(fifo.front().sequence));
            fifo.pop_front();
        }
    });
    std::printf("  five priority lanes: %.2f ms; single FIFO: %.2f ms  (overhead %.0f%%)\n",
                lanesTime * 1e3, fifoTime * 1e3, 100.0 * (lanesTime / fifoTime - 1.0));
    std::puts("  => UML-RT priority semantics cost little over a plain queue\n");
}

void ablationMachineDepth() {
    std::puts("A4 — RTC dispatch vs state machine depth (innermost-first search)");
    std::printf("  %-8s %16s\n", "depth", "dispatch [ns]");
    b::rule();
    for (int depth : {1, 4, 16, 64}) {
        rt::Capsule cap{"cap"};
        rt::State* parent = nullptr;
        rt::State* leaf = nullptr;
        for (int i = 0; i < depth; ++i) {
            leaf = &cap.machine().state("s" + std::to_string(i), parent);
            parent = leaf;
        }
        // Handler on the OUTERMOST state: worst case walks the whole chain.
        auto& top = *cap.machine().top().children()[0];
        cap.machine().internal(top).on("poke");
        cap.initialize();
        rt::Message m(rt::signal("poke"));
        constexpr int kIters = 1000000;
        const double t = b::timeMedian([&] {
            for (int i = 0; i < kIters; ++i) cap.machine().dispatch(m);
        });
        std::printf("  %-8d %16.1f\n", depth, t / kIters * 1e9);
    }
    std::puts("  => linear in depth, ~ns per level: deep hierarchies stay cheap\n");
}

void ablationMajorStep() {
    std::puts("A5 — solver major step: signal latency vs integration overhead");
    std::printf("  %-12s %14s %18s\n", "major dt", "sim time [ms]", "drain calls");
    b::rule();
    for (double dt : {0.1, 0.01, 0.001}) {
        Plain top{"plant"};
        c::Integrator integ("x", &top, 1.0);
        c::Gain fb("fb", &top, -1.0);
        f::flow(integ.out(), fb.in());
        f::flow(fb.out(), integ.in());
        f::SolverRunner runner(top, s::makeIntegrator("RK4"), dt);
        runner.initialize(0.0);
        const double t = b::timeMedian([&] { runner.advanceTo(runner.time() + 5.0); }, 3);
        std::printf("  %-12g %14.2f %18llu\n", dt, t * 1e3,
                    static_cast<unsigned long long>(runner.majorSteps()));
    }
    std::puts("  => finer grids buy lower capsule<->streamer signal latency at a");
    std::puts("     linear cost in update/probe passes; pick dt per control rate.");
}

} // namespace

int main() {
    std::puts("==============================================================");
    std::puts("Ablations — design choices behind the implementation");
    std::puts("==============================================================\n");
    ablationProjection();
    ablationZeroCrossing();
    ablationPriorityLanes();
    ablationMachineDepth();
    ablationMajorStep();
    return 0;
}
