#pragma once
/// \file bench_util.hpp
/// Tiny timing helpers for the table-style benchmark harnesses (the
/// google-benchmark binaries use the library directly; these helpers serve
/// the paper-artifact tables where we control the output format).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

namespace urtx::bench {

/// Wall-clock seconds of one call.
template <class F>
double timeOnce(F&& f) {
    const auto start = std::chrono::steady_clock::now();
    f();
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

/// Median wall-clock seconds over \p reps calls.
template <class F>
double timeMedian(F&& f, int reps = 5) {
    std::vector<double> times;
    times.reserve(static_cast<std::size_t>(reps));
    for (int i = 0; i < reps; ++i) times.push_back(timeOnce(f));
    std::sort(times.begin(), times.end());
    return times[times.size() / 2];
}

inline void rule(char c = '-', int n = 78) {
    for (int i = 0; i < n; ++i) std::putchar(c);
    std::putchar('\n');
}

/// Prevent the optimizer from discarding a value.
inline void keep(double v) {
    volatile double sink = v;
    (void)sink;
}

} // namespace urtx::bench
