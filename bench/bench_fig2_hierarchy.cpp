/// \file bench_fig2_hierarchy.cpp
/// Regenerates the paper's **Figure 2** (abstract syntax of streamers: top
/// streamer with DPorts/SPorts, sub-streamers, flow and relay connectors,
/// a solver) and characterizes what the hierarchy machinery costs:
///
///  * the exact Figure 2 topology is built programmatically and validated,
///  * flattening cost (Network construction) vs hierarchy depth x width,
///  * steady-state dataflow throughput after flattening (the paper's
///    design point: hierarchy is a modeling artifact, the solver runs on
///    the flattened network),
///  * relay fan-out scaling.
///
/// Expected shape: flattening is a one-time cost growing with element
/// count; per-step cost depends on leaf count only, not nesting depth.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "control/control.hpp"
#include "flow/flow.hpp"
#include "rt/rt.hpp"

namespace f = urtx::flow;
namespace c = urtx::control;
namespace s = urtx::solver;
namespace rt = urtx::rt;
namespace b = urtx::bench;

namespace {

struct Plain : f::Streamer {
    using f::Streamer::Streamer;
};

rt::Protocol& supProto() {
    static rt::Protocol p = [] {
        rt::Protocol q{"Supervision"};
        q.out("status").in("command");
        return q;
    }();
    return p;
}

/// Build the Figure 2 topology: a top streamer with one input DPort and an
/// SPort, three sub-streamers, one relay duplicating sub1's output into
/// sub2 and sub3.
struct Figure2 {
    Plain top{"TopStreamer"};
    f::DPort uIn;
    c::FirstOrderLag sub1;
    c::FirstOrderLag sub2;
    c::Integrator sub3;
    f::Relay relay;
    f::SPort sport;

    Figure2()
        : uIn(top, "u", f::DPortDir::In, f::FlowType::real()),
          sub1("sub1", &top, 0.2),
          sub2("sub2", &top, 0.5),
          sub3("sub3", &top, 0.0),
          relay("relay", &top, f::FlowType::real(), 2),
          sport(top, "sport", supProto(), false) {
        f::flow(uIn, sub1.in());
        f::flow(sub1.out(), relay.in());
        f::flow(relay.out(0), sub2.in());
        f::flow(relay.out(1), sub3.in());
    }
};

/// Build a balanced hierarchy: `depth` levels of composites, `width`
/// children per composite; leaves are lag blocks chained sibling-to-sibling
/// at the deepest level. Returns leaf count.
struct HierarchyBench {
    std::unique_ptr<Plain> root;
    std::vector<std::unique_ptr<f::Streamer>> keep;
    std::size_t leaves = 0;

    HierarchyBench(int depth, int width) {
        root = std::make_unique<Plain>("root");
        build(root.get(), depth, width);
    }

    ~HierarchyBench() {
        // Children are pushed before their composites; release in forward
        // order so every streamer outlives its own children.
        for (auto& p : keep) p.reset();
    }

    void build(f::Streamer* parent, int depth, int width) {
        if (depth == 0) {
            // A small chain: source -> lag -> lag.
            auto src = std::make_unique<c::Constant>("src", parent, 1.0);
            auto l1 = std::make_unique<c::FirstOrderLag>("l1", parent, 0.3);
            auto l2 = std::make_unique<c::FirstOrderLag>("l2", parent, 0.7);
            f::flow(src->out(), l1->in());
            f::flow(l1->out(), l2->in());
            leaves += 3;
            keep.push_back(std::move(src));
            keep.push_back(std::move(l1));
            keep.push_back(std::move(l2));
            return;
        }
        for (int i = 0; i < width; ++i) {
            auto comp = std::make_unique<Plain>(
                "c" + std::to_string(depth) + "_" + std::to_string(i), parent);
            build(comp.get(), depth - 1, width);
            keep.push_back(std::move(comp));
        }
    }
};

} // namespace

int main() {
    std::puts("==============================================================");
    std::puts("Figure 2 — Abstract syntax of streamers (reproduced + measured)");
    std::puts("==============================================================");
    std::puts("Topology (as in the paper):");
    std::puts("  Top streamer [DPort u] [SPort sport] [solver]");
    std::puts("    u --flow--> sub1 --flow--> relay ==two flows==> sub2, sub3\n");

    // --- the literal Figure 2 model -----------------------------------------
    Figure2 fig;
    f::Network net(fig.top);
    std::printf("built & flattened: %zu leaves, %zu resolved connections, "
                "%zu boundary ports, %zu sports, state dim %zu\n",
                net.leafCount(), net.connectionCount(), net.boundaryPortCount(),
                net.allSPorts().size(), net.stateSize());
    fig.uIn.set(1.0);
    s::Vec x;
    net.initState(0.0, x);
    net.computeOutputs(0.0, x);
    std::printf("dataflow check: u=1 -> sub2.in=%.3f, sub3.in=%.3f (relay duplicated)\n\n",
                fig.sub2.in().get(), fig.sub3.in().get());

    // --- flattening cost sweep ----------------------------------------------
    std::puts("Flattening (one-time) vs per-step cost across hierarchy shapes:");
    std::printf("  %-14s %8s %10s %14s %16s\n", "depth x width", "leaves", "states",
                "flatten [us]", "1k steps [ms]");
    b::rule();

    struct Shape {
        int depth, width;
    };
    for (const Shape shape : {Shape{0, 0}, Shape{1, 4}, Shape{2, 4}, Shape{3, 4}, Shape{2, 8},
                              Shape{4, 2}, Shape{6, 2}}) {
        HierarchyBench h(shape.depth, shape.width);
        double flatten = 0;
        std::unique_ptr<f::Network> netp;
        flatten = b::timeMedian([&] { netp = std::make_unique<f::Network>(*h.root); }, 3);
        s::Vec xs, dxs;
        netp->initState(0.0, xs);
        const double stepTime = b::timeMedian(
            [&] {
                for (int i = 0; i < 1000; ++i) netp->derivatives(0.0, xs, dxs);
            },
            3);
        std::printf("  %-14s %8zu %10zu %14.1f %16.2f\n",
                    (std::to_string(shape.depth) + " x " + std::to_string(shape.width)).c_str(),
                    netp->leafCount(), netp->stateSize(), flatten * 1e6, stepTime * 1e3);
    }

    // --- depth invariance at fixed leaf count --------------------------------
    std::puts("\nDepth invariance (same 48 leaf chains, different nesting):");
    std::printf("  %-14s %8s %14s %16s\n", "depth x width", "leaves", "flatten [us]",
                "1k steps [ms]");
    b::rule();
    for (const Shape shape : {Shape{1, 16}, Shape{2, 4}, Shape{4, 2}}) {
        HierarchyBench h(shape.depth, shape.width);
        auto netp = std::make_unique<f::Network>(*h.root);
        s::Vec xs, dxs;
        netp->initState(0.0, xs);
        const double flatten = b::timeMedian([&] { f::Network n2(*h.root); }, 3);
        const double stepTime = b::timeMedian(
            [&] {
                for (int i = 0; i < 1000; ++i) netp->derivatives(0.0, xs, dxs);
            },
            3);
        std::printf("  %-14s %8zu %14.1f %16.2f\n",
                    (std::to_string(shape.depth) + " x " + std::to_string(shape.width)).c_str(),
                    netp->leafCount(), flatten * 1e6, stepTime * 1e3);
    }

    // --- relay fan-out scaling ------------------------------------------------
    std::puts("\nRelay fan-out (one source duplicated to N consumers):");
    std::printf("  %-8s %18s\n", "fanout", "1M copies [ms]");
    b::rule(' ', 0);
    for (std::size_t fan : {2u, 4u, 8u, 16u, 32u}) {
        Plain parent{"p"};
        f::Relay relay("r", &parent, f::FlowType::real(), fan);
        relay.in().set(1.0);
        const double t = b::timeMedian(
            [&] {
                for (int i = 0; i < 1000000; ++i) relay.outputs(0.0, {});
            },
            3);
        std::printf("  %-8zu %18.2f\n", fan, t * 1e3);
    }

    std::puts("\nShape check: per-step cost tracks leaf count, not nesting depth;");
    std::puts("flattening is a one-time cost; relay cost is linear in fan-out.");
    return 0;
}
