/// \file bench_srvd_latency.cpp
/// Serving-daemon request latency through the real wire path (socketpair +
/// newline-delimited JSON), one request in flight at a time so each number
/// is a round-trip, not a throughput artifact. Three configurations over
/// the same 256-job stream:
///
///   cold   — warm cache and result cache disabled: every job builds its
///            scenario from scratch (the pre-daemon cost model);
///   warm   — warm cache on, result cache off: every job after the first
///            runs on a reset cached instance (no rebuild, real execution);
///   cached — result cache on: bit-identical reruns replay the stored
///            record without touching the engine at all.
///
/// A machine-readable summary is written to BENCH_srvd.json. The headline
/// claim is warm p50 < cold p50 (construction cost off the request path).

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "srv/daemon/daemon.hpp"
#include "srv/scenarios/scenarios.hpp"

namespace srv = urtx::srv;
namespace scen = urtx::srv::scenarios;

namespace {

constexpr int kJobs = 256;

/// One-request-at-a-time client on the test end of a socketpair.
class Client {
public:
    explicit Client(srv::ServeDaemon& daemon) {
        int sv[2] = {-1, -1};
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return;
        fd_ = sv[0];
        daemon.adoptConnection(sv[1]);
    }
    ~Client() {
        if (fd_ >= 0) ::close(fd_);
    }
    bool ok() const { return fd_ >= 0; }

    /// Send one job line and block until its record line arrives.
    bool roundTrip(const std::string& jobLine) {
        std::string out = jobLine + "\n";
        std::size_t off = 0;
        while (off < out.size()) {
            const ssize_t n = ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
            if (n <= 0) return false;
            off += static_cast<std::size_t>(n);
        }
        for (;;) {
            if (pending_.find('\n') != std::string::npos) {
                pending_.erase(0, pending_.find('\n') + 1);
                return true;
            }
            char chunk[4096];
            const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0) return false;
            pending_.append(chunk, static_cast<std::size_t>(n));
        }
    }

private:
    int fd_ = -1;
    std::string pending_;
};

struct Row {
    const char* mode;
    double p50Ms = 0, p99Ms = 0, meanMs = 0;
};

Row measure(const char* mode, std::size_t warmCap, std::size_t resultCap) {
    srv::DaemonConfig cfg;
    cfg.engine.workers = 1; // latency, not throughput
    cfg.engine.scopedMetrics = false;
    cfg.engine.postmortems = false;
    cfg.warmCacheCapacity = warmCap;
    cfg.resultCacheCapacity = resultCap;
    srv::ServeDaemon daemon(cfg);
    if (!daemon.start()) std::abort();
    Client c(daemon);
    if (!c.ok()) std::abort();

    const std::string job =
        "{\"scenario\": \"tank\", \"name\": \"j\", \"horizon\": 2, \"mode\": \"single\"}";
    std::vector<double> ms;
    ms.reserve(kJobs);
    for (int i = 0; i < kJobs; ++i) {
        const double s = urtx::bench::timeOnce([&] {
            if (!c.roundTrip(job)) std::abort();
        });
        ms.push_back(s * 1e3);
    }
    daemon.stop();

    std::sort(ms.begin(), ms.end());
    Row row;
    row.mode = mode;
    row.p50Ms = ms[ms.size() / 2];
    row.p99Ms = ms[(ms.size() * 99) / 100];
    for (const double v : ms) row.meanMs += v;
    row.meanMs /= static_cast<double>(ms.size());
    return row;
}

} // namespace

int main() {
    scen::registerBuiltins();
    std::printf("srvd request latency: %d sequential jobs per configuration\n\n", kJobs);
    urtx::bench::rule();
    std::printf("%8s %12s %12s %12s\n", "mode", "p50 [ms]", "p99 [ms]", "mean [ms]");
    urtx::bench::rule();

    std::vector<Row> rows;
    rows.push_back(measure("cold", 0, 0));
    rows.push_back(measure("warm", 4, 0));
    rows.push_back(measure("cached", 4, 256));
    for (const Row& r : rows) {
        std::printf("%8s %12.4f %12.4f %12.4f\n", r.mode, r.p50Ms, r.p99Ms, r.meanMs);
    }
    urtx::bench::rule();

    const bool warmWins = rows[1].p50Ms < rows[0].p50Ms;
    std::printf("warm p50 %s cold p50 (%.4f vs %.4f ms)\n", warmWins ? "<" : ">=",
                rows[1].p50Ms, rows[0].p50Ms);

    std::ofstream f("BENCH_srvd.json");
    f << "{\n  \"benchmark\": \"srvd_latency\",\n";
    f << "  \"jobs_per_mode\": " << kJobs << ",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        char buf[192];
        std::snprintf(buf, sizeof(buf),
                      "    {\"mode\": \"%s\", \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
                      "\"mean_ms\": %.4f}%s\n",
                      rows[i].mode, rows[i].p50Ms, rows[i].p99Ms, rows[i].meanMs,
                      i + 1 < rows.size() ? "," : "");
        f << buf;
    }
    f << "  ],\n  \"warm_p50_below_cold_p50\": " << (warmWins ? "true" : "false")
      << "\n}\n";
    std::puts("wrote BENCH_srvd.json");
    return 0;
}
