/// \file bench_srvd_latency.cpp
/// Serving-daemon request latency through the real wire path (socketpair
/// into the epoll reactor), one request in flight at a time so each number
/// is a round-trip, not a throughput artifact. Four configurations over
/// the same 256-job stream:
///
///   cold       — warm cache and result cache disabled: every job builds
///                its scenario from scratch (the pre-daemon cost model);
///   warm       — warm cache on, result cache off: every job after the
///                first runs on a reset cached instance (no rebuild);
///   cached     — result cache on: bit-identical reruns replay the stored
///                record without touching the engine at all;
///   cached-bin — same replay over the generated binary framing (no JSON
///                parse/render on the request path);
///   cached-bin+tick — cached-bin with the windowed stats ticker running
///                at 10 ms (100x the daemon default), bounding what the
///                reactor-thread snapshot walk adds to the request path.
///
/// A second table drives the reactor to saturation: C binary connections
/// (C up to 512), one cached job in flight on each, measuring sustained
/// requests/second and per-request latency percentiles as C grows. The
/// 64-connection point repeats with the 10 ms ticker on; the acceptance
/// bound is a cached-throughput regression under 2%.
///
/// A machine-readable summary is written to BENCH_srvd.json. The headline
/// claims are warm p50 < cold p50 (construction cost off the request
/// path) and binary cached p50 <= JSON cached p50 (framing is not the
/// bottleneck).

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "srv/daemon/daemon.hpp"
#include "srv/daemon/framing.hpp"
#include "srv/scenarios/scenarios.hpp"

namespace srv = urtx::srv;
namespace scen = urtx::srv::scenarios;
namespace wire = urtx::srv::wire;
namespace wiregen = urtx::srv::wiregen;

namespace {

constexpr int kJobs = 256;

srv::ScenarioSpec benchSpec() {
    srv::ScenarioSpec spec;
    spec.scenario = "tank";
    spec.name = "j";
    spec.horizon = 2.0;
    spec.mode = urtx::sim::ExecutionMode::SingleThread;
    return spec;
}

bool sendAll(int fd, const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
        if (n <= 0) return false;
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/// One-request-at-a-time JSON client on the test end of a socketpair.
class Client {
public:
    explicit Client(srv::ServeDaemon& daemon) {
        int sv[2] = {-1, -1};
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return;
        fd_ = sv[0];
        daemon.adoptConnection(sv[1]);
    }
    ~Client() {
        if (fd_ >= 0) ::close(fd_);
    }
    bool ok() const { return fd_ >= 0; }

    /// Send one job line and block until its record line arrives.
    bool roundTrip(const std::string& jobLine) {
        if (!sendAll(fd_, jobLine + "\n")) return false;
        for (;;) {
            if (pending_.find('\n') != std::string::npos) {
                pending_.erase(0, pending_.find('\n') + 1);
                return true;
            }
            char chunk[4096];
            const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0) return false;
            pending_.append(chunk, static_cast<std::size_t>(n));
        }
    }

private:
    int fd_ = -1;
    std::string pending_;
};

/// One-request-at-a-time binary-framing client: preamble handshake in the
/// constructor, then Job frame out / Result frame in per round-trip.
class BinClient {
public:
    explicit BinClient(srv::ServeDaemon& daemon) {
        int sv[2] = {-1, -1};
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return;
        fd_ = sv[0];
        daemon.adoptConnection(sv[1]);
        if (!sendAll(fd_, wire::preamble()) || !readBytes(wiregen::kPreambleBytes)) {
            ::close(fd_);
            fd_ = -1;
            return;
        }
        pending_.erase(0, wiregen::kPreambleBytes);
    }
    ~BinClient() {
        if (fd_ >= 0) ::close(fd_);
    }
    bool ok() const { return fd_ >= 0; }

    bool roundTrip(const std::string& jobFrame) {
        if (!sendAll(fd_, jobFrame)) return false;
        for (;;) {
            const auto h = wire::peekFrameHeader(pending_);
            if (h && pending_.size() >= wiregen::kFrameHeaderBytes + h->length) {
                pending_.erase(0, wiregen::kFrameHeaderBytes + h->length);
                return true;
            }
            char chunk[4096];
            const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0) return false;
            pending_.append(chunk, static_cast<std::size_t>(n));
        }
    }

private:
    bool readBytes(std::size_t n) {
        while (pending_.size() < n) {
            char chunk[4096];
            const ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (r <= 0) return false;
            pending_.append(chunk, static_cast<std::size_t>(r));
        }
        return true;
    }

    int fd_ = -1;
    std::string pending_;
};

srv::DaemonConfig benchConfig(std::size_t warmCap, std::size_t resultCap,
                              double statsTick = 0.0) {
    srv::DaemonConfig cfg;
    cfg.engine.workers = 1; // latency, not throughput
    cfg.engine.scopedMetrics = false;
    cfg.engine.postmortems = false;
    cfg.warmCacheCapacity = warmCap;
    cfg.resultCacheCapacity = resultCap;
    cfg.statsTickSeconds = statsTick; // 0 = pre-ticker serving edge
    return cfg;
}

struct Row {
    const char* mode;
    double p50Ms = 0, p99Ms = 0, meanMs = 0;
};

Row summarize(const char* mode, std::vector<double>& ms) {
    std::sort(ms.begin(), ms.end());
    Row row;
    row.mode = mode;
    row.p50Ms = ms[ms.size() / 2];
    row.p99Ms = ms[(ms.size() * 99) / 100];
    for (const double v : ms) row.meanMs += v;
    row.meanMs /= static_cast<double>(ms.size());
    return row;
}

Row measure(const char* mode, std::size_t warmCap, std::size_t resultCap) {
    srv::ServeDaemon daemon(benchConfig(warmCap, resultCap));
    if (!daemon.start()) std::abort();
    Client c(daemon);
    if (!c.ok()) std::abort();

    const std::string job =
        "{\"scenario\": \"tank\", \"name\": \"j\", \"horizon\": 2, \"mode\": \"single\"}";
    std::vector<double> ms;
    ms.reserve(kJobs);
    for (int i = 0; i < kJobs; ++i) {
        const double s = urtx::bench::timeOnce([&] {
            if (!c.roundTrip(job)) std::abort();
        });
        ms.push_back(s * 1e3);
    }
    daemon.stop();
    return summarize(mode, ms);
}

Row measureBinary(const char* mode, std::size_t warmCap, std::size_t resultCap,
                  double statsTick = 0.0) {
    srv::ServeDaemon daemon(benchConfig(warmCap, resultCap, statsTick));
    if (!daemon.start()) std::abort();
    BinClient c(daemon);
    if (!c.ok()) std::abort();

    std::string jobFrame;
    wire::appendFrame(jobFrame, wire::FrameType::Job, wire::jobToWire(benchSpec()).encode());
    std::vector<double> ms;
    ms.reserve(kJobs);
    for (int i = 0; i < kJobs; ++i) {
        const double s = urtx::bench::timeOnce([&] {
            if (!c.roundTrip(jobFrame)) std::abort();
        });
        ms.push_back(s * 1e3);
    }
    daemon.stop();
    return summarize(mode, ms);
}

struct SatRow {
    int connections = 0;
    int jobs = 0;
    double qps = 0, p50Ms = 0, p99Ms = 0;
    bool sustained = false; ///< every connection completed its quota
};

/// Saturation loop: \p connections binary clients against one cached
/// daemon, a single poll(2) ring with one job in flight per connection
/// until each completes \p perConn round-trips.
SatRow saturate(int connections, int perConn, const std::string& jobFrame,
                double statsTick = 0.0) {
    using clock = std::chrono::steady_clock;

    srv::DaemonConfig cfg = benchConfig(4, 256, statsTick);
    cfg.engine.workers = 2;
    srv::ServeDaemon daemon(cfg);
    if (!daemon.start()) std::abort();

    // Pre-warm the result cache so the table measures the serving edge
    // (reactor + framing), not 512 concurrent simulations.
    {
        BinClient warm(daemon);
        if (!warm.ok() || !warm.roundTrip(jobFrame)) std::abort();
    }

    struct SatConn {
        int fd = -1;
        std::string in;
        clock::time_point sentAt;
        int remaining = 0;
        bool handshaken = false;
        bool done = false;
    };
    std::vector<SatConn> conns(static_cast<std::size_t>(connections));
    for (auto& sc : conns) {
        int sv[2] = {-1, -1};
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) std::abort();
        sc.fd = sv[0];
        sc.remaining = perConn;
        daemon.adoptConnection(sv[1]);
        if (!sendAll(sc.fd, wire::preamble())) std::abort();
    }

    std::vector<double> ms;
    ms.reserve(static_cast<std::size_t>(connections) * static_cast<std::size_t>(perConn));
    std::vector<pollfd> pfds(conns.size());
    int active = connections;
    const auto wallStart = clock::now();

    while (active > 0) {
        for (std::size_t i = 0; i < conns.size(); ++i) {
            pfds[i].fd = conns[i].done ? -1 : conns[i].fd;
            pfds[i].events = POLLIN;
            pfds[i].revents = 0;
        }
        if (::poll(pfds.data(), pfds.size(), 30000) <= 0) break; // stall guard
        for (std::size_t i = 0; i < conns.size(); ++i) {
            SatConn& sc = conns[i];
            if (sc.done || !(pfds[i].revents & (POLLIN | POLLHUP))) continue;
            char chunk[8192];
            const ssize_t n = ::recv(sc.fd, chunk, sizeof(chunk), MSG_DONTWAIT);
            if (n <= 0) {
                sc.done = true;
                --active;
                continue;
            }
            sc.in.append(chunk, static_cast<std::size_t>(n));
            if (!sc.handshaken) {
                if (sc.in.size() < wiregen::kPreambleBytes) continue;
                if (!wire::checkPreamble(sc.in.data())) std::abort();
                sc.in.erase(0, wiregen::kPreambleBytes);
                sc.handshaken = true;
                sc.sentAt = clock::now();
                if (!sendAll(sc.fd, jobFrame)) std::abort();
            }
            for (;;) {
                const auto h = wire::peekFrameHeader(sc.in);
                if (!h || sc.in.size() < wiregen::kFrameHeaderBytes + h->length) break;
                sc.in.erase(0, wiregen::kFrameHeaderBytes + h->length);
                ms.push_back(std::chrono::duration<double, std::milli>(clock::now() -
                                                                       sc.sentAt)
                                 .count());
                if (--sc.remaining > 0) {
                    sc.sentAt = clock::now();
                    if (!sendAll(sc.fd, jobFrame)) std::abort();
                } else {
                    sc.done = true;
                    --active;
                    break;
                }
            }
        }
    }
    const double wallSeconds =
        std::chrono::duration<double>(clock::now() - wallStart).count();
    for (auto& sc : conns) ::close(sc.fd);
    daemon.stop();

    SatRow row;
    row.connections = connections;
    row.jobs = static_cast<int>(ms.size());
    row.sustained = ms.size() ==
                    static_cast<std::size_t>(connections) * static_cast<std::size_t>(perConn);
    if (ms.empty()) return row;
    row.qps = static_cast<double>(ms.size()) / wallSeconds;
    std::sort(ms.begin(), ms.end());
    row.p50Ms = ms[ms.size() / 2];
    row.p99Ms = ms[(ms.size() * 99) / 100];
    return row;
}

} // namespace

int main() {
    scen::registerBuiltins();
    std::printf("srvd request latency: %d sequential jobs per configuration\n\n", kJobs);
    urtx::bench::rule();
    std::printf("%12s %12s %12s %12s\n", "mode", "p50 [ms]", "p99 [ms]", "mean [ms]");
    urtx::bench::rule();

    std::vector<Row> rows;
    rows.push_back(measure("cold", 0, 0));
    rows.push_back(measure("warm", 4, 0));
    rows.push_back(measure("cached", 4, 256));
    rows.push_back(measureBinary("cached-bin", 4, 256));
    rows.push_back(measureBinary("cached-bin+tick", 4, 256, 0.01));
    for (const Row& r : rows) {
        std::printf("%12s %12.4f %12.4f %12.4f\n", r.mode, r.p50Ms, r.p99Ms, r.meanMs);
    }
    urtx::bench::rule();

    const bool warmWins = rows[1].p50Ms < rows[0].p50Ms;
    const bool binaryWins = rows[3].p50Ms <= rows[2].p50Ms;
    std::printf("warm p50 %s cold p50 (%.4f vs %.4f ms)\n", warmWins ? "<" : ">=",
                rows[1].p50Ms, rows[0].p50Ms);
    std::printf("binary cached p50 %s JSON cached p50 (%.4f vs %.4f ms)\n",
                binaryWins ? "<=" : ">", rows[3].p50Ms, rows[2].p50Ms);

    std::string jobFrame;
    wire::appendFrame(jobFrame, wire::FrameType::Job, wire::jobToWire(benchSpec()).encode());

    std::printf("\nsaturation: concurrent binary connections, 1 cached job in flight each\n\n");
    urtx::bench::rule();
    std::printf("%6s %8s %12s %12s %12s %10s\n", "conns", "jobs", "qps", "p50 [ms]",
                "p99 [ms]", "sustained");
    urtx::bench::rule();
    std::vector<SatRow> sat;
    for (const int c : {1, 8, 64, 256, 512}) {
        const int perConn = c >= 256 ? 16 : 32;
        sat.push_back(saturate(c, perConn, jobFrame));
        const SatRow& s = sat.back();
        std::printf("%6d %8d %12.0f %12.4f %12.4f %10s\n", s.connections, s.jobs, s.qps,
                    s.p50Ms, s.p99Ms, s.sustained ? "yes" : "NO");
    }
    urtx::bench::rule();

    // Windowed-stats ticker steal at load: repeat the 64-connection point
    // with a 10 ms tick (100x the daemon's 1 s default) on the reactor
    // thread. Acceptance: cached throughput regression below 2%.
    const SatRow tickOff = sat[2];
    const SatRow tickOn = saturate(64, 32, jobFrame, 0.01);
    const double tickerRegressionPct =
        tickOff.qps > 0.0 ? (1.0 - tickOn.qps / tickOff.qps) * 100.0 : 0.0;
    const bool tickerOk = tickerRegressionPct < 2.0;
    std::printf("\nstats ticker at 10 ms, 64 conns: %.0f qps vs %.0f qps off "
                "(regression %.2f%%, bound < 2%%: %s)\n",
                tickOn.qps, tickOff.qps, tickerRegressionPct, tickerOk ? "ok" : "EXCEEDED");

    std::ofstream f("BENCH_srvd.json");
    f << "{\n  \"benchmark\": \"srvd_latency\",\n";
    f << "  \"jobs_per_mode\": " << kJobs << ",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        char buf[192];
        std::snprintf(buf, sizeof(buf),
                      "    {\"mode\": \"%s\", \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
                      "\"mean_ms\": %.4f}%s\n",
                      rows[i].mode, rows[i].p50Ms, rows[i].p99Ms, rows[i].meanMs,
                      i + 1 < rows.size() ? "," : "");
        f << buf;
    }
    f << "  ],\n  \"saturation\": [\n";
    for (std::size_t i = 0; i < sat.size(); ++i) {
        char buf[224];
        std::snprintf(buf, sizeof(buf),
                      "    {\"connections\": %d, \"jobs\": %d, \"qps\": %.0f, "
                      "\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"sustained\": %s}%s\n",
                      sat[i].connections, sat[i].jobs, sat[i].qps, sat[i].p50Ms,
                      sat[i].p99Ms, sat[i].sustained ? "true" : "false",
                      i + 1 < sat.size() ? "," : "");
        f << buf;
    }
    f << "  ],\n  \"warm_p50_below_cold_p50\": " << (warmWins ? "true" : "false")
      << ",\n  \"binary_cached_p50_le_json_cached_p50\": " << (binaryWins ? "true" : "false");
    {
        char buf[224];
        std::snprintf(buf, sizeof(buf),
                      ",\n  \"ticker_on\": {\"tick_seconds\": 0.01, \"connections\": 64, "
                      "\"qps\": %.0f, \"qps_off\": %.0f, \"regression_pct\": %.2f, "
                      "\"below_2pct\": %s}\n}\n",
                      tickOn.qps, tickOff.qps, tickerRegressionPct,
                      tickerOk ? "true" : "false");
        f << buf;
    }
    std::puts("wrote BENCH_srvd.json");
    return 0;
}
