/// \file bench_srv_throughput.cpp
/// Serving-engine throughput: one 64-scenario batch executed at worker
/// counts 1 / 2 / 4, with a bit-identity check on every per-scenario trace
/// across worker counts (the scheduler must change wall time only, never
/// trajectories). A machine-readable summary is written to BENCH_srv.json.
///
/// Speedup is only meaningful on a multi-core host; the JSON records
/// hardware_concurrency so single-core CI numbers are not mistaken for a
/// scaling regression.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "srv/engine.hpp"
#include "srv/scenarios/scenarios.hpp"

namespace srv = urtx::srv;
namespace scen = urtx::srv::scenarios;

namespace {

/// 64 jobs, 4 scenario kinds x 16 parameter variants, all SingleThread.
std::vector<srv::ScenarioSpec> batch64() {
    std::vector<srv::ScenarioSpec> specs;
    for (int i = 0; i < 16; ++i) {
        srv::ScenarioSpec s;
        s.scenario = "tank";
        s.name = "tank" + std::to_string(i);
        s.horizon = 8.0;
        s.params.set("qin", 0.5 + 0.02 * i);
        specs.push_back(std::move(s));
    }
    for (int i = 0; i < 16; ++i) {
        srv::ScenarioSpec s;
        s.scenario = "cruise";
        s.name = "cruise" + std::to_string(i);
        s.horizon = 5.0;
        s.params.set("v0", 8.0 + i);
        specs.push_back(std::move(s));
    }
    for (int i = 0; i < 16; ++i) {
        srv::ScenarioSpec s;
        s.scenario = "pendulum";
        s.name = "pend" + std::to_string(i);
        s.horizon = 3.0;
        s.params.set("theta0", 0.02 + 0.01 * i);
        specs.push_back(std::move(s));
    }
    for (int i = 0; i < 16; ++i) {
        srv::ScenarioSpec s;
        s.scenario = "faulty";
        s.name = "benign" + std::to_string(i);
        s.horizon = 2.0;
        s.params.set("throwAt", 1e18);
        s.params.set("dt", 0.002 + 0.0005 * i);
        specs.push_back(std::move(s));
    }
    return specs;
}

struct Row {
    std::size_t workers = 0;
    double wallSeconds = 0.0;
    double speedup = 1.0;
    std::uint64_t steals = 0;
    bool tracesMatchBaseline = true;
};

} // namespace

int main() {
    scen::registerBuiltins();
    const auto specs = batch64();
    const unsigned hw = std::thread::hardware_concurrency();

    std::printf("srv serving-engine throughput: %zu-scenario batch\n", specs.size());
    std::printf("hardware_concurrency = %u\n\n", hw);
    urtx::bench::rule();
    std::printf("%8s %14s %10s %8s %16s\n", "workers", "wall [s]", "speedup", "steals",
                "traces==1-worker");
    urtx::bench::rule();

    // Baseline: 1 worker. Per-scenario trace hashes are the reference the
    // parallel runs must reproduce bit-for-bit.
    std::vector<std::uint64_t> baselineHash;
    std::vector<Row> rows;
    double baselineWall = 0.0;

    for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        srv::EngineConfig cfg;
        cfg.workers = workers;
        cfg.scopedMetrics = false; // measure scheduling, not snapshotting
        cfg.postmortems = false;
        srv::ServeEngine engine(cfg);

        srv::BatchResult best;
        const double wall = urtx::bench::timeMedian(
            [&] { best = engine.run(specs); }, /*reps=*/3);

        Row row;
        row.workers = workers;
        row.wallSeconds = wall;
        row.steals = best.steals;
        if (best.count(srv::ScenarioStatus::Succeeded) != specs.size()) {
            std::fprintf(stderr, "FATAL: %zu-worker run had failures\n", workers);
            return 1;
        }
        if (workers == 1) {
            baselineWall = wall;
            for (const srv::ScenarioResult& r : best.results)
                baselineHash.push_back(r.trace.hash());
        } else {
            for (std::size_t i = 0; i < best.results.size(); ++i) {
                if (best.results[i].trace.hash() != baselineHash[i]) {
                    row.tracesMatchBaseline = false;
                    std::fprintf(stderr, "FATAL: trace divergence at job %zu (%s)\n", i,
                                 best.results[i].name.c_str());
                }
            }
            if (!row.tracesMatchBaseline) return 1;
        }
        row.speedup = baselineWall / wall;
        rows.push_back(row);
        std::printf("%8zu %14.4f %9.2fx %8llu %16s\n", workers, wall, row.speedup,
                    static_cast<unsigned long long>(row.steals),
                    row.tracesMatchBaseline ? "yes" : "NO");
    }
    urtx::bench::rule();
    if (hw < 4) {
        std::printf("note: only %u hardware thread(s); parallel speedup is not "
                    "expected to materialize on this host.\n", hw);
    }

    std::ofstream f("BENCH_srv.json");
    f << "{\n  \"benchmark\": \"srv_throughput\",\n";
    f << "  \"batch_jobs\": " << specs.size() << ",\n";
    f << "  \"hardware_concurrency\": " << hw << ",\n";
    f << "  \"reps_per_config\": 3,\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "    {\"workers\": %zu, \"wall_seconds\": %.6f, \"speedup_vs_1\": "
                      "%.3f, \"steals\": %llu, \"traces_bit_identical\": %s}%s\n",
                      r.workers, r.wallSeconds, r.speedup,
                      static_cast<unsigned long long>(r.steals),
                      r.tracesMatchBaseline ? "true" : "false",
                      i + 1 < rows.size() ? "," : "");
        f << buf;
    }
    f << "  ]\n}\n";
    std::puts("\nwrote BENCH_srv.json");
    return 0;
}
